"""Recursive-descent parser for specification formulas.

Entry points:

* :func:`parse_expr` — an arithmetic expression (cost formulas, RHS of
  effects);
* :func:`parse_condition` — a comparison or ``and``-conjunction
  (component ``<conditions>``);
* :func:`parse_assign` — a single assignment (``<effects>`` /
  ``<cross_effects>`` lines);
* :func:`parse_formula` — auto-detects the category.

Grammar (standard precedence)::

    condition  := compare ("and" compare)*
    compare    := expr (CMPOP expr)?
    assign     := var ASSIGNOP expr
    expr       := term (("+" | "-") term)*
    term       := unary (("*" | "/") unary)*
    unary      := "-" unary | atom
    atom       := NUMBER | var | call | "(" expr ")"
    call       := ("min" | "max") "(" expr ("," expr)* ")"
"""

from __future__ import annotations

from .ast_nodes import And, Assign, BinOp, Call, Compare, Node, Num, Var
from .errors import ParseError
from .tokens import Token, TokenKind, tokenize

__all__ = ["parse_expr", "parse_condition", "parse_assign", "parse_formula"]

_CMP_OPS = {">=", "<=", ">", "<", "==", "!="}
_ASSIGN_OPS = {":=", "+=", "-="}
_BUILTIN_FNS = {"min", "max"}


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise ParseError(self.text, tok.pos, f"expected {want}, found {tok.text!r}")
        return self.advance()

    def at_op(self, *ops: str) -> bool:
        tok = self.peek()
        return tok.kind == TokenKind.OP and tok.text in ops

    def done(self) -> bool:
        return self.peek().kind == TokenKind.EOF

    def require_done(self) -> None:
        tok = self.peek()
        if tok.kind != TokenKind.EOF:
            raise ParseError(self.text, tok.pos, f"unexpected trailing {tok.text!r}")

    # -- grammar ------------------------------------------------------------

    def condition(self) -> Node:
        parts = [self.compare()]
        while self.peek().kind == TokenKind.AND:
            self.advance()
            parts.append(self.compare())
        if len(parts) == 1:
            return parts[0]
        return And(tuple(parts))

    def compare(self) -> Node:
        left = self.expr()
        if self.at_op(*_CMP_OPS):
            op = self.advance().text
            right = self.expr()
            return Compare(op, left, right)
        return left

    def assign(self) -> Assign:
        target = self.atom()
        if not isinstance(target, Var):
            tok = self.peek()
            raise ParseError(self.text, tok.pos, "assignment target must be a variable")
        if not self.at_op(*_ASSIGN_OPS):
            tok = self.peek()
            raise ParseError(self.text, tok.pos, "expected := or += or -=")
        op = self.advance().text
        expr = self.expr()
        return Assign(target, op, expr)

    def expr(self) -> Node:
        node = self.term()
        while self.at_op("+", "-"):
            op = self.advance().text
            node = BinOp(op, node, self.term())
        return node

    def term(self) -> Node:
        node = self.unary()
        while self.at_op("*", "/"):
            op = self.advance().text
            node = BinOp(op, node, self.unary())
        return node

    def unary(self) -> Node:
        if self.at_op("-"):
            tok = self.advance()
            inner = self.unary()
            if isinstance(inner, Num):
                return Num(-inner.value)
            return BinOp("-", Num(0.0), inner)
        return self.atom()

    def atom(self) -> Node:
        tok = self.peek()
        if tok.kind == TokenKind.NUMBER:
            self.advance()
            return Num(float(tok.text))
        if tok.kind == TokenKind.IDENT:
            self.advance()
            is_callable_name = "." not in tok.text and not tok.text.endswith("'")
            if is_callable_name and self.peek().kind == TokenKind.LPAREN:
                return self._call(tok.text)
            primed = tok.text.endswith("'")
            name = tok.text[:-1] if primed else tok.text
            return Var(name, primed)
        if tok.kind == TokenKind.LPAREN:
            self.advance()
            node = self.expr()
            self.expect(TokenKind.RPAREN)
            return node
        raise ParseError(self.text, tok.pos, f"unexpected token {tok.text!r}")

    def _call(self, fn: str) -> Node:
        self.expect(TokenKind.LPAREN)
        args = [self.expr()]
        while self.peek().kind == TokenKind.COMMA:
            self.advance()
            args.append(self.expr())
        self.expect(TokenKind.RPAREN)
        if fn in _BUILTIN_FNS and len(args) < 2:
            tok = self.peek()
            raise ParseError(self.text, tok.pos, f"{fn}() needs at least two arguments")
        if fn not in _BUILTIN_FNS and len(args) != 1:
            tok = self.peek()
            raise ParseError(
                self.text, tok.pos, f"table function {fn}() takes exactly one argument"
            )
        return Call(fn, tuple(args))


def parse_expr(text: str) -> Node:
    """Parse an arithmetic expression (no comparisons, no assignment)."""
    p = _Parser(text)
    node = p.expr()
    p.require_done()
    return node


def parse_condition(text: str) -> Node:
    """Parse a condition: comparisons joined by ``and``."""
    p = _Parser(text)
    node = p.condition()
    p.require_done()
    if not isinstance(node, (Compare, And)):
        raise ParseError(text, 0, "condition must contain a comparison")
    return node


def parse_assign(text: str) -> Assign:
    """Parse a single effect assignment."""
    p = _Parser(text)
    node = p.assign()
    p.require_done()
    return node


def parse_formula(text: str) -> Node:
    """Parse any formula, auto-detecting assignment vs condition vs expr."""
    stripped = text.strip()
    if any(op in stripped for op in (":=", "+=", "-=")):
        return parse_assign(stripped)
    p = _Parser(stripped)
    node = p.condition()
    p.require_done()
    return node
