"""Specification formula language: lexer, parser, evaluators, analysis.

CPP specifications describe component conditions, effects, cross effects,
and cost metrics as formulas over real-valued resource/property variables
(paper Figs. 2 and 6).  This package parses that language and evaluates it
under both exact (float) and planning (interval) semantics.
"""

from .ast_nodes import And, Assign, BinOp, Call, Compare, Node, Num, Var
from .errors import EvalError, ExprError, LexError, ParseError
from .parser import parse_assign, parse_condition, parse_expr, parse_formula
from .evaluator import (
    apply_assign_float,
    apply_assign_interval,
    check_condition_float,
    condition_certain,
    condition_satisfiable,
    eval_float,
    eval_interval,
)
from .compile import (
    clear_compile_cache,
    compile_assign_float,
    compile_assign_interval,
    compile_cache_size,
    compile_condition_certain,
    compile_condition_float,
    compile_condition_satisfiable,
    compile_float,
    compile_interval,
)
from .functions import (
    DEFAULT_REGISTRY,
    FunctionRegistry,
    TableFunction,
    lookup_function,
    register_function,
    unregister_function,
)
from .analysis import (
    Direction,
    assigned_variables,
    condition_monotonicity,
    constant_value,
    infer_degradable,
    is_constant,
    is_monotone_nondecreasing,
    monotonicity,
    monotonicity_all,
    substitute,
    variables,
)

__all__ = [
    # AST
    "Node",
    "Num",
    "Var",
    "BinOp",
    "Call",
    "Compare",
    "And",
    "Assign",
    # errors
    "ExprError",
    "LexError",
    "ParseError",
    "EvalError",
    # parsing
    "parse_expr",
    "parse_condition",
    "parse_assign",
    "parse_formula",
    # evaluation
    "eval_float",
    "eval_interval",
    "check_condition_float",
    "condition_satisfiable",
    "condition_certain",
    "apply_assign_float",
    "apply_assign_interval",
    # compiled closures
    "compile_float",
    "compile_interval",
    "compile_condition_float",
    "compile_condition_satisfiable",
    "compile_condition_certain",
    "compile_assign_float",
    "compile_assign_interval",
    "clear_compile_cache",
    "compile_cache_size",
    # analysis
    "Direction",
    "variables",
    "substitute",
    "assigned_variables",
    "monotonicity",
    "monotonicity_all",
    "condition_monotonicity",
    "is_monotone_nondecreasing",
    "infer_degradable",
    "is_constant",
    "constant_value",
    # table functions
    "TableFunction",
    "FunctionRegistry",
    "DEFAULT_REGISTRY",
    "register_function",
    "unregister_function",
    "lookup_function",
]
