"""Compilation of specification ASTs into plain-Python closures.

The interpreted evaluators in :mod:`repro.expr.evaluator` re-dispatch on
node types for every evaluation.  That is fine for one-off checks, but
the planner's regression search replays plan tails millions of times, so
each formula is evaluated many orders of magnitude more often than it is
parsed.  This module compiles a formula *once* into a nest of specialized
closures — one Python function call per AST node, no ``isinstance``
dispatch, constants folded — and memoizes the result per distinct AST
(nodes are immutable and hashable, so structurally equal formulas share
one compiled closure).

The interpreted evaluators remain the reference semantics: the compiled
closures must agree exactly — values, interval bounds, *and* open/closed
endpoint flags — which the property suite asserts on randomized formulas.
Arity and operator errors are raised at compile time as
:class:`~repro.expr.errors.EvalError` (the interpreter raises the same
error lazily at evaluation time); table functions are looked up in the
default registry at *call* time so late registration behaves identically
in both engines.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

from ..intervals import EMPTY, Interval, iadd, idiv, imax, imin, imul, isub
from .ast_nodes import And, Assign, BinOp, Call, Compare, Node, Num, Var
from .errors import EvalError
from .evaluator import _FLOAT_CMP, _check_call_arity
from .functions import lookup_function

__all__ = [
    "FloatFn",
    "IntervalFn",
    "compile_float",
    "compile_interval",
    "compile_condition_float",
    "compile_condition_satisfiable",
    "compile_condition_certain",
    "compile_assign_float",
    "compile_assign_interval",
    "clear_compile_cache",
    "compile_cache_size",
]

FloatFn = Callable[[Mapping[str, float]], float]
IntervalFn = Callable[[Mapping[str, Interval]], Interval]
BoolFn = Callable[[Mapping], bool]

_isinf = math.isinf

# The hot interval closures below test operand emptiness with inlined
# attribute comparisons instead of calling Interval.is_empty(): the method
# is a quarter of all replay-loop calls, and the predicate is three loads.
# The expression mirrors is_empty() exactly:
#     lo > hi  or  (lo == hi and (lo_open or hi_open or isinf(lo)))


# ---------------------------------------------------------------------------
# Exact (float) semantics
# ---------------------------------------------------------------------------


def _build_float(node: Node) -> FloatFn:
    if isinstance(node, Num):
        v = node.value
        return lambda env: v
    if isinstance(node, Var):
        name = node.name
        text = node.unparse()

        def var_fn(env: Mapping[str, float]) -> float:
            try:
                return env[name]
            except KeyError:
                raise EvalError(f"unbound float variable {text!r}") from None

        return var_fn
    if isinstance(node, BinOp):
        lf = _build_float(node.left)
        rf = _build_float(node.right)
        op = node.op
        if op == "+":
            return lambda env: lf(env) + rf(env)
        if op == "-":
            return lambda env: lf(env) - rf(env)
        if op == "*":
            return lambda env: lf(env) * rf(env)
        if op == "/":
            text = node.unparse()

            def div_fn(env: Mapping[str, float]) -> float:
                # Operand order matches the interpreter (left, then right)
                # so error precedence is identical on malformed envs.
                left = lf(env)
                right = rf(env)
                if right == 0.0:
                    raise EvalError(f"division by zero in {text!r}")
                return left / right

            return div_fn
        raise EvalError(f"unknown operator {op!r}")
    if isinstance(node, Call):
        _check_call_arity(node)
        arg_fns = tuple(_build_float(a) for a in node.args)
        if node.fn in ("min", "max"):
            fold = min if node.fn == "min" else max
            if len(arg_fns) == 2:
                f0, f1 = arg_fns
                return lambda env: fold(f0(env), f1(env))
            return lambda env: fold(f(env) for f in arg_fns)
        fn_name = node.fn
        a0 = arg_fns[0]
        return lambda env: lookup_function(fn_name)(a0(env))
    raise EvalError(f"cannot evaluate {type(node).__name__} as an expression")


def _build_condition_float(node: Node) -> BoolFn:
    if isinstance(node, And):
        parts = tuple(_build_condition_float(p) for p in node.parts)
        return lambda env: all(p(env) for p in parts)
    if isinstance(node, Compare):
        try:
            cmp = _FLOAT_CMP[node.op]
        except KeyError:
            raise EvalError(f"unknown comparison {node.op!r}") from None
        lf = _build_float(node.left)
        rf = _build_float(node.right)
        return lambda env: cmp(lf(env), rf(env))
    raise EvalError(f"not a condition: {node.unparse()!r}")


# ---------------------------------------------------------------------------
# Interval semantics
# ---------------------------------------------------------------------------

_INTERVAL_BINOP = {"+": iadd, "-": isub, "*": imul, "/": idiv}


def _iv_shift(xf: IntervalFn, c: float) -> IntervalFn:
    """``x + c`` / ``c + x`` / ``x - c`` (pass ``-c``): shift both bounds."""

    def fn(env: Mapping[str, Interval]) -> Interval:
        a = xf(env)
        if a.lo > a.hi or (a.lo == a.hi and (a.lo_open or a.hi_open or _isinf(a.lo))):
            return EMPTY
        return Interval(a.lo + c, a.hi + c, a.lo_open, a.hi_open)

    return fn


def _iv_reflect(xf: IntervalFn, c: float) -> IntervalFn:
    """``c - x``: bounds negate and swap around ``c``."""

    def fn(env: Mapping[str, Interval]) -> Interval:
        a = xf(env)
        if a.lo > a.hi or (a.lo == a.hi and (a.lo_open or a.hi_open or _isinf(a.lo))):
            return EMPTY
        return Interval(c - a.hi, c - a.lo, a.hi_open, a.lo_open)

    return fn


def _iv_scale(
    xf: IntervalFn, c: float, fallback: Callable[[Interval], Interval]
) -> IntervalFn:
    """``x * c`` (or ``x / k`` via ``c = 1/k``) for finite nonzero ``c``.

    Non-empty operands cannot have mixed openness at equal bounds, but the
    *scaled* bounds can still tie with differing flags (rounding at the
    extremes of the float range); there the generic operation's closed-wins
    tie-breaking applies, so we fall back to stay bit-exact.
    """
    if c > 0:

        def fn(env: Mapping[str, Interval]) -> Interval:
            a = xf(env)
            if a.lo > a.hi or (
                a.lo == a.hi and (a.lo_open or a.hi_open or _isinf(a.lo))
            ):
                return EMPTY
            lo = a.lo * c
            hi = a.hi * c
            if lo == hi and a.lo_open != a.hi_open:
                return fallback(a)
            return Interval(lo, hi, a.lo_open, a.hi_open)

    else:

        def fn(env: Mapping[str, Interval]) -> Interval:
            a = xf(env)
            if a.lo > a.hi or (
                a.lo == a.hi and (a.lo_open or a.hi_open or _isinf(a.lo))
            ):
                return EMPTY
            lo = a.hi * c
            hi = a.lo * c
            if lo == hi and a.lo_open != a.hi_open:
                return fallback(a)
            return Interval(lo, hi, a.hi_open, a.lo_open)

    return fn


def _const_operand_fast(node: BinOp) -> IntervalFn | None:
    """Bit-exact fast path when one operand is a finite numeric literal.

    Spec formulas are dominated by var-op-constant shapes (``M.ibw*0.3``,
    ``T.ibw/10``, ``1 + Z.ibw/10``); shifting or scaling two bounds skips
    the four-way cross-product of :func:`imul`/:func:`idiv`.  Division
    multiplies by the reciprocal — exactly what ``idiv`` does internally —
    so results stay bit-identical to the interpreter.  Shapes with no
    exact two-bound form (``c / x``, multiplication by zero, a reciprocal
    overflowing the float range) return ``None`` and take the generic path.
    """
    op = node.op
    if isinstance(node.right, Num) and math.isfinite(node.right.value):
        c = node.right.value
        xf = _build_interval(node.left)
        if op == "+":
            return _iv_shift(xf, c)
        if op == "-":
            return _iv_shift(xf, -c)
        if c != 0.0:
            c_iv = Interval.point(c)
            if op == "*":
                return _iv_scale(xf, c, lambda a: imul(a, c_iv))
            if op == "/":
                inv = 1.0 / c
                if math.isfinite(inv):
                    return _iv_scale(xf, inv, lambda a: idiv(a, c_iv))
    elif isinstance(node.left, Num) and math.isfinite(node.left.value):
        c = node.left.value
        xf = _build_interval(node.right)
        if op == "+":
            return _iv_shift(xf, c)
        if op == "-":
            return _iv_reflect(xf, c)
        if op == "*" and c != 0.0:
            c_iv = Interval.point(c)
            return _iv_scale(xf, c, lambda a: imul(c_iv, a))
    return None


def _build_interval(node: Node) -> IntervalFn:
    if isinstance(node, Num):
        iv = Interval.point(node.value)
        return lambda env: iv
    if isinstance(node, Var):
        name = node.name
        text = node.unparse()

        def var_fn(env: Mapping[str, Interval]) -> Interval:
            try:
                return env[name]
            except KeyError:
                raise EvalError(f"unbound interval variable {text!r}") from None

        return var_fn
    if isinstance(node, BinOp):
        try:
            op_fn = _INTERVAL_BINOP[node.op]
        except KeyError:
            raise EvalError(f"unknown operator {node.op!r}") from None
        fast = _const_operand_fast(node)
        if fast is not None:
            return fast
        lf = _build_interval(node.left)
        rf = _build_interval(node.right)
        if node.op == "+":

            def add_fn(env: Mapping[str, Interval]) -> Interval:
                a = lf(env)
                b = rf(env)
                if (
                    a.lo > a.hi
                    or b.lo > b.hi
                    or (a.lo == a.hi and (a.lo_open or a.hi_open or _isinf(a.lo)))
                    or (b.lo == b.hi and (b.lo_open or b.hi_open or _isinf(b.lo)))
                ):
                    return EMPTY
                return Interval(
                    a.lo + b.lo, a.hi + b.hi,
                    a.lo_open or b.lo_open, a.hi_open or b.hi_open,
                )

            return add_fn
        if node.op == "-":

            def sub_fn(env: Mapping[str, Interval]) -> Interval:
                a = lf(env)
                b = rf(env)
                if (
                    a.lo > a.hi
                    or b.lo > b.hi
                    or (a.lo == a.hi and (a.lo_open or a.hi_open or _isinf(a.lo)))
                    or (b.lo == b.hi and (b.lo_open or b.hi_open or _isinf(b.lo)))
                ):
                    return EMPTY
                # isub(a, b) = iadd(a, ineg(b)) with the negation folded
                # into the bound arithmetic (x + (-y) ≡ x - y in IEEE).
                return Interval(
                    a.lo - b.hi, a.hi - b.lo,
                    a.lo_open or b.hi_open, a.hi_open or b.lo_open,
                )

            return sub_fn
        if node.op == "/":

            def div_fn(env: Mapping[str, Interval]) -> Interval:
                try:
                    return op_fn(lf(env), rf(env))
                except ZeroDivisionError as exc:
                    raise EvalError(str(exc)) from None

            return div_fn
        return lambda env: op_fn(lf(env), rf(env))
    if isinstance(node, Call):
        _check_call_arity(node)
        arg_fns = tuple(_build_interval(a) for a in node.args)
        if node.fn in ("min", "max"):
            fold = imin if node.fn == "min" else imax
            if len(arg_fns) == 2:
                f0, f1 = arg_fns
                if node.fn == "min":
                    # imin inlined verbatim (hot in stream-cap formulas).

                    def min_fn(env: Mapping[str, Interval]) -> Interval:
                        a = f0(env)
                        b = f1(env)
                        if (
                            a.lo > a.hi
                            or b.lo > b.hi
                            or (a.lo == a.hi and (a.lo_open or a.hi_open or _isinf(a.lo)))
                            or (b.lo == b.hi and (b.lo_open or b.hi_open or _isinf(b.lo)))
                        ):
                            return EMPTY
                        if a.lo < b.lo:
                            lo, lo_open = a.lo, a.lo_open
                        elif b.lo < a.lo:
                            lo, lo_open = b.lo, b.lo_open
                        else:
                            lo, lo_open = a.lo, a.lo_open and b.lo_open
                        if a.hi < b.hi:
                            hi, hi_open = a.hi, a.hi_open
                        elif b.hi < a.hi:
                            hi, hi_open = b.hi, b.hi_open
                        else:
                            hi, hi_open = a.hi, a.hi_open or b.hi_open
                        # One operand often dominates (e.g. min(T.ibw, cap)
                        # with ibw below cap): returning it skips the
                        # allocation.  Intervals are immutable, so reuse is
                        # indistinguishable from a fresh equal instance.
                        if (
                            lo == a.lo
                            and hi == a.hi
                            and lo_open == a.lo_open
                            and hi_open == a.hi_open
                        ):
                            return a
                        if (
                            lo == b.lo
                            and hi == b.hi
                            and lo_open == b.lo_open
                            and hi_open == b.hi_open
                        ):
                            return b
                        return Interval(lo, hi, lo_open, hi_open)

                    return min_fn

                def max_fn(env: Mapping[str, Interval]) -> Interval:
                    a = f0(env)
                    b = f1(env)
                    if (
                        a.lo > a.hi
                        or b.lo > b.hi
                        or (a.lo == a.hi and (a.lo_open or a.hi_open or _isinf(a.lo)))
                        or (b.lo == b.hi and (b.lo_open or b.hi_open or _isinf(b.lo)))
                    ):
                        return EMPTY
                    if a.lo > b.lo:
                        lo, lo_open = a.lo, a.lo_open
                    elif b.lo > a.lo:
                        lo, lo_open = b.lo, b.lo_open
                    else:
                        lo, lo_open = a.lo, a.lo_open or b.lo_open
                    if a.hi > b.hi:
                        hi, hi_open = a.hi, a.hi_open
                    elif b.hi > a.hi:
                        hi, hi_open = b.hi, b.hi_open
                    else:
                        hi, hi_open = a.hi, a.hi_open and b.hi_open
                    if (
                        lo == a.lo
                        and hi == a.hi
                        and lo_open == a.lo_open
                        and hi_open == a.hi_open
                    ):
                        return a
                    if (
                        lo == b.lo
                        and hi == b.hi
                        and lo_open == b.lo_open
                        and hi_open == b.hi_open
                    ):
                        return b
                    return Interval(lo, hi, lo_open, hi_open)

                return max_fn

            def fold_fn(env: Mapping[str, Interval]) -> Interval:
                acc = arg_fns[0](env)
                for f in arg_fns[1:]:
                    acc = fold(acc, f(env))
                return acc

            return fold_fn
        fn_name = node.fn
        a0 = arg_fns[0]
        return lambda env: lookup_function(fn_name).image(a0(env))
    raise EvalError(f"cannot evaluate {type(node).__name__} as an expression")


# Per-operator comparison cores, specialized at compile time so the hot
# path skips the evaluator's sequential string dispatch (and the
# ``<=``/``<`` operand-swap recursion).  Empty-operand handling — the only
# part where existential (False) and universal (True) semantics differ
# structurally — stays in the wrapper closure below.  Each core mirrors the
# corresponding branch of ``_exists_cmp`` / ``_forall_cmp`` exactly.

_EXISTS_CORE: dict[str, Callable[[Interval, Interval], bool]] = {
    ">=": lambda l, r: l.hi > r.lo
    or (l.hi == r.lo and not l.hi_open and not r.lo_open),
    ">": lambda l, r: l.hi > r.lo,
    "<=": lambda l, r: r.hi > l.lo
    or (r.hi == l.lo and not r.hi_open and not l.lo_open),
    "<": lambda l, r: r.hi > l.lo,
    "==": lambda l, r: l.overlaps(r),
    "!=": lambda l, r: not (l.is_point() and r.is_point() and l.lo == r.lo),
}

_FORALL_CORE: dict[str, Callable[[Interval, Interval], bool]] = {
    ">=": lambda l, r: l.lo >= r.hi,
    ">": lambda l, r: l.lo > r.hi or (l.lo == r.hi and (l.lo_open or r.hi_open)),
    "<=": lambda l, r: r.lo >= l.hi,
    "<": lambda l, r: r.lo > l.hi or (r.lo == l.hi and (r.lo_open or l.hi_open)),
    "==": lambda l, r: l.is_point() and r.is_point() and l.lo == r.lo,
    "!=": lambda l, r: not l.overlaps(r),
}


def _build_condition_interval(node: Node, existential: bool) -> BoolFn:
    if isinstance(node, And):
        parts = tuple(_build_condition_interval(p, existential) for p in node.parts)
        return lambda env: all(p(env) for p in parts)
    if isinstance(node, Compare):
        cores = _EXISTS_CORE if existential else _FORALL_CORE
        try:
            core = cores[node.op]
        except KeyError:
            raise EvalError(f"unknown comparison {node.op!r}") from None
        on_empty = not existential
        lf = _build_interval(node.left)
        rf = _build_interval(node.right)

        def cmp_fn(env: Mapping[str, Interval]) -> bool:
            left = lf(env)
            right = rf(env)
            if (
                left.lo > left.hi
                or right.lo > right.hi
                or (
                    left.lo == left.hi
                    and (left.lo_open or left.hi_open or _isinf(left.lo))
                )
                or (
                    right.lo == right.hi
                    and (right.lo_open or right.hi_open or _isinf(right.lo))
                )
            ):
                return on_empty
            return core(left, right)

        return cmp_fn
    raise EvalError(f"not a condition: {node.unparse()!r}")


# ---------------------------------------------------------------------------
# Assignments
# ---------------------------------------------------------------------------


def _build_assign_float(node: Assign) -> FloatFn:
    rhs = _build_float(node.expr)
    if node.op == ":=":
        return rhs
    tgt = node.target.name
    text = node.target.unparse()
    add = node.op == "+="

    def fn(env: Mapping[str, float]) -> float:
        value = rhs(env)
        try:
            current = env[tgt]
        except KeyError:
            raise EvalError(f"unbound float variable {text!r}") from None
        return current + value if add else current - value

    return fn


def _fused_const_assign(c: float, tgt: str, ttext: str, add: bool) -> IntervalFn:
    """``tgt += c`` / ``tgt -= c`` fused into one closure (one allocation).

    Subtraction negates the constant up front: ``isub`` is defined as
    ``iadd`` of the negation, and IEEE guarantees ``x + (-c) == x - c``.
    """
    if not add:
        c = -c

    def fn(env: Mapping[str, Interval]) -> Interval:
        try:
            cur = env[tgt]
        except KeyError:
            raise EvalError(f"unbound interval variable {ttext!r}") from None
        if cur.lo > cur.hi or (
            cur.lo == cur.hi and (cur.lo_open or cur.hi_open or _isinf(cur.lo))
        ):
            return EMPTY
        return Interval(cur.lo + c, cur.hi + c, cur.lo_open, cur.hi_open)

    return fn


def _fused_scale_assign(
    vname: str,
    vtext: str,
    k: float,
    tgt: str,
    ttext: str,
    add: bool,
    fallback: Callable[[Interval], Interval],
) -> IntervalFn:
    """``tgt ±= V * k`` fused into one closure (one allocation).

    Covers the hottest replay effect shapes — ``Node.cpu -= T.ibw/10``
    (``k`` is the reciprocal, as in ``idiv``), ``Link.lbw -= T.ibw``
    (``k = 1``, exact identity under IEEE) — evaluating rhs before target
    like the interpreter, with the scale-tie fallback of :func:`_iv_scale`.
    """

    def fn(env: Mapping[str, Interval]) -> Interval:
        try:
            v = env[vname]
        except KeyError:
            raise EvalError(f"unbound interval variable {vtext!r}") from None
        try:
            cur = env[tgt]
        except KeyError:
            raise EvalError(f"unbound interval variable {ttext!r}") from None
        if (
            v.lo > v.hi
            or cur.lo > cur.hi
            or (v.lo == v.hi and (v.lo_open or v.hi_open or _isinf(v.lo)))
            or (cur.lo == cur.hi and (cur.lo_open or cur.hi_open or _isinf(cur.lo)))
        ):
            return EMPTY
        if k > 0:
            slo = v.lo * k
            shi = v.hi * k
            slo_o = v.lo_open
            shi_o = v.hi_open
        else:
            slo = v.hi * k
            shi = v.lo * k
            slo_o = v.hi_open
            shi_o = v.lo_open
        if slo == shi and slo_o != shi_o:
            s = fallback(v)
            slo = s.lo
            shi = s.hi
            slo_o = s.lo_open
            shi_o = s.hi_open
        if add:
            return Interval(
                cur.lo + slo, cur.hi + shi,
                cur.lo_open or slo_o, cur.hi_open or shi_o,
            )
        return Interval(
            cur.lo - shi, cur.hi - slo,
            cur.lo_open or shi_o, cur.hi_open or slo_o,
        )

    return fn


def _fused_assign(node: Assign, tgt: str, ttext: str, add: bool) -> IntervalFn | None:
    """Fused closure for an augmented assignment with a simple rhs, or None."""
    e = node.expr
    if isinstance(e, Num):
        if math.isfinite(e.value):
            return _fused_const_assign(e.value, tgt, ttext, add)
        return None
    if isinstance(e, Var):
        # k = 1 never takes the tie fallback (a non-empty tie is closed-closed).
        return _fused_scale_assign(
            e.name, e.unparse(), 1.0, tgt, ttext, add, lambda a: a
        )
    if isinstance(e, BinOp):
        if (
            isinstance(e.left, Var)
            and isinstance(e.right, Num)
            and math.isfinite(e.right.value)
            and e.right.value != 0.0
        ):
            v, c = e.left, e.right.value
            c_iv = Interval.point(c)
            if e.op == "*":
                return _fused_scale_assign(
                    v.name, v.unparse(), c, tgt, ttext, add,
                    lambda a: imul(a, c_iv),
                )
            if e.op == "/":
                inv = 1.0 / c
                if math.isfinite(inv):
                    return _fused_scale_assign(
                        v.name, v.unparse(), inv, tgt, ttext, add,
                        lambda a: idiv(a, c_iv),
                    )
        elif (
            e.op == "*"
            and isinstance(e.left, Num)
            and isinstance(e.right, Var)
            and math.isfinite(e.left.value)
            and e.left.value != 0.0
        ):
            c, v = e.left.value, e.right
            c_iv = Interval.point(c)
            return _fused_scale_assign(
                v.name, v.unparse(), c, tgt, ttext, add,
                lambda a: imul(c_iv, a),
            )
    return None


def _build_assign_interval(node: Assign) -> IntervalFn:
    if node.op == ":=":
        return _build_interval(node.expr)
    tgt = node.target.name
    text = node.target.unparse()
    fused = _fused_assign(node, tgt, text, node.op == "+=")
    if fused is not None:
        return fused
    rhs = _build_interval(node.expr)
    if node.op == "+=":
        # iadd/isub inlined (see the BinOp closures for the IEEE argument);
        # consumable ``-=`` effects are the single hottest replay formula.

        def fn(env: Mapping[str, Interval]) -> Interval:
            value = rhs(env)
            try:
                current = env[tgt]
            except KeyError:
                raise EvalError(f"unbound interval variable {text!r}") from None
            if current.is_empty() or value.is_empty():
                return EMPTY
            return Interval(
                current.lo + value.lo, current.hi + value.hi,
                current.lo_open or value.lo_open, current.hi_open or value.hi_open,
            )

    else:

        def fn(env: Mapping[str, Interval]) -> Interval:
            value = rhs(env)
            try:
                current = env[tgt]
            except KeyError:
                raise EvalError(f"unbound interval variable {text!r}") from None
            if current.is_empty() or value.is_empty():
                return EMPTY
            return Interval(
                current.lo - value.hi, current.hi - value.lo,
                current.lo_open or value.hi_open, current.hi_open or value.lo_open,
            )

    return fn


# ---------------------------------------------------------------------------
# Memoized entry points
# ---------------------------------------------------------------------------

_CACHE: dict[tuple[str, Node], Callable] = {}


def _memo(kind: str, node: Node, build: Callable[[Node], Callable]) -> Callable:
    key = (kind, node)
    fn = _CACHE.get(key)
    if fn is None:
        fn = build(node)
        _CACHE[key] = fn
    return fn


def compile_float(node: Node) -> FloatFn:
    """Compile an arithmetic expression for the exact (float) semantics."""
    return _memo("float", node, _build_float)


def compile_interval(node: Node) -> IntervalFn:
    """Compile an arithmetic expression for the interval semantics."""
    return _memo("interval", node, _build_interval)


def compile_condition_float(node: Node) -> BoolFn:
    """Compile a condition for exact truth under concrete values."""
    return _memo("cond-float", node, _build_condition_float)


def compile_condition_satisfiable(node: Node) -> BoolFn:
    """Compile a condition for the planner's existential interval check."""
    return _memo(
        "cond-exists", node, lambda n: _build_condition_interval(n, existential=True)
    )


def compile_condition_certain(node: Node) -> BoolFn:
    """Compile a condition for the universal interval check."""
    return _memo(
        "cond-forall", node, lambda n: _build_condition_interval(n, existential=False)
    )


def compile_assign_float(node: Assign) -> FloatFn:
    """Compile an assignment: returns the new value for the target."""
    return _memo("assign-float", node, _build_assign_float)


def compile_assign_interval(node: Assign) -> IntervalFn:
    """Interval counterpart of :func:`compile_assign_float`."""
    return _memo("assign-interval", node, _build_assign_interval)


def clear_compile_cache() -> None:
    """Drop every memoized closure (test isolation helper)."""
    _CACHE.clear()


def compile_cache_size() -> int:
    return len(_CACHE)
