"""Profiled table functions for specification formulas.

The paper stresses that real component behaviour is "often represented by
tables obtained by application profiling", that analytical forms may not
exist, and that the *only* restriction Sekitei imposes is monotonicity.
This module makes such tables first-class: a :class:`TableFunction` wraps
a monotone piecewise-linear profile and can be called from any
specification formula (``cpu_profile(M.ibw)``), under both the exact and
the interval semantics.

Functions are resolved through a :class:`FunctionRegistry`; the module
default registry is consulted by the evaluators, so registering a profile
makes it available everywhere (grounding, replay, execution) without
threading a registry through every call site.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

from ..intervals import Interval
from .errors import EvalError

__all__ = [
    "TableFunction",
    "FunctionRegistry",
    "DEFAULT_REGISTRY",
    "register_function",
    "unregister_function",
    "lookup_function",
]


class TableFunction:
    """A monotone nondecreasing piecewise-linear profile.

    Parameters
    ----------
    name:
        Identifier used in formulas (a plain identifier, no dots).
    points:
        ``(x, y)`` samples; x strictly increasing, y nondecreasing
        (monotonicity is the planner's soundness requirement and is
        validated here).  Inputs outside the sampled range clamp to the
        boundary values — profiled tables say nothing beyond their range.
    """

    __slots__ = ("name", "xs", "ys")

    def __init__(self, name: str, points: Iterable[tuple[float, float]]):
        if not name.isidentifier() or "." in name:
            raise ValueError(f"table function name must be a plain identifier: {name!r}")
        pts: Sequence[tuple[float, float]] = sorted(points)
        if len(pts) < 2:
            raise ValueError(f"table {name!r} needs at least two sample points")
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        if any(b <= a for a, b in zip(xs, xs[1:])):
            raise ValueError(f"table {name!r}: x samples must be strictly increasing")
        if any(b < a - 1e-12 for a, b in zip(ys, ys[1:])):
            raise ValueError(
                f"table {name!r}: profile must be monotone nondecreasing "
                "(the planner's soundness requirement)"
            )
        self.name = name
        self.xs = xs
        self.ys = ys

    def __call__(self, x: float) -> float:
        xs, ys = self.xs, self.ys
        if x <= xs[0]:
            return ys[0]
        if x >= xs[-1]:
            return ys[-1]
        i = bisect.bisect_right(xs, x)
        x0, x1 = xs[i - 1], xs[i]
        y0, y1 = ys[i - 1], ys[i]
        return y0 + (y1 - y0) * (x - x0) / (x1 - x0)

    def image(self, iv: Interval) -> Interval:
        """Exact image of an interval under this (nondecreasing) profile."""
        if iv.is_empty():
            return iv
        lo = self(max(iv.lo, self.xs[0]) if iv.lo != float("-inf") else self.xs[0])
        hi = self(min(iv.hi, self.xs[-1]) if iv.hi != float("inf") else self.xs[-1])
        # Clamped regions are flat, so an open operand bound can still
        # attain the clamped value; only propagate openness inside the
        # sampled range.
        lo_open = iv.lo_open and self.xs[0] < iv.lo < self.xs[-1]
        hi_open = iv.hi_open and self.xs[0] < iv.hi < self.xs[-1]
        return Interval(lo, hi, lo_open, hi_open)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TableFunction({self.name!r}, {len(self.xs)} samples)"


class FunctionRegistry:
    """A namespace of table functions available to formulas."""

    __slots__ = ("_functions",)

    def __init__(self) -> None:
        self._functions: dict[str, TableFunction] = {}

    def register(self, fn: TableFunction) -> TableFunction:
        if fn.name in ("min", "max"):
            raise ValueError(f"{fn.name!r} is a builtin and cannot be overridden")
        self._functions[fn.name] = fn
        return fn

    def unregister(self, name: str) -> None:
        self._functions.pop(name, None)

    def get(self, name: str) -> TableFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise EvalError(
                f"unknown function {name!r}; register a TableFunction for it"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)


DEFAULT_REGISTRY = FunctionRegistry()


def register_function(fn: TableFunction) -> TableFunction:
    """Register a profile in the default registry (see module docs)."""
    return DEFAULT_REGISTRY.register(fn)


def unregister_function(name: str) -> None:
    DEFAULT_REGISTRY.unregister(name)


def lookup_function(name: str) -> TableFunction:
    return DEFAULT_REGISTRY.get(name)
