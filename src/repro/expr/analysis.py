"""Syntactic analysis of specification formulas.

Provides the automatic analyses the paper relies on:

* :func:`variables` — the set of variables a formula mentions (drives
  leveled-action parameterization);
* :func:`monotonicity` — per-variable monotonicity direction, used both to
  justify the greedy/leveled semantics (the paper assumes all resource
  functions are monotone) and to infer degradability;
* :func:`is_monotone_nondecreasing` — convenience wrapper;
* :func:`infer_degradable` — the paper's "information about degradability
  ... can be obtained automatically by syntactic analysis": a property is
  degradable w.r.t. a set of effect formulas when every output is
  nondecreasing in it, so throttling the input can only lower downstream
  demands;
* :func:`monotonicity_all` / :func:`condition_monotonicity` — the bulk
  forms used by the spec linter (:mod:`repro.lint`): per-variable
  direction of an expression, and the direction of a *condition's
  satisfaction* (growing a variable can make a predicate easier, harder,
  or unclassifiable to satisfy).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

from .ast_nodes import And, Assign, BinOp, Call, Compare, Node, Num, Var

__all__ = [
    "Direction",
    "variables",
    "substitute",
    "assigned_variables",
    "monotonicity",
    "monotonicity_all",
    "condition_monotonicity",
    "is_monotone_nondecreasing",
    "infer_degradable",
    "is_constant",
    "constant_value",
]


class Direction(Enum):
    """Monotonicity of an expression in one variable."""

    CONSTANT = 0
    NONDECREASING = 1
    NONINCREASING = -1
    UNKNOWN = 99

    def flip(self) -> "Direction":
        if self is Direction.NONDECREASING:
            return Direction.NONINCREASING
        if self is Direction.NONINCREASING:
            return Direction.NONDECREASING
        return self


def variables(node: Node) -> set[str]:
    """All variable names mentioned by a formula (primes stripped)."""
    out: set[str] = set()
    _collect(node, out)
    return out


def _collect(node: Node, out: set[str]) -> None:
    if isinstance(node, Var):
        out.add(node.name)
    elif isinstance(node, BinOp):
        _collect(node.left, out)
        _collect(node.right, out)
    elif isinstance(node, Call):
        for a in node.args:
            _collect(a, out)
    elif isinstance(node, Compare):
        _collect(node.left, out)
        _collect(node.right, out)
    elif isinstance(node, And):
        for p in node.parts:
            _collect(p, out)
    elif isinstance(node, Assign):
        out.add(node.target.name)
        _collect(node.expr, out)


def assigned_variables(assigns: Iterable[Assign]) -> set[str]:
    """Targets written by a sequence of effect assignments."""
    return {a.target.name for a in assigns}


def substitute(node: Node, mapping) -> Node:
    """Copy of a formula with variable names rewritten through ``mapping``.

    Names absent from the mapping are left untouched; ``primed`` markers
    are preserved.  Unchanged subtrees are returned as-is (nodes are
    immutable), so substituting with an irrelevant mapping is free.
    """
    if isinstance(node, Var):
        new = mapping.get(node.name)
        if new is None or new == node.name:
            return node
        return Var(new, node.primed)
    if isinstance(node, BinOp):
        left = substitute(node.left, mapping)
        right = substitute(node.right, mapping)
        if left is node.left and right is node.right:
            return node
        return BinOp(node.op, left, right)
    if isinstance(node, Call):
        args = tuple(substitute(a, mapping) for a in node.args)
        if all(a is b for a, b in zip(args, node.args)):
            return node
        return Call(node.fn, args)
    if isinstance(node, Compare):
        left = substitute(node.left, mapping)
        right = substitute(node.right, mapping)
        if left is node.left and right is node.right:
            return node
        return Compare(node.op, left, right)
    if isinstance(node, And):
        parts = tuple(substitute(p, mapping) for p in node.parts)
        if all(a is b for a, b in zip(parts, node.parts)):
            return node
        return And(parts)
    if isinstance(node, Assign):
        target = substitute(node.target, mapping)
        expr = substitute(node.expr, mapping)
        if target is node.target and expr is node.expr:
            return node
        return Assign(target, node.op, expr)
    return node  # Num (and any other leaf) mentions no variables


def _combine(a: Direction, b: Direction) -> Direction:
    """Direction of a sum of two sub-expressions."""
    if a is Direction.CONSTANT:
        return b
    if b is Direction.CONSTANT:
        return a
    if a is b and a is not Direction.UNKNOWN:
        return a
    return Direction.UNKNOWN


def is_constant(node: Node) -> bool:
    """True when the expression mentions no variables."""
    return not variables(node)


def constant_value(node: Node) -> float | None:
    """Value of a constant expression, or None if it mentions variables."""
    if is_constant(node):
        from .evaluator import eval_float

        return eval_float(node, {})
    return None


def monotonicity(node: Node, var: str) -> Direction:
    """Monotonicity of an arithmetic expression in ``var``.

    Sound but incomplete: :data:`Direction.UNKNOWN` means the analysis
    cannot classify the dependence (e.g. a product of two variable
    sub-expressions), not that the function is non-monotone.
    """
    if isinstance(node, Num):
        return Direction.CONSTANT
    if isinstance(node, Var):
        return Direction.NONDECREASING if node.name == var else Direction.CONSTANT
    if isinstance(node, Call):
        # min/max are nondecreasing in every argument.
        acc = Direction.CONSTANT
        for a in node.args:
            acc = _combine(acc, monotonicity(a, var))
        return acc
    if isinstance(node, BinOp):
        dl = monotonicity(node.left, var)
        dr = monotonicity(node.right, var)
        if node.op == "+":
            return _combine(dl, dr)
        if node.op == "-":
            return _combine(dl, dr.flip())
        if node.op in ("*", "/"):
            lconst = constant_value(node.left)
            rconst = constant_value(node.right)
            if rconst is not None:
                if rconst == 0:
                    return Direction.CONSTANT if node.op == "*" else Direction.UNKNOWN
                return dl if rconst > 0 else dl.flip()
            if lconst is not None and node.op == "*":
                if lconst == 0:
                    return Direction.CONSTANT
                return dr if lconst > 0 else dr.flip()
            if lconst is not None and node.op == "/":
                # c / f(x): direction flips with the sign of c for positive f;
                # sign of f is unknown syntactically.
                return Direction.UNKNOWN
            return Direction.UNKNOWN
    return Direction.UNKNOWN


def monotonicity_all(node: Node) -> dict[str, Direction]:
    """Monotonicity direction per variable the expression mentions.

    An :class:`Assign` is classified by its right-hand side (the target
    is written, not read).
    """
    if isinstance(node, Assign):
        node = node.expr
    return {v: monotonicity(node, v) for v in sorted(variables(node))}


def condition_monotonicity(node: Node, var: str) -> Direction:
    """Direction of a condition's *satisfaction* in ``var``.

    :data:`Direction.NONDECREASING` means growing ``var`` can only make
    the condition easier to satisfy (once true it stays true), and dually
    for :data:`Direction.NONINCREASING`.  Equality and inequality tests
    over non-constant operands are :data:`Direction.UNKNOWN` — their truth
    is not monotone in any operand.
    """
    if isinstance(node, And):
        acc = Direction.CONSTANT
        for p in node.parts:
            acc = _combine(acc, condition_monotonicity(p, var))
        return acc
    if isinstance(node, Compare):
        dl = monotonicity(node.left, var)
        dr = monotonicity(node.right, var)
        if node.op in ("==", "!="):
            if dl is Direction.CONSTANT and dr is Direction.CONSTANT:
                return Direction.CONSTANT
            return Direction.UNKNOWN
        if node.op in (">=", ">"):
            return _combine(dl, dr.flip())
        if node.op in ("<=", "<"):
            return _combine(dl.flip(), dr)
    return Direction.UNKNOWN


def is_monotone_nondecreasing(node: Node, var: str) -> bool:
    d = monotonicity(node, var)
    return d in (Direction.NONDECREASING, Direction.CONSTANT)


def infer_degradable(var: str, effects: Iterable[Assign]) -> bool:
    """Infer whether ``var`` may be safely used below its available value.

    True when every effect RHS mentioning ``var`` is nondecreasing in it:
    feeding less of the property through a component can only reduce the
    outputs and consumptions, so plans remain feasible under throttling.
    """
    for assign in effects:
        if var in variables(assign.expr):
            if not is_monotone_nondecreasing(assign.expr, var):
                return False
    return True
