"""Lexer for the CPP specification formula language.

The token stream covers everything appearing in the paper's specification
fragments (Figs. 2 and 6): dotted identifiers with an optional prime mark
(``M.ibw'`` — "value after the operation"), numbers, arithmetic operators,
comparisons, the assignment forms ``:=``, ``+=``, ``-=``, parentheses,
commas, and the boolean connective ``and``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import LexError

__all__ = ["Token", "tokenize", "TokenKind"]


class TokenKind:
    NUMBER = "NUMBER"
    IDENT = "IDENT"
    OP = "OP"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    AND = "AND"
    EOF = "EOF"


@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    text: str
    pos: int


_MULTI_OPS = (":=", "+=", "-=", ">=", "<=", "==", "!=")
_SINGLE_OPS = "+-*/><"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "._"


def tokenize(text: str) -> list[Token]:
    """Tokenize a formula; raises :class:`LexError` on bad input."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot followed by a non-digit belongs to an identifier
                    # context, not this number.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            yield Token(TokenKind.NUMBER, text[i:j], i)
            i = j
            continue
        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_char(text[j]):
                j += 1
            if j < n and text[j] == "'":
                j += 1
            word = text[i:j]
            if word == "and":
                yield Token(TokenKind.AND, word, i)
            else:
                yield Token(TokenKind.IDENT, word, i)
            i = j
            continue
        two = text[i : i + 2]
        if two in _MULTI_OPS:
            yield Token(TokenKind.OP, two, i)
            i += 2
            continue
        if ch in _SINGLE_OPS:
            yield Token(TokenKind.OP, ch, i)
            i += 1
            continue
        if ch == "(":
            yield Token(TokenKind.LPAREN, ch, i)
            i += 1
            continue
        if ch == ")":
            yield Token(TokenKind.RPAREN, ch, i)
            i += 1
            continue
        if ch == ",":
            yield Token(TokenKind.COMMA, ch, i)
            i += 1
            continue
        raise LexError(text, i, f"unexpected character {ch!r}")
    yield Token(TokenKind.EOF, "", n)
