"""AST node types for specification formulas.

Three formula categories appear in CPP specifications:

* **expressions** — arithmetic over variables (:class:`Num`, :class:`Var`,
  :class:`BinOp`, :class:`Call`);
* **conditions** — comparisons and conjunctions (:class:`Compare`,
  :class:`And`), used in component ``<conditions>`` blocks;
* **assignments** — ``target := expr`` / ``target += expr`` /
  ``target -= expr`` (:class:`Assign`), used in ``<effects>`` and
  ``<cross_effects>`` blocks.

All nodes are immutable and hashable so compiled actions can be shared
freely across planner phases.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Node", "Num", "Var", "BinOp", "Call", "Compare", "And", "Assign"]


class Node:
    """Base class for all AST nodes."""

    __slots__ = ()

    def unparse(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Num(Node):
    value: float

    def unparse(self) -> str:
        if self.value == int(self.value) and abs(self.value) < 1e15:
            return str(int(self.value))
        return repr(self.value)  # full precision round-trip


@dataclass(frozen=True, slots=True)
class Var(Node):
    """A dotted variable reference, e.g. ``T.ibw`` or ``Node.cpu``.

    ``primed`` marks the post-operation value convention of cross-effect
    specifications (``M.ibw'``).
    """

    name: str
    primed: bool = False

    def unparse(self) -> str:
        return self.name + ("'" if self.primed else "")


@dataclass(frozen=True, slots=True)
class BinOp(Node):
    op: str  # one of + - * /
    left: Node
    right: Node

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True, slots=True)
class Call(Node):
    """A builtin function application; ``min`` and ``max`` are supported."""

    fn: str
    args: tuple[Node, ...]

    def unparse(self) -> str:
        inner = ", ".join(a.unparse() for a in self.args)
        return f"{self.fn}({inner})"


@dataclass(frozen=True, slots=True)
class Compare(Node):
    op: str  # one of >= <= > < == !=
    left: Node
    right: Node

    def unparse(self) -> str:
        return f"{self.left.unparse()} {self.op} {self.right.unparse()}"


@dataclass(frozen=True, slots=True)
class And(Node):
    parts: tuple[Node, ...]

    def unparse(self) -> str:
        return " and ".join(p.unparse() for p in self.parts)


@dataclass(frozen=True, slots=True)
class Assign(Node):
    """``target := expr`` (or ``+=`` / ``-=`` sugar).

    The augmented forms are kept as-is rather than desugared so that
    consumption effects (``Node.cpu -= ...``) remain recognizable to the
    compiler's resource accounting.
    """

    target: Var
    op: str  # one of := += -=
    expr: Node

    def unparse(self) -> str:
        return f"{self.target.unparse()} {self.op} {self.expr.unparse()}"
