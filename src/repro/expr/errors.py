"""Exception types for the specification expression language."""

from __future__ import annotations

__all__ = ["ExprError", "LexError", "ParseError", "EvalError"]


class ExprError(Exception):
    """Base class for all expression-language errors."""


class LexError(ExprError):
    """Raised on an unrecognized character in a specification formula."""

    def __init__(self, text: str, pos: int, message: str):
        super().__init__(f"{message} at position {pos} in {text!r}")
        self.text = text
        self.pos = pos


class ParseError(ExprError):
    """Raised on a syntactically malformed specification formula."""

    def __init__(self, text: str, pos: int, message: str):
        super().__init__(f"{message} at position {pos} in {text!r}")
        self.text = text
        self.pos = pos


class EvalError(ExprError):
    """Raised when a formula references an unbound variable or misuses an op."""
