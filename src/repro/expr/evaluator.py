"""Evaluation of specification formulas over floats and intervals.

Two semantics share one AST:

* **Exact (float)** — used by the forward executor that validates finished
  plans with concrete values.
* **Interval** — used during planning.  Expressions evaluate to sound
  enclosures; conditions are checked *existentially* (DESIGN.md rule 3):
  a condition passes iff some assignment of values inside the operand
  intervals satisfies it.  When the two sides of a comparison share
  variables this is an over-approximation (it may accept an unsatisfiable
  condition but never rejects a satisfiable one), which is the safe
  direction for planning — the exact forward execution is the final gate.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..intervals import Interval, iadd, idiv, imax, imin, imul, isub
from .ast_nodes import And, Assign, BinOp, Call, Compare, Node, Num, Var
from .errors import EvalError

__all__ = [
    "eval_float",
    "eval_interval",
    "check_condition_float",
    "condition_satisfiable",
    "condition_certain",
    "apply_assign_float",
    "apply_assign_interval",
]

FloatEnv = Mapping[str, float]
IntervalEnv = Mapping[str, Interval]


def _lookup(env: Mapping, node: Var, kind: str):
    try:
        return env[node.name]
    except KeyError:
        raise EvalError(f"unbound {kind} variable {node.unparse()!r}") from None


def _check_call_arity(node: Call) -> None:
    """Validate call arity before evaluating any argument.

    ``min()``/``max()`` of nothing would otherwise escape as a bare
    ``ValueError``/``IndexError``, and a unary table function invoked with
    extra arguments would silently evaluate only its first one.
    """
    if node.fn in ("min", "max"):
        if not node.args:
            raise EvalError(f"{node.fn}() needs at least one argument in {node.unparse()!r}")
    elif len(node.args) != 1:
        raise EvalError(
            f"table function {node.fn}() takes exactly one argument in {node.unparse()!r}"
        )


# ---------------------------------------------------------------------------
# Exact semantics
# ---------------------------------------------------------------------------


def eval_float(node: Node, env: FloatEnv) -> float:
    """Evaluate an arithmetic expression over concrete values."""
    if isinstance(node, Num):
        return node.value
    if isinstance(node, Var):
        return _lookup(env, node, "float")
    if isinstance(node, BinOp):
        left = eval_float(node.left, env)
        right = eval_float(node.right, env)
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        if node.op == "/":
            if right == 0.0:
                raise EvalError(f"division by zero in {node.unparse()!r}")
            return left / right
        raise EvalError(f"unknown operator {node.op!r}")
    if isinstance(node, Call):
        _check_call_arity(node)
        args = [eval_float(a, env) for a in node.args]
        if node.fn == "min":
            return min(args)
        if node.fn == "max":
            return max(args)
        from .functions import lookup_function

        return lookup_function(node.fn)(args[0])
    raise EvalError(f"cannot evaluate {type(node).__name__} as an expression")


_FLOAT_CMP: dict[str, Callable[[float, float], bool]] = {
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    "==": lambda a, b: abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b)),
    "!=": lambda a, b: abs(a - b) > 1e-9 * max(1.0, abs(a), abs(b)),
}


def check_condition_float(node: Node, env: FloatEnv) -> bool:
    """Exact truth of a condition under concrete values."""
    if isinstance(node, And):
        return all(check_condition_float(p, env) for p in node.parts)
    if isinstance(node, Compare):
        return _FLOAT_CMP[node.op](eval_float(node.left, env), eval_float(node.right, env))
    raise EvalError(f"not a condition: {node.unparse()!r}")


def apply_assign_float(node: Assign, env: FloatEnv) -> float:
    """Compute the new value an assignment gives its target.

    The caller stores the result; ``+=``/``-=`` read the target's current
    value from ``env``.
    """
    rhs = eval_float(node.expr, env)
    if node.op == ":=":
        return rhs
    current = _lookup(env, node.target, "float")
    return current + rhs if node.op == "+=" else current - rhs


# ---------------------------------------------------------------------------
# Interval semantics
# ---------------------------------------------------------------------------

_INTERVAL_BINOP = {"+": iadd, "-": isub, "*": imul, "/": idiv}


def eval_interval(node: Node, env: IntervalEnv) -> Interval:
    """Evaluate an arithmetic expression to a sound interval enclosure."""
    if isinstance(node, Num):
        return Interval.point(node.value)
    if isinstance(node, Var):
        return _lookup(env, node, "interval")
    if isinstance(node, BinOp):
        left = eval_interval(node.left, env)
        right = eval_interval(node.right, env)
        try:
            return _INTERVAL_BINOP[node.op](left, right)
        except KeyError:
            raise EvalError(f"unknown operator {node.op!r}") from None
        except ZeroDivisionError as exc:
            raise EvalError(str(exc)) from None
    if isinstance(node, Call):
        _check_call_arity(node)
        args = [eval_interval(a, env) for a in node.args]
        if node.fn in ("min", "max"):
            fold = imin if node.fn == "min" else imax
            acc = args[0]
            for a in args[1:]:
                acc = fold(acc, a)
            return acc
        from .functions import lookup_function

        return lookup_function(node.fn).image(args[0])
    raise EvalError(f"cannot evaluate {type(node).__name__} as an expression")


def _exists_cmp(op: str, left: Interval, right: Interval) -> bool:
    """∃ x ∈ left, y ∈ right with ``x op y`` (operands independent)."""
    if left.is_empty() or right.is_empty():
        return False
    if op == ">=":
        if left.hi > right.lo:
            return True
        return left.hi == right.lo and not left.hi_open and not right.lo_open
    if op == ">":
        return left.hi > right.lo
    if op == "<=":
        return _exists_cmp(">=", right, left)
    if op == "<":
        return _exists_cmp(">", right, left)
    if op == "==":
        return left.overlaps(right)
    if op == "!=":
        return not (left.is_point() and right.is_point() and left.lo == right.lo)
    raise EvalError(f"unknown comparison {op!r}")


def _forall_cmp(op: str, left: Interval, right: Interval) -> bool:
    """∀ x ∈ left, y ∈ right: ``x op y`` (vacuously true on empties)."""
    if left.is_empty() or right.is_empty():
        return True
    if op == ">=":
        # min x >= max y; when the extrema coincide at c, every x >= c >= y.
        return left.lo >= right.hi
    if op == ">":
        if left.lo > right.hi:
            return True
        return left.lo == right.hi and (left.lo_open or right.hi_open)
    if op == "<=":
        return _forall_cmp(">=", right, left)
    if op == "<":
        return _forall_cmp(">", right, left)
    if op == "==":
        return left.is_point() and right.is_point() and left.lo == right.lo
    if op == "!=":
        return not left.overlaps(right)
    raise EvalError(f"unknown comparison {op!r}")


def condition_satisfiable(node: Node, env: IntervalEnv) -> bool:
    """Existential check of a condition over an interval environment.

    This is the planner's pruning test: ``False`` means the condition is
    provably violated for every concretization, so the action can be
    discarded.
    """
    if isinstance(node, And):
        return all(condition_satisfiable(p, env) for p in node.parts)
    if isinstance(node, Compare):
        return _exists_cmp(node.op, eval_interval(node.left, env), eval_interval(node.right, env))
    raise EvalError(f"not a condition: {node.unparse()!r}")


def condition_certain(node: Node, env: IntervalEnv) -> bool:
    """Universal check: the condition holds for *every* concretization."""
    if isinstance(node, And):
        return all(condition_certain(p, env) for p in node.parts)
    if isinstance(node, Compare):
        return _forall_cmp(node.op, eval_interval(node.left, env), eval_interval(node.right, env))
    raise EvalError(f"not a condition: {node.unparse()!r}")


def apply_assign_interval(node: Assign, env: IntervalEnv) -> Interval:
    """Interval counterpart of :func:`apply_assign_float`."""
    rhs = eval_interval(node.expr, env)
    if node.op == ":=":
        return rhs
    current = _lookup(env, node.target, "interval")
    return iadd(current, rhs) if node.op == "+=" else isub(current, rhs)
