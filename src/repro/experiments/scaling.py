"""Network-size scaling beyond the paper's 93 nodes.

The paper evaluates one large network; this module sweeps the transit-stub
generator's stub size to produce a family of networks (21 … 183+ nodes)
and measures how compilation and the three planner phases scale — the
analysis the paper's §6 proposes ("analyze the dependency between … and
performance of the algorithm").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..domains.media import build_app
from ..network import TransitStubParams, transit_stub_network
from ..planner import Planner, PlannerConfig, PlanningError
from .scenarios import scenario

__all__ = ["ScalingPoint", "scaling_network", "scaling_sweep"]


@dataclass
class ScalingPoint:
    """Measurements for one network size."""

    stub_size: int
    nodes: int
    links: int
    solved: bool
    ground_actions: int = 0
    plan_len: int = 0
    cost_lb: float = 0.0
    rg_nodes: int = 0
    compile_ms: float = 0.0
    search_ms: float = 0.0
    wall_ms: float = 0.0
    failure: str = ""

    def row(self) -> list[str]:
        if not self.solved:
            return [str(self.nodes), str(self.links), "—", "—", "—", "—", "—", self.failure]
        return [
            str(self.nodes),
            str(self.links),
            str(self.ground_actions),
            str(self.plan_len),
            f"{self.cost_lb:g}",
            str(self.rg_nodes),
            f"{self.compile_ms:.0f}",
            f"{self.search_ms:.0f}",
        ]


def scaling_network(stub_size: int, seed: int = 2004, node_cpu: float = 30.0):
    """A transit-stub network of 3 + 9·stub_size nodes with endpoints in
    stubs of different transit nodes."""
    params = TransitStubParams(stub_size=stub_size, node_cpu=node_cpu, seed=seed)
    net = transit_stub_network(params, name=f"scale-{params.node_count()}")
    server = "t0_0_s0_0"
    client = f"t0_2_s2_{stub_size - 1}"
    return net, server, client


def scaling_sweep(
    stub_sizes: tuple[int, ...] = (2, 5, 10, 15, 20),
    scenario_key: str = "C",
    seed: int = 2004,
    rg_node_budget: int = 200_000,
) -> list[ScalingPoint]:
    """Plan the media delivery across a family of network sizes."""
    scen = scenario(scenario_key)
    points: list[ScalingPoint] = []
    for stub_size in stub_sizes:
        net, server, client = scaling_network(stub_size, seed=seed)
        point = ScalingPoint(
            stub_size=stub_size, nodes=len(net), links=len(net.links), solved=False
        )
        app = build_app(server, client)
        planner = Planner(
            PlannerConfig(leveling=scen.leveling(), rg_node_budget=rg_node_budget)
        )
        t0 = time.perf_counter()
        try:
            plan = planner.solve(app, net)
        except PlanningError as exc:
            point.failure = type(exc).__name__
            point.wall_ms = (time.perf_counter() - t0) * 1e3
            points.append(point)
            continue
        point.solved = True
        point.ground_actions = plan.stats.total_actions
        point.plan_len = len(plan)
        point.cost_lb = plan.cost_lb
        point.rg_nodes = plan.stats.rg_nodes
        point.compile_ms = plan.stats.compile_ms
        point.search_ms = plan.stats.search_ms
        point.wall_ms = (time.perf_counter() - t0) * 1e3
        points.append(point)
    return points
