"""Network-size scaling beyond the paper's 93 nodes.

The paper evaluates one large network; this module sweeps two families
of transit-stub networks and measures how planning scales — the analysis
the paper's §6 proposes ("analyze the dependency between … and
performance of the algorithm"):

* the legacy *stub-size* family (:func:`scaling_network`): stubs grow,
  3 + 9·stub_size nodes — denser and denser LAN domains;
* the *domain-count* family (:func:`scaling_network_domains`): more and
  more 10-node stubs per transit node, 3 + 30·S nodes — the 1k–10k-node
  regime where hierarchical decomposition pays off.

All timings flow through the :mod:`repro.obs` machinery: each point runs
under a ``scaling.point`` span (wall time is the span duration) and the
per-phase numbers are read back from the ``planner.*`` metrics-registry
gauges the planner publishes — no raw clock arithmetic in this module.

:func:`scaling_compare_sweep` runs flat and hierarchical planning side
by side over the domain-count family; ``benchmarks/bench_hierarchy.py``
serializes its output into ``BENCH_pr10.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..domains.media import build_app
from ..network import TransitStubParams, transit_stub_network
from ..obs import Telemetry
from ..planner import Planner, PlannerConfig, PlannerStats, PlanningError
from .scenarios import scenario

__all__ = [
    "ScalingPoint",
    "scaling_network",
    "scaling_sweep",
    "scaling_network_domains",
    "ComparePoint",
    "scaling_compare_sweep",
]


@dataclass
class ScalingPoint:
    """Measurements for one network size."""

    stub_size: int
    nodes: int
    links: int
    solved: bool
    ground_actions: int = 0
    plan_len: int = 0
    cost_lb: float = 0.0
    rg_nodes: int = 0
    compile_ms: float = 0.0
    search_ms: float = 0.0
    wall_ms: float = 0.0
    failure: str = ""

    def row(self) -> list[str]:
        if not self.solved:
            return [str(self.nodes), str(self.links), "—", "—", "—", "—", "—", self.failure]
        return [
            str(self.nodes),
            str(self.links),
            str(self.ground_actions),
            str(self.plan_len),
            f"{self.cost_lb:g}",
            str(self.rg_nodes),
            f"{self.compile_ms:.0f}",
            f"{self.search_ms:.0f}",
        ]


def scaling_network(stub_size: int, seed: int = 2004, node_cpu: float = 30.0):
    """A transit-stub network of 3 + 9·stub_size nodes with endpoints in
    stubs of different transit nodes."""
    params = TransitStubParams(stub_size=stub_size, node_cpu=node_cpu, seed=seed)
    net = transit_stub_network(params, name=f"scale-{params.node_count()}")
    server = "t0_0_s0_0"
    client = f"t0_2_s2_{stub_size - 1}"
    return net, server, client


def scaling_network_domains(stub_domains: int, seed: int = 2004, node_cpu: float = 30.0):
    """A transit-stub network of 3 + 30·stub_domains nodes.

    Stub size stays at the paper's 10 and the *number of stub domains
    per transit node* grows instead — the realistic way a transit-stub
    internet gets big, and the regime where the hierarchical planner's
    per-domain work stays constant while flat planning degrades.
    Endpoints sit in the first stub of the first transit node and the
    last stub of the last one.
    """
    params = TransitStubParams(
        stub_domains_per_transit=stub_domains, node_cpu=node_cpu, seed=seed
    )
    net = transit_stub_network(params, name=f"scale-{params.node_count()}")
    server = "t0_0_s0_0"
    client = f"t0_2_s{stub_domains - 1}_9"
    return net, server, client


def _timed_solve(planner_config: PlannerConfig, app, net):
    """One solve under a ``scaling.point`` span.

    Returns ``(plan_or_None, failure_name, stats, wall_ms)`` where
    ``stats`` is rebuilt from the ``planner.*`` registry gauges — the
    planner publishes them on success; on failure the gauges hold
    whatever phases completed, which is exactly what a scaling table
    should report for a timed-out point.
    """
    telemetry = Telemetry()
    config = replace(planner_config, telemetry=telemetry)
    plan = None
    failure = ""
    with telemetry.span("scaling.point", app=app.name, network=net.name) as sp:
        try:
            plan = Planner(config).solve(app, net)
        except PlanningError as exc:
            failure = type(exc).__name__
    stats = plan.stats if plan is not None else PlannerStats.from_metrics(telemetry.metrics)
    return plan, failure, stats, sp.duration_ms


def scaling_sweep(
    stub_sizes: tuple[int, ...] = (2, 5, 10, 15, 20),
    scenario_key: str = "C",
    seed: int = 2004,
    rg_node_budget: int = 200_000,
) -> list[ScalingPoint]:
    """Plan the media delivery across the legacy stub-size family."""
    scen = scenario(scenario_key)
    points: list[ScalingPoint] = []
    for stub_size in stub_sizes:
        net, server, client = scaling_network(stub_size, seed=seed)
        point = ScalingPoint(
            stub_size=stub_size, nodes=len(net), links=len(net.links), solved=False
        )
        app = build_app(server, client)
        config = PlannerConfig(leveling=scen.leveling(), rg_node_budget=rg_node_budget)
        plan, failure, stats, wall_ms = _timed_solve(config, app, net)
        point.wall_ms = wall_ms
        point.compile_ms = stats.compile_ms
        point.search_ms = stats.search_ms
        if plan is None:
            point.failure = failure
        else:
            point.solved = True
            point.ground_actions = plan.stats.total_actions
            point.plan_len = len(plan)
            point.cost_lb = plan.cost_lb
            point.rg_nodes = plan.stats.rg_nodes
        points.append(point)
    return points


@dataclass
class ComparePoint:
    """Flat vs hierarchical planning on one domain-count network."""

    stub_domains: int
    nodes: int
    links: int
    flat_solved: bool = False
    flat_ms: float = 0.0
    flat_cost: float = 0.0
    flat_failure: str = ""
    hier_solved: bool = False
    hier_ms: float = 0.0
    hier_cost: float = 0.0
    hier_mode: str = ""
    hier_domains: int = 0
    hier_plan_len: int = 0

    @property
    def cost_delta(self) -> float | None:
        """Hierarchical minus flat cost, when both solved (0 == parity)."""
        if not (self.flat_solved and self.hier_solved):
            return None
        return self.hier_cost - self.flat_cost

    @property
    def speedup(self) -> float | None:
        """Flat wall time over hierarchical wall time, when both solved."""
        if not (self.flat_solved and self.hier_solved) or self.hier_ms <= 0:
            return None
        return self.flat_ms / self.hier_ms

    def to_dict(self) -> dict:
        return {
            "stub_domains": self.stub_domains,
            "nodes": self.nodes,
            "links": self.links,
            "flat": {
                "solved": self.flat_solved,
                "wall_ms": round(self.flat_ms, 3),
                "cost_lb": self.flat_cost,
                "failure": self.flat_failure,
            },
            "hierarchical": {
                "solved": self.hier_solved,
                "wall_ms": round(self.hier_ms, 3),
                "cost_lb": self.hier_cost,
                "mode": self.hier_mode,
                "domains": self.hier_domains,
                "plan_len": self.hier_plan_len,
            },
            "cost_delta": self.cost_delta,
            "speedup": None if self.speedup is None else round(self.speedup, 2),
        }


def scaling_compare_sweep(
    stub_domains: tuple[int, ...] = (4, 11, 33),
    scenario_key: str = "C",
    seed: int = 2004,
    rg_node_budget: int = 200_000,
    flat_time_limit_s: float | None = 120.0,
    flat_max_nodes: int | None = None,
    workers: int = 1,
) -> list[ComparePoint]:
    """Flat vs hierarchical planning over the domain-count family.

    ``flat_time_limit_s`` bounds each flat solve (a timed-out point
    records its failure and elapsed wall time); ``flat_max_nodes`` skips
    flat planning entirely above a size, for sweeps whose largest
    networks would otherwise dominate the run.  Hierarchical planning
    runs with ``workers`` domain workers and the standard fallback
    ladder — its mode is recorded per point, so a sweep that silently
    degraded to flat planning is visible in the output.
    """
    # Local import: repro.hierarchy imports repro.planner.
    from ..hierarchy import HierarchyConfig, solve_hierarchical

    scen = scenario(scenario_key)
    points: list[ComparePoint] = []
    for count in stub_domains:
        net, server, client = scaling_network_domains(count, seed=seed)
        app = build_app(server, client)
        point = ComparePoint(stub_domains=count, nodes=len(net), links=len(net.links))

        if flat_max_nodes is None or len(net) <= flat_max_nodes:
            config = PlannerConfig(
                leveling=scen.leveling(),
                rg_node_budget=rg_node_budget,
                time_limit_s=flat_time_limit_s,
                anytime=False,
            )
            plan, failure, _stats, wall_ms = _timed_solve(config, app, net)
            point.flat_ms = wall_ms
            if plan is None:
                point.flat_failure = failure
            else:
                point.flat_solved = True
                point.flat_cost = plan.cost_lb
        else:
            point.flat_failure = "skipped"

        telemetry = Telemetry()
        with telemetry.span("scaling.point", network=net.name, mode="hier") as sp:
            try:
                outcome = solve_hierarchical(
                    app,
                    net,
                    leveling=scen.leveling(),
                    config=HierarchyConfig(workers=workers),
                    planner_config=PlannerConfig(rg_node_budget=rg_node_budget),
                    telemetry=telemetry,
                )
            except PlanningError as exc:
                outcome = None
                point.hier_mode = type(exc).__name__
        point.hier_ms = sp.duration_ms
        if outcome is not None and outcome.solved:
            point.hier_solved = True
            point.hier_cost = outcome.plan.cost_lb
            point.hier_mode = outcome.mode
            point.hier_domains = outcome.domains
            point.hier_plan_len = len(outcome.plan)
        points.append(point)
    return points
