"""Experiment harness: runs the paper's evaluation and collects rows.

The central entry point is :func:`run_cell`, which solves one
(network, scenario) pair of Table 2 and returns a :class:`Table2Row`
holding both halves of the table — solution quality (cost lower bound,
plan length, reserved LAN bandwidth) and planner work (action counts,
graph sizes, timings).
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..domains.media import DEFAULT_DEMAND, DEFAULT_SOURCE_BW, build_app
from ..obs import Telemetry, maybe_span
from ..planner import (
    Plan,
    Planner,
    PlannerConfig,
    PlanningError,
    ResourceInfeasible,
    Unsolvable,
)
from .networks import NetworkCase, network_case
from .scenarios import Scenario, scenario

__all__ = ["Table2Row", "run_cell", "run_table2", "TABLE2_NETWORKS", "TABLE2_SCENARIOS"]

TABLE2_NETWORKS = ("Tiny", "Small", "Large")
TABLE2_SCENARIOS = ("B", "C", "D", "E")


@dataclass
class Table2Row:
    """One row of Table 2 (plus the failure case of scenario A)."""

    network: str
    scenario: str
    solved: bool
    failure: str = ""
    # quality of the solution
    cost_lower_bound: float = 0.0
    actions_in_plan: int = 0
    reserved_lan_bw: float | None = None  # None = N/A (no LAN links)
    exact_cost: float = 0.0
    delivered_bw: float = 0.0
    # work done by the planner
    total_actions: int = 0
    plrg_props: int = 0
    plrg_actions: int = 0
    slrg_nodes: int = 0
    rg_nodes: int = 0
    rg_queue_left: int = 0
    total_ms: float = 0.0
    search_ms: float = 0.0
    plan: Plan | None = field(default=None, repr=False)
    plan_names: tuple[str, ...] = ()
    """Action names of the plan — survives the trip back from a worker
    process, where ``plan`` (which drags the compiled problem along) is
    deliberately stripped.  Filled on every solved cell."""

    def to_record(self, include_timings: bool = False) -> dict:
        """Deterministic JSON-ready record of this cell.

        Timings are excluded by default so records are byte-identical
        across runs and worker counts (the determinism suite relies on
        this); pass ``include_timings=True`` for human-facing exports.
        """
        record = {
            "network": self.network,
            "scenario": self.scenario,
            "solved": self.solved,
            "failure": self.failure,
            "cost_lower_bound": self.cost_lower_bound,
            "actions_in_plan": self.actions_in_plan,
            "reserved_lan_bw": self.reserved_lan_bw,
            "exact_cost": self.exact_cost,
            "delivered_bw": self.delivered_bw,
            "total_actions": self.total_actions,
            "plrg_props": self.plrg_props,
            "plrg_actions": self.plrg_actions,
            "slrg_nodes": self.slrg_nodes,
            "rg_nodes": self.rg_nodes,
            "rg_queue_left": self.rg_queue_left,
            "plan": list(self.plan.action_names()) if self.plan is not None
            else list(self.plan_names),
        }
        if include_timings:
            record["total_ms"] = self.total_ms
            record["search_ms"] = self.search_ms
        return record

    def cells(self) -> list[str]:
        """Formatted cells in the paper's column order."""
        if not self.solved:
            return [self.network, self.scenario, "—", "—", "—",
                    str(self.total_actions), "—", "—", "—", self.failure]
        lan = "N/A" if self.reserved_lan_bw is None else f"{self.reserved_lan_bw:g}"
        return [
            self.network,
            self.scenario,
            f"{self.cost_lower_bound:g}",
            str(self.actions_in_plan),
            lan,
            str(self.total_actions),
            f"{self.plrg_props} / {self.plrg_actions}",
            str(self.slrg_nodes),
            f"{self.rg_nodes} / {self.rg_queue_left}",
            f"{self.total_ms:.0f} / {self.search_ms:.0f}",
        ]


def run_cell(
    case: NetworkCase | str,
    scen: Scenario | str,
    source_bw: float = DEFAULT_SOURCE_BW,
    demand: float = DEFAULT_DEMAND,
    rg_node_budget: int = 500_000,
    telemetry: Telemetry | None = None,
    compile_cache=None,
    static_prune: str | None = None,
) -> Table2Row:
    """Solve one (network, scenario) cell of the paper's evaluation.

    With ``telemetry``, the whole cell is wrapped in a ``scenario`` span
    (the planner's phase spans nest inside it), so a full ``run_table2``
    export shows every cell on one timeline.  With ``compile_cache`` (a
    :class:`repro.parallel.CompileCache`), compilation of repeated cells
    is served from the cache — identical results, near-zero compile time
    on a hit.  ``static_prune`` (off/dead/symmetry/full) enables the
    certified static pruning of docs/ANALYSIS.md; with a cache, the
    analysis result is cached alongside the compiled problem.
    """
    if isinstance(case, str):
        case = network_case(case)
    if isinstance(scen, str):
        scen = scenario(scen)

    app = build_app(case.server, case.client, source_bw=source_bw, demand=demand)
    leveling = scen.leveling()
    planner = Planner(
        PlannerConfig(
            leveling=leveling,
            rg_node_budget=rg_node_budget,
            telemetry=telemetry,
            static_prune=static_prune,
        )
    )
    row = Table2Row(network=case.key, scenario=scen.key, solved=False)
    with maybe_span(
        telemetry, "scenario", network=case.key, scenario=scen.key
    ) as span:
        t0 = time.perf_counter()
        try:
            if compile_cache is not None:
                problem = compile_cache.compile(
                    app,
                    case.network,
                    leveling,
                    analyze=static_prune not in (None, "off"),
                    metrics=telemetry.metrics if telemetry is not None else None,
                )
            else:
                problem = planner.compile(app, case.network)
            row.total_actions = len(problem.actions)
            plan = planner.solve(problem=problem)
        except (Unsolvable, ResourceInfeasible, PlanningError) as exc:
            row.failure = type(exc).__name__
            row.total_ms = (time.perf_counter() - t0) * 1e3
            if span is not None:
                span.attrs["failure"] = row.failure
            return row

        report = plan.execute()
        lan_vars = case.lan_link_vars()
        row.solved = True
        row.plan = plan
        row.plan_names = tuple(plan.action_names())
        row.cost_lower_bound = plan.cost_lb
        row.actions_in_plan = len(plan)
        row.reserved_lan_bw = report.max_consumed(lan_vars) if lan_vars else None
        row.exact_cost = report.total_cost
        row.delivered_bw = report.value(f"ibw:M@{case.client}")
        row.plrg_props = plan.stats.plrg_prop_nodes
        row.plrg_actions = plan.stats.plrg_action_nodes
        row.slrg_nodes = plan.stats.slrg_set_nodes
        row.rg_nodes = plan.stats.rg_nodes
        row.rg_queue_left = plan.stats.rg_queue_left
        row.total_ms = plan.stats.total_ms + plan.stats.compile_ms
        row.search_ms = plan.stats.search_ms
        if span is not None:
            span.attrs.update(cost_lb=plan.cost_lb, plan_actions=len(plan))
        return row


def run_table2(
    networks: tuple[str, ...] = TABLE2_NETWORKS,
    scenarios: tuple[str, ...] = TABLE2_SCENARIOS,
    workers: int = 1,
    on_frame=None,
    stream_interval_s: float | None = None,
    profile_sink: list | None = None,
    **kwargs,
) -> list[Table2Row]:
    """Reproduce Table 2: every (network, scenario) pair.

    With ``workers > 1`` the cells fan out over a spawn-started process
    pool (:mod:`repro.parallel`), one cell per task, sharded
    deterministically.  Rows come back in the same (network, scenario)
    order as the serial walk, worker metrics are merged into the caller's
    telemetry in task order, and every row's ``plan`` field is ``None``
    (``plan_names`` carries the actions — compiled problems stay in the
    workers).  Worker *spans* ride home in the metrics snapshots and are
    stitched under the coordinator's ``table2.fanout`` dispatch span
    (per-pid lanes in the exporters).

    ``on_frame`` attaches a live telemetry stream (``--live``): workers
    push :mod:`repro.obs.stream` frames while running; the serial walk
    emits equivalent worker-0 frames itself (without per-task metric
    deltas — the caller's registry already has them).  ``profile_sink``
    collects per-cell cProfile blobs as ``(pid, blob)`` tuples
    (``repro bench --profile-out``).
    """
    if workers > 1:
        return _run_table2_parallel(
            networks,
            scenarios,
            workers,
            on_frame=on_frame,
            stream_interval_s=stream_interval_s,
            profile_sink=profile_sink,
            **kwargs,
        )
    from ..obs import capture_profile, make_frame

    total = len(networks) * len(scenarios)
    rows: list[Table2Row] = []
    for net_key in networks:
        case = network_case(net_key)
        for scen_key in scenarios:
            index = len(rows)
            label = f"{net_key}/{scen_key}"
            if on_frame is not None:
                on_frame(
                    0,
                    make_frame(
                        "task_start", task=index, label=label,
                        done=index, total=total,
                    ),
                )
            if profile_sink is not None:
                blobs: list[bytes] = []
                with capture_profile(blobs):
                    row = run_cell(case, scen_key, **kwargs)
                profile_sink.append((os.getpid(), blobs[0]))
            else:
                row = run_cell(case, scen_key, **kwargs)
            rows.append(row)
            if on_frame is not None:
                on_frame(
                    0,
                    make_frame(
                        "task_end", task=index, label=label,
                        done=len(rows), total=total, ok=row.solved,
                    ),
                )
    return rows


def _run_table2_parallel(
    networks: tuple[str, ...],
    scenarios: tuple[str, ...],
    workers: int,
    source_bw: float = DEFAULT_SOURCE_BW,
    demand: float = DEFAULT_DEMAND,
    rg_node_budget: int = 500_000,
    telemetry: Telemetry | None = None,
    compile_cache=None,
    pool=None,
    static_prune: str | None = None,
    on_frame=None,
    stream_interval_s: float | None = None,
    profile_sink: list | None = None,
) -> list[Table2Row]:
    """One Table-2 cell per pool task; results reassembled in cell order.

    ``pool`` lets a caller (the benchmark harness) keep one warm
    pool-compatible executor across repeated sweeps so the per-worker
    compile caches persist; by default a
    :class:`~repro.parallel.Supervisor` is created and torn down around
    this one sweep, so a worker death mid-sweep respawns and retries
    instead of aborting.  ``compile_cache`` only gates whether workers
    use *their own* process-global cache (it cannot cross the process
    boundary).
    """
    from ..parallel import CellTask, Supervisor, resolve_workers, run_cell_task

    workers = resolve_workers(workers, len(networks) * len(scenarios))
    dispatch = (
        telemetry.span("table2.fanout", workers=workers)
        if telemetry is not None
        else nullcontext()
    )
    with dispatch:
        # Tasks carry the dispatch span's context so every worker span
        # stitches under it when the snapshots come home.
        ctx = telemetry.current_context() if telemetry is not None else None
        tasks = [
            CellTask(
                network=net_key,
                scenario=scen_key,
                source_bw=source_bw,
                demand=demand,
                rg_node_budget=rg_node_budget,
                with_metrics=telemetry is not None,
                use_cache=compile_cache is not None,
                static_prune=static_prune,
                trace=ctx,
                profile=profile_sink is not None,
            )
            for net_key in networks
            for scen_key in scenarios
        ]
        if pool is not None:
            results = pool.map(
                run_cell_task, tasks,
                on_frame=on_frame, stream_interval_s=stream_interval_s,
            )
        else:
            with Supervisor(workers, telemetry=telemetry) as fresh:
                results = fresh.map(
                    run_cell_task, tasks,
                    on_frame=on_frame, stream_interval_s=stream_interval_s,
                )
    # Stitch worker spans and merge metrics in task order (deterministic
    # regardless of completion interleaving), then hand rows back in the
    # serial walk's order.
    if telemetry is not None:
        for index, result in enumerate(results):
            telemetry.stitch_snapshot(result.metrics, worker=index % workers)
            result.metrics.merge_into(telemetry.metrics)
    if profile_sink is not None:
        for result in results:
            if result.profile:
                profile_sink.append((result.metrics.pid, result.profile))
    return [result.row for result in results]
