"""The resource-level scenarios of Table 1.

Five levelings of the media-delivery problem, from the original greedy
planner (A — no levels) through increasingly fine stream-bandwidth levels
(B, C, D) to leveled link bandwidth (E).  T/I/Z cutpoints are proportional
to M's, per the table's footnote.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..domains.media import proportional_leveling
from ..model import Leveling

__all__ = ["Scenario", "SCENARIOS", "scenario", "scenario_keys"]


@dataclass(frozen=True)
class Scenario:
    """One row of Table 1."""

    key: str
    m_cutpoints: tuple[float, ...]
    link_cutpoints: tuple[float, ...]
    description: str

    def leveling(self) -> Leveling:
        return proportional_leveling(self.m_cutpoints, self.link_cutpoints, name=self.key)

    def m_levels_str(self) -> str:
        return _levels_str(self.m_cutpoints)

    def link_levels_str(self) -> str:
        return _levels_str(self.link_cutpoints)


def _levels_str(cutpoints: tuple[float, ...]) -> str:
    if not cutpoints:
        return "[0, inf)"
    parts = []
    prev = 0.0
    for c in cutpoints:
        parts.append(f"[{prev:g}, {c:g})")
        prev = c
    parts.append(f"[{prev:g}, inf)")
    return " ".join(parts)


SCENARIOS: dict[str, Scenario] = {
    "A": Scenario("A", (), (), "original greedy Sekitei — no levels"),
    "B": Scenario("B", (100.0,), (), "single cutpoint capping utilization at 100"),
    "C": Scenario("C", (90.0, 100.0), (), "cutpoints around the client demand"),
    "D": Scenario("D", (30.0, 70.0, 90.0, 100.0), (), "five bandwidth levels"),
    "E": Scenario(
        "E",
        (30.0, 70.0, 90.0, 100.0),
        (31.0, 62.0),
        "five bandwidth levels plus leveled link bandwidth",
    ),
}


def scenario(key: str) -> Scenario:
    try:
        return SCENARIOS[key.upper()]
    except KeyError:
        raise KeyError(f"unknown scenario {key!r}; choose from {sorted(SCENARIOS)}") from None


def scenario_keys() -> list[str]:
    return sorted(SCENARIOS)
