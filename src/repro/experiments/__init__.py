"""Experiment harness reproducing the paper's evaluation (§4)."""

from .harness import (
    TABLE2_NETWORKS,
    TABLE2_SCENARIOS,
    Table2Row,
    run_cell,
    run_table2,
)
from .networks import NetworkCase, large_case, network_case, small_case, tiny_case
from .reporting import format_table, render_table1, render_table2
from .scaling import (
    ComparePoint,
    ScalingPoint,
    scaling_compare_sweep,
    scaling_network,
    scaling_network_domains,
    scaling_sweep,
)
from .scenarios import SCENARIOS, Scenario, scenario, scenario_keys

__all__ = [
    "Scenario",
    "SCENARIOS",
    "scenario",
    "scenario_keys",
    "NetworkCase",
    "tiny_case",
    "small_case",
    "large_case",
    "network_case",
    "Table2Row",
    "run_cell",
    "run_table2",
    "TABLE2_NETWORKS",
    "TABLE2_SCENARIOS",
    "format_table",
    "render_table1",
    "render_table2",
    "ScalingPoint",
    "scaling_network",
    "scaling_sweep",
    "ComparePoint",
    "scaling_compare_sweep",
    "scaling_network_domains",
]
