"""Plain-text rendering of experiment results in the paper's table shapes."""

from __future__ import annotations

from typing import Iterable, Sequence

from .harness import Table2Row
from .scenarios import SCENARIOS, Scenario

__all__ = ["format_table", "render_table1", "render_table2"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Fixed-width text table."""
    materialized = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(cells))
    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [line(headers), sep]
    out.extend(line(r) for r in materialized)
    return "\n".join(out)


def render_table1(scenarios: Iterable[Scenario] | None = None) -> str:
    """Table 1 — resource level scenarios."""
    scens = list(scenarios) if scenarios is not None else [SCENARIOS[k] for k in sorted(SCENARIOS)]
    headers = ["Scenario", "Levels of bandwidth of M", "Levels of link bandwidth"]
    rows = [[s.key, s.m_levels_str(), s.link_levels_str()] for s in scens]
    return format_table(headers, rows)


def render_table2(rows: Iterable[Table2Row]) -> str:
    """Table 2 — scalability evaluation (quality + planner work)."""
    headers = [
        "Network",
        "Scen",
        "cost lb",
        "plan len",
        "LAN bw",
        "actions",
        "PLRG",
        "SLRG",
        "RG",
        "time ms (tot/search)",
    ]
    return format_table(headers, [r.cells() for r in rows])
