"""The three evaluation networks of §4.1.

All three share the paper's resource distribution: LAN links 150 units,
WAN links 70 units, and per-node CPU sized so split+zip handles up to
≈111 units of the media stream (30 CPU under the media domain's
formulas).  Server and client endpoints are fixed per network.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..domains.media import DEFAULT_NODE_CPU
from ..network import Network, chain_network, large_paper_network, pair_network

__all__ = ["NetworkCase", "tiny_case", "small_case", "large_case", "NETWORK_CASES", "network_case"]

LAN_BW = 150.0
WAN_BW = 70.0


@dataclass(frozen=True)
class NetworkCase:
    """One evaluation network with its server/client endpoints."""

    key: str
    network: Network
    server: str
    client: str
    description: str

    def lan_link_vars(self) -> set[str]:
        """Ground variables of the LAN links' bandwidth (for Table 2 col. 4)."""
        return {f"lbw@{lk.a}~{lk.b}" for lk in self.network.links_with_label("LAN")}


def tiny_case(cpu: float = DEFAULT_NODE_CPU) -> NetworkCase:
    """The two-node network of Fig. 3: one 70-unit WAN link, 30 CPU at the
    source, ample CPU at the target (the paper's footnote 1)."""
    net = pair_network(cpu=cpu, link_bw=WAN_BW, name="tiny")
    return NetworkCase("Tiny", net, "n0", "n1", "2-node network of Fig. 3")


def small_case(cpu: float = DEFAULT_NODE_CPU) -> NetworkCase:
    """The 6-node network of Fig. 9: LAN–WAN–LAN chain plus two spur nodes.

    The suboptimal plan ships M raw over the LAN links (reserving 100
    units there); the optimal plan splits at the server and reserves only
    Z + I = 65 units of LAN bandwidth.
    """
    net = chain_network(
        [(LAN_BW, "LAN"), (WAN_BW, "WAN"), (LAN_BW, "LAN")],
        cpu=cpu,
        spurs=2,
        spur_bw=LAN_BW,
        name="small",
    )
    return NetworkCase("Small", net, "n0", "n3", "6-node network of Fig. 9")


def large_case(cpu: float = DEFAULT_NODE_CPU, seed: int = 2004) -> NetworkCase:
    """The 93-node GT-ITM transit-stub network of Fig. 10.

    Server and client sit in stub domains attached to different transit
    nodes, so the data path must traverse the WAN backbone; the other ~80
    nodes take no part in the plan but cannot be statically pruned.
    """
    net = large_paper_network(node_cpu=cpu, lan_bandwidth=LAN_BW, wan_bandwidth=WAN_BW, seed=seed)
    return NetworkCase("Large", net, "t0_0_s0_0", "t0_2_s2_5", "93-node network of Fig. 10")


NETWORK_CASES = {"Tiny": tiny_case, "Small": small_case, "Large": large_case}


def network_case(key: str) -> NetworkCase:
    try:
        return NETWORK_CASES[key.capitalize() if key.lower() != "tiny" else "Tiny"]()
    except KeyError:
        raise KeyError(f"unknown network {key!r}; choose from {sorted(NETWORK_CASES)}") from None
