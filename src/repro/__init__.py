"""repro — resource-aware deployment planning for component-based
distributed applications.

A from-scratch reproduction of the leveled Sekitei planner (Kichkaylo &
Karamcheti, HPDC 2004): the component placement problem (CPP) model, the
three-phase planning algorithm (PLRG → SLRG → RG) with resource levels and
cost optimization, the original greedy baseline, the paper's media-stream
evaluation domain, and a GT-ITM-style topology generator.

Quickstart::

    from repro import Planner, PlannerConfig
    from repro.domains import media
    from repro.network import pair_network

    net = pair_network(cpu=30, link_bw=70)       # Fig. 3's Tiny network
    app = media.build_app("n0", "n1")            # Server at n0, Client at n1
    leveling = media.proportional_leveling((90, 100))   # scenario C
    plan = Planner(PlannerConfig(leveling=leveling)).solve(app, net)
    print(plan.describe())
    print(plan.execute().total_cost)
"""

from .intervals import Interval, ResourceMap
from .network import Link, Network, Node, ResourceDecl, ResourceScope
from .model import (
    AppSpec,
    ComponentSpec,
    InterfaceType,
    Leveling,
    LevelSpec,
    Placement,
    PropertySpec,
    SpecError,
    bandwidth_interface,
    parse_spec_text,
)
from .compile import CompiledProblem, GroundAction, compile_problem
from .planner import (
    ExecutionError,
    ExecutionReport,
    Heuristic,
    Plan,
    Planner,
    PlannerConfig,
    PlanningError,
    ResourceInfeasible,
    SearchBudgetExceeded,
    Unsolvable,
    execute_plan,
    solve,
)
from .baselines import DirectConnection, GreedySekitei, exhaustive_optimal
from .lint import Diagnostic, LintOptions, LintReport, Severity, lint_app, require_lint_clean
from .obs import MetricsRegistry, SearchTrace, Telemetry, export_trace, load_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # substrate
    "Interval",
    "ResourceMap",
    "Network",
    "Node",
    "Link",
    "ResourceDecl",
    "ResourceScope",
    # model
    "AppSpec",
    "ComponentSpec",
    "InterfaceType",
    "PropertySpec",
    "LevelSpec",
    "Leveling",
    "Placement",
    "SpecError",
    "bandwidth_interface",
    "parse_spec_text",
    # compilation
    "CompiledProblem",
    "GroundAction",
    "compile_problem",
    # planner
    "Planner",
    "PlannerConfig",
    "Heuristic",
    "Plan",
    "solve",
    "execute_plan",
    "ExecutionReport",
    "PlanningError",
    "Unsolvable",
    "ResourceInfeasible",
    "SearchBudgetExceeded",
    "ExecutionError",
    # baselines
    "GreedySekitei",
    "DirectConnection",
    "exhaustive_optimal",
    # lint
    "Diagnostic",
    "LintReport",
    "LintOptions",
    "Severity",
    "lint_app",
    "require_lint_clean",
    # observability
    "Telemetry",
    "MetricsRegistry",
    "SearchTrace",
    "export_trace",
    "load_trace",
]
