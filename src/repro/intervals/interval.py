"""Interval type with open/closed bound bookkeeping.

The planner reasons about real-valued resource and property variables via
intervals.  Resource *levels* in the paper are half-open ``[lo, hi)``
intervals; whether a bound is attainable matters for condition checks
(``[0, 90)`` does not satisfy ``>= 90`` while ``[90, 100)`` does), so the
interval type tracks openness of each endpoint explicitly.

Intervals are immutable by contract; all operations return new instances.
(Construction sits on the replay hot path — millions of instances per
search — so the class is a hand-rolled ``__slots__`` class rather than a
frozen dataclass: frozen-init ``object.__setattr__`` dispatch roughly
triples construction cost.  Nothing in the codebase mutates an interval
after construction.)
"""

from __future__ import annotations

import math

__all__ = ["Interval", "EMPTY"]

_INF = math.inf
_NINF = -math.inf


class Interval:
    """A (possibly empty, possibly unbounded) real interval.

    Attributes
    ----------
    lo, hi:
        Endpoint values.  ``hi`` may be ``math.inf``; ``lo`` may be
        ``-math.inf``.
    lo_open, hi_open:
        Whether each endpoint is excluded.  Infinite endpoints are never
        attainable and are normalized to open at construction, so openness
        logic needs no special-casing downstream.
    """

    __slots__ = ("lo", "hi", "lo_open", "hi_open")

    def __init__(
        self,
        lo: float,
        hi: float,
        lo_open: bool = False,
        hi_open: bool = False,
    ):
        self.lo = lo
        self.hi = hi
        self.lo_open = lo_open or lo == _NINF
        self.hi_open = hi_open or hi == _INF

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Interval:
            return (
                self.lo == other.lo
                and self.hi == other.hi
                and self.lo_open == other.lo_open
                and self.hi_open == other.hi_open
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.lo, self.hi, self.lo_open, self.hi_open))

    # -- constructors ------------------------------------------------------

    @staticmethod
    def closed(lo: float, hi: float) -> "Interval":
        """``[lo, hi]``."""
        return Interval(lo, hi, False, False)

    @staticmethod
    def half_open(lo: float, hi: float) -> "Interval":
        """``[lo, hi)`` — the shape of a resource level."""
        return Interval(lo, hi, False, True)

    @staticmethod
    def open(lo: float, hi: float) -> "Interval":
        """``(lo, hi)``."""
        return Interval(lo, hi, True, True)

    @staticmethod
    def point(x: float) -> "Interval":
        """The degenerate interval ``[x, x]``."""
        return Interval(x, x, False, False)

    @staticmethod
    def at_least(lo: float) -> "Interval":
        """``[lo, inf)``."""
        return Interval(lo, _INF, False, True)

    @staticmethod
    def nonnegative() -> "Interval":
        """``[0, inf)`` — the default level of an unleveled variable."""
        return Interval(0.0, _INF, False, True)

    # -- basic queries -----------------------------------------------------

    def is_empty(self) -> bool:
        """True when the interval contains no points."""
        if self.lo > self.hi:
            return True
        if self.lo == self.hi:
            return self.lo_open or self.hi_open or math.isinf(self.lo)
        return False

    def is_point(self) -> bool:
        """True when the interval is a single attainable value."""
        return self.lo == self.hi and not (self.lo_open or self.hi_open)

    def is_bounded(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    def width(self) -> float:
        """Length of the interval (0 for empty/point, inf if unbounded)."""
        if self.is_empty():
            return 0.0
        return self.hi - self.lo

    def __contains__(self, x: float) -> bool:
        if self.is_empty():
            return False
        if x < self.lo or (x == self.lo and self.lo_open):
            return False
        if x > self.hi or (x == self.hi and self.hi_open):
            return False
        return True

    def __bool__(self) -> bool:
        return not self.is_empty()

    # -- attainable extrema ------------------------------------------------

    def sup_value(self, cap: float = _INF) -> float:
        """Greatest attainable value, clamped to ``cap``.

        For an open upper bound the supremum itself is not attainable;
        callers that need an attainable concretization should use
        :meth:`greedy_value`.
        """
        return min(self.hi, cap)

    def greedy_value(self, cap: float = _INF) -> float:
        """The value a greedy (max-utilization) concretizer picks.

        Levels cap greed at their upper cutpoint (DESIGN.md rule 2): the
        planner processes ``min(cap, hi)`` units.  The open upper bound is
        intentionally treated as attainable here — the cutpoint is a
        processing cap, not a strict constraint on the concrete value.
        """
        v = min(self.hi, cap)
        if math.isinf(v):
            raise ValueError(f"cannot concretize unbounded interval {self} without a cap")
        return max(v, self.lo)

    # -- set operations ----------------------------------------------------

    def intersect(self, other: "Interval") -> "Interval":
        """Set intersection (may be empty)."""
        if self.lo > other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo > self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open or other.lo_open
        if self.hi < other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi < self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open or other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        if self.lo < other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo < self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open and other.lo_open
        if self.hi > other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi > self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open and other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` is a subset of this interval."""
        if other.is_empty():
            return True
        if self.is_empty():
            return False
        lo_ok = other.lo > self.lo or (
            other.lo == self.lo and (other.lo_open or not self.lo_open)
        )
        hi_ok = other.hi < self.hi or (
            other.hi == self.hi and (other.hi_open or not self.hi_open)
        )
        return lo_ok and hi_ok

    def overlaps(self, other: "Interval") -> bool:
        return not self.intersect(other).is_empty()

    # -- existential comparison satisfiability ------------------------------
    #
    # These implement the planner's existential condition semantics
    # (DESIGN.md rule 3): a leveled condition survives iff *some* value in
    # the committed interval satisfies it.

    def exists_ge(self, c: float) -> bool:
        """∃ v ∈ self: v >= c."""
        if self.is_empty():
            return False
        return self.hi > c or (self.hi == c and not self.hi_open)

    def exists_gt(self, c: float) -> bool:
        """∃ v ∈ self: v > c."""
        if self.is_empty():
            return False
        return self.hi > c

    def exists_le(self, c: float) -> bool:
        """∃ v ∈ self: v <= c."""
        if self.is_empty():
            return False
        return self.lo < c or (self.lo == c and not self.lo_open)

    def exists_lt(self, c: float) -> bool:
        """∃ v ∈ self: v < c."""
        if self.is_empty():
            return False
        return self.lo < c

    def exists_eq(self, c: float) -> bool:
        """∃ v ∈ self: v == c."""
        return c in self

    # -- universal comparison checks ----------------------------------------

    def forall_ge(self, c: float) -> bool:
        """∀ v ∈ self: v >= c (vacuously true when empty)."""
        if self.is_empty():
            return True
        return self.lo > c or (self.lo == c and not self.lo_open) or self.lo == c

    def forall_le(self, c: float) -> bool:
        """∀ v ∈ self: v <= c (vacuously true when empty)."""
        if self.is_empty():
            return True
        return self.hi <= c

    # -- misc ----------------------------------------------------------------

    def clamp_nonnegative(self) -> "Interval":
        """Intersect with ``[0, inf)``."""
        return self.intersect(Interval.nonnegative())

    def shifted(self, delta: float) -> "Interval":
        return Interval(self.lo + delta, self.hi + delta, self.lo_open, self.hi_open)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_empty():
            return "Interval<empty>"
        lb = "(" if self.lo_open else "["
        rb = ")" if self.hi_open else "]"
        return f"{lb}{self.lo:g}, {self.hi:g}{rb}"


EMPTY = Interval(1.0, 0.0)
"""A canonical empty interval."""
