"""Interval arithmetic substrate for optimistic resource maps.

Resource levels, condition satisfiability, and resource-map propagation all
reduce to operations on intervals with open/closed endpoints; this package
provides that substrate.
"""

from .interval import EMPTY, Interval
from .arithmetic import iadd, idiv, imax, imin, imul, ineg, ipow, iscale, isub
from .resource_map import MapContradiction, ResourceMap

__all__ = [
    "Interval",
    "EMPTY",
    "iadd",
    "isub",
    "ineg",
    "imul",
    "idiv",
    "iscale",
    "imin",
    "imax",
    "ipow",
    "ResourceMap",
    "MapContradiction",
]
