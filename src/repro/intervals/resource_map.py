"""Optimistic resource maps (paper §3.2.3, Fig. 8).

A :class:`ResourceMap` binds resource/property variable names to intervals.
During the main-regression-graph search a plan tail is *replayed* in the
optimistic map of its newest action: before executing each action, the
interval produced so far is intersected with the action's optimistic
interval (a contradiction prunes the node), and new optimistic intervals
are added for variables not yet mentioned.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from .interval import Interval

__all__ = ["ResourceMap", "MapContradiction"]


class MapContradiction(Exception):
    """Raised when intersecting an interval into a map empties it.

    Carries the variable and the two incompatible intervals so replay
    failures can be explained in traces.
    """

    def __init__(self, var: str, have: Interval, want: Interval):
        super().__init__(f"resource map contradiction on {var}: {have} ∩ {want} = ∅")
        self.var = var
        self.have = have
        self.want = want


class ResourceMap:
    """A mutable mapping from variable names to intervals.

    The map distinguishes *absent* variables (no constraint yet) from
    variables constrained to some interval.  ``copy()`` is cheap (a dict
    copy) — plan tails are short, so replay clones maps freely.
    """

    __slots__ = ("_vars",)

    def __init__(self, initial: Mapping[str, Interval] | None = None):
        self._vars: dict[str, Interval] = dict(initial) if initial else {}

    # -- mapping protocol ---------------------------------------------------

    def __getitem__(self, var: str) -> Interval:
        return self._vars[var]

    def get(self, var: str, default: Interval | None = None) -> Interval | None:
        return self._vars.get(var, default)

    def __contains__(self, var: str) -> bool:
        return var in self._vars

    def __iter__(self) -> Iterator[str]:
        return iter(self._vars)

    def __len__(self) -> int:
        return len(self._vars)

    def items(self):
        return self._vars.items()

    def copy(self) -> "ResourceMap":
        return ResourceMap(self._vars)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceMap):
            return NotImplemented
        return self._vars == other._vars

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._vars.items()))
        return f"ResourceMap({inner})"

    # -- planner operations -------------------------------------------------

    def set(self, var: str, interval: Interval) -> None:
        """Overwrite the binding for ``var`` (action execution result)."""
        if interval.is_empty():
            raise MapContradiction(var, interval, interval)
        self._vars[var] = interval

    def constrain(self, var: str, interval: Interval) -> Interval:
        """Intersect ``interval`` into the binding for ``var``.

        Absent variables are bound to ``interval`` directly (the "newly
        added optimistic intervals" of Fig. 8).  Returns the resulting
        binding; raises :class:`MapContradiction` if it would be empty.
        """
        have = self._vars.get(var)
        if have is None:
            if interval.is_empty():
                raise MapContradiction(var, interval, interval)
            self._vars[var] = interval
            return interval
        if interval.contains_interval(have):
            # No-op constraint (e.g. a loose seed over an already-tight
            # binding): the intersection is exactly ``have``, so skip the
            # allocation.  Bindings are never empty, so no contradiction.
            return have
        merged = have.intersect(interval)
        if merged.is_empty():
            raise MapContradiction(var, have, interval)
        self._vars[var] = merged
        return merged

    def satisfies(self, var: str, interval: Interval) -> bool:
        """Non-mutating check that ``var`` is compatible with ``interval``."""
        have = self._vars.get(var)
        if have is None:
            return not interval.is_empty()
        return have.overlaps(interval)

    def merge_from(self, other: "ResourceMap") -> None:
        """Constrain this map by every binding of ``other``."""
        for var, interval in other.items():
            self.constrain(var, interval)
