"""Interval arithmetic with open/closed bound propagation.

These operations compute the exact image of each arithmetic operation over
interval operands, tracking whether the resulting extrema are attainable.
They are the interval counterpart of the specification formulas' float
semantics: for monotone specification functions, evaluating over intervals
yields sound enclosures of every attainable concrete value (tested by the
property suite).
"""

from __future__ import annotations

import math
from .interval import EMPTY, Interval

__all__ = [
    "iadd",
    "isub",
    "ineg",
    "imul",
    "idiv",
    "iscale",
    "imin",
    "imax",
    "ipow",
]

_INF = math.inf


def _b(value: float, is_open: bool) -> tuple[float, bool]:
    """A bound as a (value, openness) pair; infinities are always open."""
    return (value, is_open or math.isinf(value))


def _min_bound(*bounds: tuple[float, bool]) -> tuple[float, bool]:
    """Lower envelope of bounds; on value ties a closed bound wins."""
    best = bounds[0]
    for b in bounds[1:]:
        if b[0] < best[0] or (b[0] == best[0] and not b[1]):
            best = b
    return best


def _max_bound(*bounds: tuple[float, bool]) -> tuple[float, bool]:
    """Upper envelope of bounds; on value ties a closed bound wins."""
    best = bounds[0]
    for b in bounds[1:]:
        if b[0] > best[0] or (b[0] == best[0] and not b[1]):
            best = b
    return best


def iadd(a: Interval, b: Interval) -> Interval:
    """Image of ``x + y``."""
    if a.is_empty() or b.is_empty():
        return EMPTY
    return Interval(
        a.lo + b.lo,
        a.hi + b.hi,
        a.lo_open or b.lo_open,
        a.hi_open or b.hi_open,
    )


def ineg(a: Interval) -> Interval:
    """Image of ``-x``."""
    if a.is_empty():
        return EMPTY
    return Interval(-a.hi, -a.lo, a.hi_open, a.lo_open)


def isub(a: Interval, b: Interval) -> Interval:
    """Image of ``x - y``."""
    return iadd(a, ineg(b))


def _mul_pair(a: tuple[float, bool], b: tuple[float, bool]) -> tuple[float, bool]:
    va, oa = a
    vb, ob = b
    # 0 * inf: the finite-zero factor dominates (the product of attainable
    # values near the bound tends to 0).
    if (va == 0.0 and math.isinf(vb)) or (vb == 0.0 and math.isinf(va)):
        value = 0.0
    else:
        value = va * vb
    # A *closed* zero factor attains the zero product against every
    # attainable value of the other operand, so the bound stays closed
    # even when the other bound is open ([0,0] * (1,2) is exactly {0}).
    if (va == 0.0 and not oa) or (vb == 0.0 and not ob):
        return (value, False)
    return (value, oa or ob)


def imul(a: Interval, b: Interval) -> Interval:
    """Image of ``x * y`` (general signs)."""
    if a.is_empty() or b.is_empty():
        return EMPTY
    pairs = [
        _mul_pair(_b(a.lo, a.lo_open), _b(b.lo, b.lo_open)),
        _mul_pair(_b(a.lo, a.lo_open), _b(b.hi, b.hi_open)),
        _mul_pair(_b(a.hi, a.hi_open), _b(b.lo, b.lo_open)),
        _mul_pair(_b(a.hi, a.hi_open), _b(b.hi, b.hi_open)),
    ]
    lo, lo_open = _min_bound(*pairs)
    hi, hi_open = _max_bound(*pairs)
    return Interval(lo, hi, lo_open, hi_open)


def iscale(a: Interval, k: float) -> Interval:
    """Image of ``k * x`` for a scalar ``k``."""
    return imul(a, Interval.point(k))


def idiv(a: Interval, b: Interval) -> Interval:
    """Image of ``x / y``; the divisor must exclude zero.

    Raises
    ------
    ZeroDivisionError
        If ``b`` contains 0 — CPP specifications never divide by a
        quantity that can vanish, so this is a specification error.
    """
    if a.is_empty() or b.is_empty():
        return EMPTY
    if 0.0 in b:
        raise ZeroDivisionError(f"interval divisor {b} contains zero")

    def inv(v: float, o: bool) -> tuple[float, bool]:
        if math.isinf(v):
            return (0.0, True)
        return (1.0 / v, o)

    lo_b = inv(b.hi, b.hi_open)
    hi_b = inv(b.lo, b.lo_open)
    recip = Interval(
        min(lo_b[0], hi_b[0]),
        max(lo_b[0], hi_b[0]),
        lo_b[1] if lo_b[0] <= hi_b[0] else hi_b[1],
        hi_b[1] if lo_b[0] <= hi_b[0] else lo_b[1],
    )
    return imul(a, recip)


def imin(a: Interval, b: Interval) -> Interval:
    """Image of ``min(x, y)``.

    Openness differs per bound: the lower bound is attained if *either*
    operand attains it (min picks the smaller), while attaining the upper
    bound requires *both* operands at their suprema simultaneously —
    ``min([63,70), [70,70])`` tops out strictly below 70.
    """
    if a.is_empty() or b.is_empty():
        return EMPTY
    if a.lo < b.lo:
        lo, lo_open = a.lo, a.lo_open
    elif b.lo < a.lo:
        lo, lo_open = b.lo, b.lo_open
    else:
        lo, lo_open = a.lo, a.lo_open and b.lo_open
    if a.hi < b.hi:
        hi, hi_open = a.hi, a.hi_open
    elif b.hi < a.hi:
        hi, hi_open = b.hi, b.hi_open
    else:
        hi, hi_open = a.hi, a.hi_open or b.hi_open
    return Interval(lo, hi, lo_open, hi_open)


def imax(a: Interval, b: Interval) -> Interval:
    """Image of ``max(x, y)`` (mirror of :func:`imin`)."""
    if a.is_empty() or b.is_empty():
        return EMPTY
    if a.lo > b.lo:
        lo, lo_open = a.lo, a.lo_open
    elif b.lo > a.lo:
        lo, lo_open = b.lo, b.lo_open
    else:
        lo, lo_open = a.lo, a.lo_open or b.lo_open
    if a.hi > b.hi:
        hi, hi_open = a.hi, a.hi_open
    elif b.hi > a.hi:
        hi, hi_open = b.hi, b.hi_open
    else:
        hi, hi_open = a.hi, a.hi_open and b.hi_open
    return Interval(lo, hi, lo_open, hi_open)


def ipow(a: Interval, exponent: float) -> Interval:
    """Image of ``x ** k`` for nonnegative intervals and ``k > 0``.

    Component profiles occasionally use sub/super-linear powers (e.g.
    CPU cost growing as ``bw**1.5``); the CPP only ever raises nonnegative
    quantities, which keeps the function monotone.
    """
    if a.is_empty():
        return EMPTY
    if exponent <= 0:
        raise ValueError("ipow requires a positive exponent")
    if a.lo < 0:
        raise ValueError(f"ipow requires a nonnegative base interval, got {a}")
    hi = _INF if math.isinf(a.hi) else a.hi**exponent
    return Interval(a.lo**exponent, hi, a.lo_open, a.hi_open)
