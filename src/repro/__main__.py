"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``plan``
    Plan a deployment for a spec file (the paper's pseudo-XML syntax)
    over a network JSON file.  Observability flags
    (docs/OBSERVABILITY.md): ``--trace-out FILE`` exports the run's
    telemetry (phase spans, metrics, RG search trace) to a file,
    ``--trace-format {jsonl,chrome}`` selects the JSONL event stream
    (default) or Chrome trace-event JSON loadable in Perfetto, and
    ``--metrics`` prints the Figs. 7–8 style search-progress account
    (phase wall-clock bars, prune reasons, work histograms) to stdout.
    Robustness flags (docs/ROBUSTNESS.md): ``--time-limit SECONDS``
    bounds the solve by wall clock (an expiring deadline returns the
    anytime incumbent when one exists), and ``--fallback`` walks the
    graceful-degradation ladder (full -> anytime -> coarsened levels ->
    greedy) instead of failing outright; ``--fallback --workers N``
    races the rungs in N processes instead of walking them.
``simulate``
    Run a churn/fault campaign: generate a seeded fault timeline (or
    replay an explicit one from a JSON campaign spec), deploy, and repair
    after every event, with optional transient-fault injection and
    retry/backoff.  ``--json -`` emits a deterministic record — two runs
    with the same seeds serialize identically.  ``--seeds S1 S2 ...``
    runs the campaign once per seed, and ``--workers N`` fans those runs
    out over processes — same records, less wall clock
    (docs/PERFORMANCE.md).
``bench``
    Time the Table-2 sweep, optionally across ``--workers N`` processes
    and over repeated ``--rounds`` against warm compile caches.
``lint``
    Statically verify a spec/network pair before planning: monotonicity,
    level soundness, reachability, cost sanity (see docs/LINTING.md).
``analyze``
    Abstract-interpret a compiled ground problem (docs/ANALYSIS.md):
    per-variable invariant resource envelopes, dead ground actions with
    machine-checkable certificates, and verified symmetry classes of
    interchangeable nodes/components, reported as stable ``ENV/*``,
    ``DEAD/*`` and ``SYM/*`` diagnostics (``--format json`` emits the
    full artifact, envelopes and certificates included).  ``--audit``
    skips the instance arguments and instead replans every bundled
    domain with static pruning off vs. on, asserting identical outcomes;
    ``--fig10`` extends the audit to the full Table-2/fig-10 sweep.
``table2``
    Reproduce (a subset of) the paper's Table 2.
``gen-network``
    Generate a GT-ITM-style transit-stub network as JSON.
``trace summarize FILE``
    Load a trace file previously exported via ``plan --trace-out`` (either
    format, auto-detected) and print its span tree, Table-2 stat gauges,
    metric distributions, and search-event account.

Examples
--------
::

    python -m repro gen-network --seed 2004 -o large.json
    python -m repro lint --network large.json --spec app.spec \\
        --initial Server=t0_0_s0_0 --goal Client=t0_2_s2_5
    python -m repro plan --network large.json --spec app.spec \\
        --initial Server=t0_0_s0_0 --goal Client=t0_2_s2_5 \\
        --levels M.ibw=90,100
    python -m repro plan --network examples/net.json --spec examples/app.spec \\
        --initial Server=n0 --goal Client=n1 --levels M.ibw=90,100 \\
        --trace-out trace.jsonl --metrics
    python -m repro plan --network large.json --spec app.spec \\
        --initial Server=t0_0_s0_0 --goal Client=t0_2_s2_5 \\
        --levels M.ibw=100 --time-limit 1.5 --fallback
    python -m repro simulate --network examples/net.json --spec examples/app.spec \\
        --initial Server=n0 --goal Client=n1 --levels M.ibw=90,100 \\
        --campaign examples/campaign.json --json -
    python -m repro trace summarize trace.jsonl
    python -m repro table2 --networks Tiny Small --scenarios B C
"""

from __future__ import annotations

import argparse
import json
import sys

from .model import AppSpec, Leveling, LevelSpec, SpecError, parse_spec_text
from .network import TransitStubParams, load_network, network_to_dict, transit_stub_network
from .planner import Planner, PlannerConfig, PlanningError

__all__ = ["main"]


def _placement_pairs(items) -> list[tuple[str, str]]:
    out = []
    for item in items:
        comp, _, node = item.partition("=")
        if not node:
            raise SystemExit(f"expected COMPONENT=NODE, got {item!r}")
        out.append((comp, node))
    return out


def _leveling_from_args(items) -> Leveling:
    specs = {}
    for item in items or ():
        var, _, cuts = item.partition("=")
        if not cuts:
            raise SystemExit(f"expected VAR=c1,c2,..., got {item!r}")
        specs[var] = LevelSpec(tuple(float(c) for c in cuts.split(",")))
    return Leveling(specs, name="cli")


def _load_instance(args: argparse.Namespace) -> tuple[AppSpec, object, Leveling]:
    network = load_network(args.network)
    parsed = parse_spec_text(open(args.spec).read())
    app = AppSpec.build(
        name=args.spec,
        interfaces=parsed.interfaces,
        components=parsed.components,
        initial=_placement_pairs(args.initial),
        goals=_placement_pairs(args.goal),
    )
    return app, network, _leveling_from_args(args.levels)


def _make_live_monitor(args: argparse.Namespace):
    """A LiveMonitor (stderr) when ``--live`` was given, else ``None``."""
    if not getattr(args, "live", False):
        return None
    from .obs import LiveMonitor

    return LiveMonitor()


def _export_trace_to_stderr(args: argparse.Namespace, telemetry) -> None:
    """Handle ``--trace-out`` for the streaming commands.

    The confirmation goes to *stderr*: simulate/controller/bench stdout
    must stay byte-identical across runs regardless of trace flags.
    """
    if getattr(args, "trace_out", None) and telemetry is not None:
        from .obs import export_trace

        records = export_trace(telemetry, args.trace_out, args.trace_format)
        print(
            f"wrote {args.trace_out} ({args.trace_format}, {records} records)",
            file=sys.stderr,
        )


def _cmd_plan(args: argparse.Namespace) -> int:
    app, network, leveling = _load_instance(args)
    telemetry = None
    if args.trace_out or args.metrics or args.profile_out:
        from .obs import Telemetry

        telemetry = Telemetry()
    if args.profile_out:
        from .obs import PhaseProfiler

        telemetry.profiler = PhaseProfiler()
    config = PlannerConfig(
        leveling=leveling,
        strict=args.strict,
        telemetry=telemetry,
        time_limit_s=args.time_limit,
    )
    try:
        if args.fallback:
            from .planner import solve_robust

            outcome = solve_robust(app, network, config=config, workers=args.workers)
            print(outcome.describe())
            if outcome.plan is None:
                print("no plan: every ladder rung failed", file=sys.stderr)
                return 1
            plan = outcome.plan
        elif args.hierarchical:
            from .hierarchy import HierarchyConfig, solve_hierarchical

            h_outcome = solve_hierarchical(
                app,
                network,
                config=HierarchyConfig(workers=args.workers),
                planner_config=config,
                telemetry=telemetry,
            )
            print(h_outcome.describe())
            plan = h_outcome.plan
        else:
            plan = Planner(config).solve(app, network)
    except PlanningError as exc:
        print(f"no plan: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    except SpecError as exc:
        print(f"spec failed strict lint: {exc}", file=sys.stderr)
        return 1

    print(plan.describe())
    report = plan.execute()
    s = plan.stats
    print(f"\ncost lower bound : {plan.cost_lb:g}")
    print(f"exact cost       : {report.total_cost:g}")
    print(
        f"phase times (ms) : compile {s.compile_ms:.1f}, plrg {s.plrg_ms:.1f}, "
        f"slrg {s.slrg_ms:.1f}, rg {s.rg_ms:.1f} (search total {s.total_ms:.1f})"
    )
    print(f"rg nodes         : {s.rg_nodes} created, {s.rg_expanded} expanded")
    print(f"replay work      : {s.replay_summary()}")
    if args.metrics:
        from .obs import render_phase_report

        print()
        print(render_phase_report(telemetry))
    if args.trace_out:
        from .obs import export_trace

        records = export_trace(telemetry, args.trace_out, args.trace_format)
        print(f"wrote {args.trace_out} ({args.trace_format}, {records} records)")
    if args.profile_out:
        paths = telemetry.profiler.write(args.profile_out)
        print(f"wrote {len(paths)} profile file(s): {', '.join(paths)}")
    if args.json:
        payload = {
            "actions": plan.action_names(),
            "cost_lower_bound": plan.cost_lb,
            "exact_cost": report.total_cost,
            "consumed": report.consumed,
        }
        open(args.json, "w").write(json.dumps(payload, indent=2))
        print(f"wrote {args.json}")
    return 0


def _report_task_failure(args: argparse.Namespace, exc) -> int:
    """Render a multi-task :class:`~repro.parallel.TaskFailed` loudly.

    Every failed index is reported — the message carries them all, and
    ``--json`` gets a structured failure document (``error`` /
    ``failed_indices`` / per-index messages) instead of a partial or
    missing record.
    """
    print(exc, file=sys.stderr)
    if args.json:
        payload_doc = {
            "error": "task_failed",
            "failed_indices": list(exc.indices),
            "failures": {
                str(i): {"message": message, "remote_traceback": remote_tb}
                for i, (message, remote_tb) in sorted(exc.failures.items())
            },
        }
        payload = json.dumps(payload_doc, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            open(args.json, "w").write(payload + "\n")
            print(f"wrote {args.json}", file=sys.stderr)
    return 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .parallel import TaskFailed
    from .simulate.campaign import run_campaign, run_campaign_run

    app, network, leveling = _load_instance(args)
    spec = json.load(open(args.campaign)) if args.campaign else {}
    telemetry = None
    if args.metrics or args.trace_out:
        from .obs import Telemetry

        telemetry = Telemetry()
    monitor = _make_live_monitor(args)

    journal = None
    if args.checkpoint:
        if not args.seeds:
            print("--checkpoint requires --seeds (multi-seed campaign)", file=sys.stderr)
            return 2
        from .simulate import JournalMismatch, RunJournal, campaign_fingerprint

        fingerprint = campaign_fingerprint(
            app, network, leveling, spec,
            seeds=args.seeds, events=args.events,
            time_limit_s=args.time_limit, include_timings=args.timings,
        )
        try:
            journal = RunJournal(args.checkpoint, fingerprint, resume=args.resume)
        except JournalMismatch as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 2
        if args.resume and len(journal):
            print(
                f"resuming: {len(journal)} run(s) replayed from {args.checkpoint}",
                file=sys.stderr,
            )

    try:
        if args.seeds:
            # Multi-seed campaign: one run per seed, optionally fanned out
            # over supervised worker processes; the document is
            # byte-identical at any worker count for fixed seeds, worker
            # deaths and checkpoint resume included.
            doc = run_campaign(
                app,
                network,
                leveling,
                spec,
                seeds=args.seeds,
                events=args.events,
                time_limit_s=args.time_limit,
                include_timings=args.timings,
                telemetry=telemetry,
                workers=args.workers,
                on_frame=monitor.on_frame if monitor is not None else None,
                journal=journal,
                inject_kill=args.inject_kill or (),
            )
            failed = 0
            for run in doc["runs"]:
                print(f"--- seed {run['seed']} ---")
                print(run["description"])
                if run["record"] is None or "failure" in run["record"]["initial"]:
                    failed += 1
            payload_doc = {
                "format": doc["format"],
                "runs": [
                    {"seed": r["seed"], "record": r["record"]} for r in doc["runs"]
                ],
            }
            ok = failed == 0
        else:
            result = run_campaign_run(
                app,
                network,
                leveling,
                spec,
                seed=args.seed,
                events=args.events,
                time_limit_s=args.time_limit,
                telemetry=telemetry,
            )
            print(result.describe())
            payload_doc = result.to_dict(include_timings=args.timings)
            ok = result.initial_plan is not None
    except TypeError as exc:
        print(f"invalid campaign fault model: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"invalid campaign event: {exc}", file=sys.stderr)
        return 1
    except TaskFailed as exc:
        return _report_task_failure(args, exc)
    finally:
        if journal is not None:
            journal.close()

    if monitor is not None:
        monitor.finish()
    if args.metrics:
        print()
        print(telemetry.metrics.render_text())
    _export_trace_to_stderr(args, telemetry)
    if args.json:
        payload = json.dumps(payload_doc, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            open(args.json, "w").write(payload + "\n")
            # stderr: stdout must stay byte-identical across same-seed runs
            # regardless of the output path (the fault-smoke CI job diffs it).
            print(f"wrote {args.json}", file=sys.stderr)
    return 0 if ok else 1


def _cmd_controller(args: argparse.Namespace) -> int:
    from .parallel import TaskFailed
    from .simulate.controller import run_controller

    app, network, leveling = _load_instance(args)
    spec = json.load(open(args.campaign)) if args.campaign else {}
    if args.delta:
        spec = dict(spec, delta_replanning=True)
    telemetry = None
    if args.metrics or args.trace_out:
        from .obs import Telemetry

        telemetry = Telemetry()
    monitor = _make_live_monitor(args)

    journal = None
    if args.checkpoint:
        from .simulate import JournalMismatch, RunJournal, controller_fingerprint

        fingerprint = controller_fingerprint(
            app, network, leveling, spec,
            fleet=args.fleet, seed=args.seed, events=args.events,
            time_limit_s=args.time_limit, include_timings=args.timings,
        )
        try:
            journal = RunJournal(args.checkpoint, fingerprint, resume=args.resume)
        except JournalMismatch as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 2
        if args.resume and len(journal):
            print(
                f"resuming: {len(journal)} step(s) replayed from {args.checkpoint}",
                file=sys.stderr,
            )

    try:
        record = run_controller(
            app,
            network,
            leveling,
            spec,
            fleet=args.fleet,
            seed=args.seed,
            events=args.events,
            time_limit_s=args.time_limit,
            include_timings=args.timings,
            telemetry=telemetry,
            workers=args.workers,
            on_frame=monitor.on_frame if monitor is not None else None,
            journal=journal,
            inject_kill=args.inject_kill or (),
        )
    except TypeError as exc:
        print(f"invalid campaign fault model: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"invalid campaign event: {exc}", file=sys.stderr)
        return 1
    except TaskFailed as exc:
        return _report_task_failure(args, exc)
    finally:
        if journal is not None:
            journal.close()

    summary = record["summary"]
    print(
        f"fleet {summary['fleet']}, events {summary['events']}: "
        f"{summary['repairs']} repairs, {summary['outages']} outages, "
        f"{summary['redeployments']} redeployments, "
        f"availability {summary['availability']:.3f}"
    )
    print(
        f"repair compiles: {summary['delta_hits']} warm (cache/delta), "
        f"{summary['delta_full']} full"
    )
    if monitor is not None:
        monitor.finish()
    if args.metrics:
        print()
        print(telemetry.metrics.render_text())
    _export_trace_to_stderr(args, telemetry)
    if args.json:
        payload = json.dumps(record, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            open(args.json, "w").write(payload + "\n")
            # stderr: stdout must stay byte-identical across same-seed runs
            # (the controller-smoke CI job diffs it).
            print(f"wrote {args.json}", file=sys.stderr)
    initial_ok = all(entry["deployed"] for entry in record["initial"])
    return 0 if initial_ok else 1


def _cmd_bench_hierarchy(args: argparse.Namespace) -> int:
    """Flat vs hierarchical planning across the domain-count family."""
    from .experiments import format_table, scaling_compare_sweep

    points = scaling_compare_sweep(
        stub_domains=tuple(args.stub_domains),
        flat_time_limit_s=args.flat_time_limit,
        workers=args.workers,
    )
    rows = []
    for p in points:
        rows.append(
            [
                str(p.nodes),
                f"{p.flat_ms:.0f}" if p.flat_solved else p.flat_failure or "—",
                f"{p.flat_cost:g}" if p.flat_solved else "—",
                f"{p.hier_ms:.0f}" if p.hier_solved else "—",
                f"{p.hier_cost:g}" if p.hier_solved else "—",
                p.hier_mode or "—",
                f"{p.speedup:.1f}x" if p.speedup is not None else "—",
                "—" if p.cost_delta is None else ("0" if abs(p.cost_delta) < 1e-9 else f"{p.cost_delta:g}"),
            ]
        )
    print(
        format_table(
            ["nodes", "flat ms", "flat cost", "hier ms", "hier cost", "mode", "speedup", "Δcost"],
            rows,
        )
    )
    if args.json:
        payload = {
            "format": 1,
            "suite": "hierarchy",
            "workers": args.workers,
            "points": [p.to_dict() for p in points],
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.json}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Time the Table-2 sweep, serially or across worker processes."""
    import time as _time

    if args.hierarchical:
        return _cmd_bench_hierarchy(args)

    from .experiments import render_table2
    from .experiments.harness import _run_table2_parallel, run_table2
    from .parallel import Supervisor, default_compile_cache, resolve_workers

    networks = tuple(args.networks)
    scenarios = tuple(args.scenarios)
    workers = resolve_workers(args.workers, len(networks) * len(scenarios))
    cache = None if args.no_cache else default_compile_cache()
    telemetry = None
    if args.metrics or args.trace_out:
        from .obs import Telemetry

        telemetry = Telemetry()
    monitor = _make_live_monitor(args)
    on_frame = monitor.on_frame if monitor is not None else None
    profile_sink: list | None = [] if args.profile_out else None
    round_s: list[float] = []
    rows = []
    pool = Supervisor(workers, telemetry=telemetry) if workers > 1 else None
    try:
        for _ in range(args.rounds):
            t0 = _time.perf_counter()
            if pool is not None:
                # A persistent supervised pool keeps per-worker compile
                # caches warm across rounds (deterministic sharding pins
                # each cell to one worker), so repeat rounds skip
                # compilation — and a worker death mid-round respawns and
                # retries instead of aborting the bench.
                rows = _run_table2_parallel(
                    networks,
                    scenarios,
                    workers,
                    compile_cache=cache,
                    pool=pool,
                    telemetry=telemetry,
                    static_prune=args.static_prune,
                    on_frame=on_frame,
                    profile_sink=profile_sink,
                )
            else:
                rows = run_table2(
                    networks,
                    scenarios,
                    compile_cache=cache,
                    telemetry=telemetry,
                    static_prune=args.static_prune,
                    on_frame=on_frame,
                    profile_sink=profile_sink,
                )
            round_s.append(_time.perf_counter() - t0)
    finally:
        if pool is not None:
            pool.close()

    if monitor is not None:
        monitor.finish()
    print(render_table2(rows))
    print()
    print(f"workers {workers}, rounds {args.rounds}, cache {'off' if args.no_cache else 'on'}")
    for i, s in enumerate(round_s):
        print(f"  round {i}: {s * 1e3:.0f} ms")
    print(f"  best: {min(round_s) * 1e3:.0f} ms")
    if cache is not None and workers == 1:
        # Includes analysis_hits/analysis_misses when --static-prune rode
        # the analysis result along on the cache entries.
        print(f"  cache: {cache.stats()}")
    if args.metrics:
        print()
        print(telemetry.metrics.render_text())
    _export_trace_to_stderr(args, telemetry)
    if profile_sink is not None:
        from .obs import merge_profile_blobs, write_pstats

        written = []
        merged = merge_profile_blobs([blob for _pid, blob in profile_sink])
        if merged is not None:
            write_pstats(merged, args.profile_out)
            written.append(args.profile_out)
        by_pid: dict[int, list[bytes]] = {}
        for pid, blob in profile_sink:
            by_pid.setdefault(pid, []).append(blob)
        if len(by_pid) > 1:
            for pid in sorted(by_pid):
                stats = merge_profile_blobs(by_pid[pid])
                pid_path = f"{args.profile_out}.pid{pid}.pstats"
                write_pstats(stats, pid_path)
                written.append(pid_path)
        print(
            f"wrote {len(written)} profile file(s): {', '.join(written)}",
            file=sys.stderr,
        )
    if args.json:
        payload = {
            "format": 1,
            "workers": workers,
            "static_prune": args.static_prune,
            "rounds_s": [round(s, 6) for s in round_s],
            "cache": cache.stats() if cache is not None and workers == 1 else None,
            "cells": [row.to_record() for row in rows],
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.json}")
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from .obs import TraceFileError, load_trace, summarize_trace

    try:
        trace = load_trace(args.file)
    except TraceFileError as exc:
        print(f"invalid trace file: {exc}", file=sys.stderr)
        return 1
    print(summarize_trace(trace))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import LintOptions, lint_app

    app, network, leveling = _load_instance(args)
    report = lint_app(
        app, network, leveling, options=LintOptions(deep=not args.no_deep)
    )
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    if report.has_errors():
        return 1
    if args.werror and report.warnings:
        return 1
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.audit or args.fig10:
        from .analysis.audit import run_audit

        rows = run_audit(
            mode=args.prune,
            fig10=args.fig10,
            progress=lambda name: print(f"auditing {name} ...", file=sys.stderr),
        )
        if args.format == "json":
            print(json.dumps([r.to_record() for r in rows], indent=2, sort_keys=True))
        else:
            for r in rows:
                verdict = "ok" if r.ok else "MISMATCH"
                cost = "-" if r.cost_on is None else f"{r.cost_on:g}"
                print(
                    f"{r.case:<18} {r.status_on:<18} cost={cost:<8} "
                    f"rg {r.rg_expanded_off}->{r.rg_expanded_on} "
                    f"dead={r.dead_actions} sym={r.sym_pruned}  {verdict}"
                )
        bad = [r for r in rows if not r.ok]
        if bad:
            print(f"audit FAILED: {len(bad)} case(s) diverged", file=sys.stderr)
            return 1
        print(f"audit passed: {len(rows)} cases identical", file=sys.stderr)
        return 0

    if not (args.network and args.spec and args.goal):
        print(
            "analyze: either give --audit/--fig10 or a full instance "
            "(--network, --spec, --goal)",
            file=sys.stderr,
        )
        return 2
    from .compile import compile_problem

    app, network, leveling = _load_instance(args)
    problem = compile_problem(app, network, leveling, analyze=True)
    result = problem.analysis
    if args.format == "json":
        print(json.dumps(result.to_payload(), indent=2, sort_keys=True))
    else:
        print(result.render_text())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .experiments import render_table1, render_table2, run_cell

    print(render_table1())
    print()
    rows = [
        run_cell(net, scen)
        for net in args.networks
        for scen in args.scenarios
    ]
    print(render_table2(rows))
    return 0


def _cmd_gen_network(args: argparse.Namespace) -> int:
    params = TransitStubParams(
        transit_nodes_per_domain=args.transit_nodes,
        stub_domains_per_transit=args.stubs_per_transit,
        stub_size=args.stub_size,
        node_cpu=args.cpu,
        lan_bandwidth=args.lan_bw,
        wan_bandwidth=args.wan_bw,
        seed=args.seed,
    )
    net = transit_stub_network(params)
    payload = json.dumps(network_to_dict(net), indent=2, sort_keys=True)
    if args.output == "-":
        print(payload)
    else:
        open(args.output, "w").write(payload)
        print(f"wrote {args.output}: {len(net)} nodes, {len(net.links)} links")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_instance_args(p: argparse.ArgumentParser, required: bool = True) -> None:
        p.add_argument("--network", required=required, help="network JSON file")
        p.add_argument("--spec", required=required, help="pseudo-XML spec file")
        p.add_argument("--initial", nargs="+", default=[], metavar="COMP=NODE")
        p.add_argument("--goal", nargs="+", required=required, metavar="COMP=NODE")
        p.add_argument("--levels", nargs="*", metavar="VAR=c1,c2,...")

    def add_streaming_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--live",
            action="store_true",
            help="render a live fleet view on stderr while the run streams "
            "worker telemetry frames (docs/OBSERVABILITY.md)",
        )
        p.add_argument(
            "--trace-out",
            metavar="FILE",
            help="export the run's telemetry — including worker spans "
            "stitched into per-process lanes — after the run",
        )
        p.add_argument(
            "--trace-format",
            choices=("jsonl", "chrome"),
            default="jsonl",
            help="trace file format: JSONL event stream or Chrome "
            "trace-event JSON",
        )

    p_plan = sub.add_parser("plan", help="plan a deployment")
    add_instance_args(p_plan)
    p_plan.add_argument("--json", help="also write the plan as JSON")
    p_plan.add_argument(
        "--strict",
        action="store_true",
        help="lint the spec first and refuse to plan on lint errors",
    )
    p_plan.add_argument(
        "--trace-out",
        metavar="FILE",
        help="export the run's telemetry (spans, metrics, search trace)",
    )
    p_plan.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="trace file format: JSONL event stream or Chrome trace-event JSON",
    )
    p_plan.add_argument(
        "--metrics",
        action="store_true",
        help="print the search-progress account (spans, histograms, prune reasons)",
    )
    p_plan.add_argument(
        "--time-limit",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget; an expiring deadline returns the anytime "
        "incumbent plan when one exists (docs/ROBUSTNESS.md)",
    )
    p_plan.add_argument(
        "--fallback",
        action="store_true",
        help="walk the graceful-degradation ladder (full -> anytime -> "
        "coarsened levels -> greedy) instead of failing outright",
    )
    p_plan.add_argument(
        "--hierarchical",
        action="store_true",
        help="plan by stub-domain decomposition on transit-stub networks "
        "(backbone over an abstracted network, per-domain subproblems in "
        "--workers processes, stitched and exactly validated; falls back "
        "to flat planning when the network does not decompose)",
    )
    p_plan.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="with --fallback: race the ladder rungs in N processes, each "
        "with the whole time budget; the best rung that succeeds wins "
        "(docs/PERFORMANCE.md). No effect on a plain solve.",
    )
    p_plan.add_argument(
        "--profile-out",
        metavar="PREFIX",
        help="capture an exclusive cProfile per planner phase and write "
        "PREFIX (merged pstats) plus PREFIX.<phase>.pstats files",
    )
    p_plan.set_defaults(fn=_cmd_plan)

    p_sim = sub.add_parser("simulate", help="run a churn/fault campaign")
    add_instance_args(p_sim)
    p_sim.add_argument(
        "--campaign",
        metavar="FILE",
        help="JSON campaign spec: fault model, explicit events, injector, "
        "retry policy, planner bounds (see docs/ROBUSTNESS.md)",
    )
    p_sim.add_argument(
        "--seed", type=int, help="override the fault model's timeline seed"
    )
    p_sim.add_argument(
        "--events", type=int, help="override the fault model's timeline length"
    )
    p_sim.add_argument(
        "--time-limit",
        type=float,
        metavar="SECONDS",
        help="per-repair wall-clock budget (campaign spec takes precedence)",
    )
    p_sim.add_argument(
        "--json",
        metavar="FILE",
        help="write the campaign record as JSON ('-' for stdout); "
        "deterministic for fixed seeds unless --timings is given",
    )
    p_sim.add_argument(
        "--timings",
        action="store_true",
        help="include wall-clock timings in the JSON record",
    )
    p_sim.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        metavar="SEED",
        help="run the campaign once per seed (multi-run document); "
        "combine with --workers to fan the runs out over processes",
    )
    p_sim.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="with --seeds: run campaigns in N worker processes (one run "
        "per task); records are identical to --workers 1 for fixed seeds",
    )
    p_sim.add_argument(
        "--metrics",
        action="store_true",
        help="print the merged metrics registry after the run(s), "
        "including cache.hit / cache.miss compile-cache counters",
    )
    p_sim.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="with --seeds: journal each completed run to a crash-safe "
        "JSONL checkpoint as it finishes (docs/ROBUSTNESS.md)",
    )
    p_sim.add_argument(
        "--resume",
        action="store_true",
        help="replay an existing --checkpoint journal and skip finished "
        "runs; the resumed document is byte-identical to an "
        "uninterrupted run",
    )
    p_sim.add_argument(
        "--inject-kill",
        type=int,
        nargs="+",
        metavar="TASK",
        help="fault injection: SIGKILL the worker assigned each listed "
        "task index right before it runs, once (supervision testing)",
    )
    add_streaming_args(p_sim)
    p_sim.set_defaults(fn=_cmd_simulate)

    p_ctl = sub.add_parser(
        "controller",
        help="replay a fault timeline against a fleet of deployments",
    )
    add_instance_args(p_ctl)
    p_ctl.add_argument(
        "--campaign",
        metavar="FILE",
        help="JSON campaign spec (same format as simulate, plus 'fleet' "
        "and 'delta_replanning'; see docs/ROBUSTNESS.md)",
    )
    p_ctl.add_argument(
        "--fleet", type=int, help="fleet size (overrides the spec's 'fleet')"
    )
    p_ctl.add_argument(
        "--delta",
        action="store_true",
        help="compile repair problems by patching each member's previous "
        "network state (spec key 'delta_replanning'); records are "
        "identical with or without, only time-to-recover changes",
    )
    p_ctl.add_argument(
        "--seed", type=int, help="override the fault model's timeline seed"
    )
    p_ctl.add_argument(
        "--events", type=int, help="override the fault model's timeline length"
    )
    p_ctl.add_argument(
        "--time-limit",
        type=float,
        metavar="SECONDS",
        help="per-repair wall-clock budget (campaign spec takes precedence)",
    )
    p_ctl.add_argument(
        "--json",
        metavar="FILE",
        help="write the controller record as JSON ('-' for stdout); "
        "deterministic for fixed seeds unless --timings is given",
    )
    p_ctl.add_argument(
        "--timings",
        action="store_true",
        help="include wall-clock time-to-recover figures in the record",
    )
    p_ctl.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan the per-event repair queue out over N worker processes "
        "(one member per task); records are identical to --workers 1",
    )
    p_ctl.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry after the run, including the "
        "repair.ttr histogram and repair.delta.hit/full counters",
    )
    p_ctl.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="journal the initial deploy and each completed step to a "
        "crash-safe JSONL checkpoint (docs/ROBUSTNESS.md)",
    )
    p_ctl.add_argument(
        "--resume",
        action="store_true",
        help="replay an existing --checkpoint journal and skip finished "
        "steps; the resumed record is byte-identical to an "
        "uninterrupted run",
    )
    p_ctl.add_argument(
        "--inject-kill",
        type=int,
        nargs="+",
        metavar="TASK",
        help="fault injection: SIGKILL the worker assigned each listed "
        "batch-task index in the first executed batch (supervision testing)",
    )
    add_streaming_args(p_ctl)
    p_ctl.set_defaults(fn=_cmd_controller)

    p_bench = sub.add_parser(
        "bench", help="time the Table-2 sweep (serial or parallel)"
    )
    p_bench.add_argument("--networks", nargs="+", default=["Tiny", "Small", "Large"])
    p_bench.add_argument("--scenarios", nargs="+", default=["B", "C", "D", "E"])
    p_bench.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan cells out over N worker processes (deterministic sharding)",
    )
    p_bench.add_argument(
        "--rounds",
        type=int,
        default=1,
        metavar="R",
        help="repeat the sweep R times against persistent workers; warm "
        "compile caches make repeat rounds cheap",
    )
    p_bench.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the warm-start compile cache",
    )
    p_bench.add_argument(
        "--static-prune",
        choices=("off", "dead", "symmetry", "full"),
        default=None,
        metavar="MODE",
        help="plan every cell with certified static pruning (docs/ANALYSIS.md); "
        "the analysis result is cached alongside the compiled problem",
    )
    p_bench.add_argument(
        "--metrics",
        action="store_true",
        help="print the merged metrics registry after the sweep, including "
        "cache.hit/miss and cache.analysis.hit/miss counters",
    )
    p_bench.add_argument(
        "--json", metavar="FILE", help="write timings and cell records ('-' for stdout)"
    )
    p_bench.add_argument(
        "--profile-out",
        metavar="PREFIX",
        help="capture a cProfile per cell (in the workers, when parallel) "
        "and write PREFIX (merged pstats) plus per-pid PREFIX.pidN.pstats",
    )
    p_bench.add_argument(
        "--hierarchical",
        action="store_true",
        help="bench flat vs hierarchical planning over the 1k-10k-node "
        "domain-count scaling family instead of the Table-2 sweep",
    )
    p_bench.add_argument(
        "--stub-domains",
        nargs="+",
        type=int,
        default=[4, 11, 33],
        metavar="S",
        help="with --hierarchical: stub-domain counts to sweep "
        "(network size is 3 + 30*S nodes)",
    )
    p_bench.add_argument(
        "--flat-time-limit",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="with --hierarchical: wall-clock budget per flat solve",
    )
    add_streaming_args(p_bench)
    p_bench.set_defaults(fn=_cmd_bench)

    p_lint = sub.add_parser(
        "lint", help="statically verify a spec against a network"
    )
    add_instance_args(p_lint)
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    p_lint.add_argument(
        "--no-deep",
        action="store_true",
        help="skip the compile-based ground reachability check",
    )
    p_lint.add_argument(
        "--werror", action="store_true", help="exit non-zero on warnings too"
    )
    p_lint.set_defaults(fn=_cmd_lint)

    p_ana = sub.add_parser(
        "analyze",
        help="abstract-interpret a ground problem: envelopes, dead actions, "
        "symmetry classes (docs/ANALYSIS.md)",
    )
    add_instance_args(p_ana, required=False)
    p_ana.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    p_ana.add_argument(
        "--audit",
        action="store_true",
        help="instead of analyzing one instance, replan every bundled domain "
        "with static pruning off vs. on and require identical outcomes",
    )
    p_ana.add_argument(
        "--fig10",
        action="store_true",
        help="extend --audit to the full Table-2/fig-10 sweep (implies --audit)",
    )
    p_ana.add_argument(
        "--prune",
        choices=("dead", "symmetry", "full"),
        default="full",
        help="static_prune mode the audit runs against (default: full)",
    )
    p_ana.set_defaults(fn=_cmd_analyze)

    p_t2 = sub.add_parser("table2", help="reproduce Table 2")
    p_t2.add_argument("--networks", nargs="+", default=["Tiny", "Small", "Large"])
    p_t2.add_argument("--scenarios", nargs="+", default=["A", "B", "C", "D", "E"])
    p_t2.set_defaults(fn=_cmd_table2)

    p_trace = sub.add_parser("trace", help="inspect exported planner traces")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_summarize = trace_sub.add_parser(
        "summarize", help="summarize a trace file exported via plan --trace-out"
    )
    p_summarize.add_argument("file", help="trace file (JSONL or Chrome, auto-detected)")
    p_summarize.set_defaults(fn=_cmd_trace_summarize)

    p_gen = sub.add_parser("gen-network", help="generate a transit-stub network")
    p_gen.add_argument("--transit-nodes", type=int, default=3)
    p_gen.add_argument("--stubs-per-transit", type=int, default=3)
    p_gen.add_argument("--stub-size", type=int, default=10)
    p_gen.add_argument("--cpu", type=float, default=30.0)
    p_gen.add_argument("--lan-bw", type=float, default=150.0)
    p_gen.add_argument("--wan-bw", type=float, default=70.0)
    p_gen.add_argument("--seed", type=int, default=2004)
    p_gen.add_argument("-o", "--output", default="-")
    p_gen.set_defaults(fn=_cmd_gen_network)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
