"""Component specifications (paper Fig. 2).

A component consumes zero or more interfaces (``requires``), produces zero
or more (``implements``), and carries three formula blocks:

* ``conditions`` — predicates over required-interface properties and node
  resources that must hold for placement (CPU sufficiency, stream-rate
  relations);
* ``effects`` — assignments defining produced-interface properties and
  node-resource consumption;
* ``cost`` — the user-specified placement cost formula of §3.1
  (e.g. ``1 + (I.ibw + T.ibw)/10`` for the Merger).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..expr import (
    Assign,
    Node,
    Num,
    parse_assign,
    parse_condition,
    parse_expr,
    variables,
)
from .errors import SpecError

__all__ = ["ComponentSpec"]


@dataclass
class ComponentSpec:
    """One deployable component type."""

    name: str
    requires: tuple[str, ...] = ()
    implements: tuple[str, ...] = ()
    conditions: tuple[Node, ...] = ()
    effects: tuple[Assign, ...] = ()
    cost: Node | None = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SpecError(f"component name must be an identifier: {self.name!r}")
        if set(self.requires) & set(self.implements):
            raise SpecError(
                f"component {self.name}: an interface cannot be both required and implemented"
            )
        dupes = len(self.requires) != len(set(self.requires)) or len(self.implements) != len(
            set(self.implements)
        )
        if dupes:
            raise SpecError(f"component {self.name}: duplicate interface linkage")
        self._check_vars()

    @staticmethod
    def parse(
        name: str,
        requires: Iterable[str] = (),
        implements: Iterable[str] = (),
        conditions: Iterable[str] = (),
        effects: Iterable[str] = (),
        cost: str | None = None,
    ) -> "ComponentSpec":
        """Build a component from formula strings (the usual entry point)."""
        return ComponentSpec(
            name=name,
            requires=tuple(requires),
            implements=tuple(implements),
            conditions=tuple(parse_condition(c) for c in conditions),
            effects=tuple(parse_assign(e) for e in effects),
            cost=parse_expr(cost) if cost is not None else None,
        )

    # -- introspection -------------------------------------------------------

    def is_source(self) -> bool:
        """A source produces interfaces out of nothing (the Server)."""
        return not self.requires and bool(self.implements)

    def is_sink(self) -> bool:
        """A sink only consumes (the Client)."""
        return bool(self.requires) and not self.implements

    def cost_expr(self) -> Node:
        return self.cost if self.cost is not None else Num(1.0)

    def all_formulas(self) -> list[Node]:
        out: list[Node] = list(self.conditions) + list(self.effects)
        if self.cost is not None:
            out.append(self.cost)
        return out

    def _check_vars(self) -> None:
        """Formulas may only mention linked interfaces and ``Node``."""
        linked = set(self.requires) | set(self.implements)
        for f in self.all_formulas():
            for v in variables(f):
                scope = v.split(".", 1)[0]
                if scope == "Node":
                    continue
                if scope not in linked:
                    raise SpecError(
                        f"component {self.name} references {v!r}; only Node.* and "
                        f"interfaces {sorted(linked)} are in scope"
                    )
        # Effects must define every implemented interface property they use.
        assigned = {a.target.name for a in self.effects}
        for iface in self.implements:
            produced = [a for a in assigned if a.startswith(f"{iface}.")]
            if not produced:
                raise SpecError(
                    f"component {self.name} implements {iface} but its effects never "
                    f"assign any {iface}.* property"
                )
