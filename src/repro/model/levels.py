"""Resource levels (paper §3.1).

A :class:`LevelSpec` is an ordered list of *cutpoints* partitioning
``[0, ∞)`` into half-open intervals: cutpoints ``(30, 70, 90, 100)`` give
the five levels ``[0,30) [30,70) [70,90) [90,100) [100,∞)`` of the paper's
Fig. 6.  A spec with no cutpoints is *trivial* — the single level
``[0, ∞)`` — which recovers the original (greedy) Sekitei behaviour.

A :class:`Leveling` maps specification variables (``"M.ibw"``,
``"Link.lbw"``, ``"Node.cpu"``) to level specs; it is the experiment knob
of Table 1.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..intervals import Interval
from .errors import SpecError

__all__ = ["LevelSpec", "TRIVIAL_LEVELS", "Leveling"]


@dataclass(frozen=True)
class LevelSpec:
    """An increasing tuple of positive cutpoints over ``[0, ∞)``."""

    cutpoints: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        pts = tuple(float(c) for c in self.cutpoints)
        object.__setattr__(self, "cutpoints", pts)
        if any(c <= 0 or not math.isfinite(c) for c in pts):
            raise SpecError(f"cutpoints must be positive and finite: {pts}")
        if any(b <= a for a, b in zip(pts, pts[1:])):
            raise SpecError(f"cutpoints must be strictly increasing: {pts}")

    # -- queries -----------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of levels (cutpoints + 1)."""
        return len(self.cutpoints) + 1

    def is_trivial(self) -> bool:
        return not self.cutpoints

    def interval(self, index: int, upper_bound: float = math.inf) -> Interval:
        """The half-open interval of level ``index``.

        ``upper_bound`` clips the top level (and any level straddling it)
        to the statically known maximum of the variable — this is what
        makes the trivial level behave like the original greedy planner
        (DESIGN.md §2): the only interval becomes ``[0, bound]`` and
        worst-case consumption is evaluated at the full bound.
        """
        if not 0 <= index < self.count:
            raise SpecError(f"level index {index} out of range for {self}")
        lo = 0.0 if index == 0 else self.cutpoints[index - 1]
        hi = self.cutpoints[index] if index < len(self.cutpoints) else math.inf
        if math.isfinite(upper_bound):
            if hi > upper_bound:
                # Clip; the bound itself is attainable.
                return Interval(lo, upper_bound, False, False)
        return Interval.half_open(lo, hi)

    def intervals(self, upper_bound: float = math.inf) -> list[Interval]:
        """All level intervals, clipped to ``upper_bound``; empty ones
        (entirely above the bound) are preserved as empty for index
        stability — callers skip them."""
        return [self.interval(i, upper_bound) for i in range(self.count)]

    def _snap(self, value: float) -> float:
        """Snap ``value`` onto a cutpoint it matches within float fuzz.

        Effect formulas reconstruct cutpoint-aligned values through ratio
        arithmetic (``90 * 0.7`` vs the scaled T cutpoint 63); snapping
        keeps classification stable across those rounding paths.
        """
        i = bisect.bisect_left(self.cutpoints, value)
        tol = 1e-9 * max(1.0, abs(value))
        for j in (i - 1, i):
            if 0 <= j < len(self.cutpoints) and abs(self.cutpoints[j] - value) <= tol:
                return self.cutpoints[j]
        return value

    def classify_value(self, value: float) -> int:
        """Index of the level containing ``value`` (values < 0 map to 0)."""
        value = self._snap(value)
        if value < 0:
            return 0
        return bisect.bisect_right(self.cutpoints, value)

    def classify_interval(self, iv: Interval) -> int:
        """Highest level index the interval reaches.

        Produced availability propositions are classified by the best
        value the effect can deliver; degradable matching handles uses at
        lower levels.
        """
        if iv.is_empty():
            raise SpecError(f"cannot classify empty interval under {self}")
        hi = self._snap(iv.hi)
        idx = self.classify_value(hi)
        # An open upper bound sitting exactly on a cutpoint never attains
        # the cutpoint, so the interval tops out in the level below.
        if iv.hi_open and idx > 0 and idx <= len(self.cutpoints) and self.cutpoints[idx - 1] == hi:
            idx -= 1
        return idx

    def feasible_indices(self, upper_bound: float = math.inf) -> list[int]:
        """Indices of levels that survive clipping to ``upper_bound``."""
        return [i for i in range(self.count) if not self.interval(i, upper_bound).is_empty()]

    def scaled(self, factor: float) -> "LevelSpec":
        """Cutpoints multiplied by ``factor`` — the paper's "levels of T,
        I, and Z are proportional to those of the M stream".

        Products are snapped to 9 decimal digits so that proportional
        cutpoint families stay exactly aligned under the component ratio
        formulas (``0.7 * 90`` must be the same float as the T cutpoint).
        """
        if factor <= 0:
            raise SpecError("scale factor must be positive")
        return LevelSpec(tuple(round(c * factor, 9) for c in self.cutpoints))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_trivial():
            return "LevelSpec<trivial>"
        return f"LevelSpec{self.cutpoints}"


TRIVIAL_LEVELS = LevelSpec(())


@dataclass
class Leveling:
    """Assignment of level specs to specification variables.

    Keys are spec-variable names: interface properties (``"M.ibw"``),
    link resources (``"Link.lbw"``), node resources (``"Node.cpu"``).
    Unmapped variables get :data:`TRIVIAL_LEVELS`.
    """

    specs: dict[str, LevelSpec] = field(default_factory=dict)
    name: str = "custom"

    def for_var(self, var: str) -> LevelSpec:
        return self.specs.get(var, TRIVIAL_LEVELS)

    def mapped_vars(self) -> set[str]:
        return set(self.specs)

    @staticmethod
    def from_cutpoints(mapping: Mapping[str, Iterable[float]], name: str = "custom") -> "Leveling":
        return Leveling({k: LevelSpec(tuple(v)) for k, v in mapping.items()}, name)

    def with_spec(self, var: str, spec: LevelSpec) -> "Leveling":
        out = dict(self.specs)
        out[var] = spec
        return Leveling(out, self.name)
