"""Parser for the paper's pseudo-XML specification syntax (Figs. 2 and 6).

The paper writes component and interface specifications as an indented,
unclosed tag format::

    <component name=Merger>
      <linkages>
        <requires>
          <interface name=T>
          <interface name=I>
        <implements>
          <interface name=M>
      <conditions>
        Node.cpu >= (T.ibw+I.ibw)/5
        T.ibw*3 == I.ibw*7
      <effects>
        M.ibw := T.ibw + I.ibw
        Node.cpu -= (T.ibw+I.ibw)/5

    <interface name=M>
      <cross_effects>
        M.ibw' := min(M.ibw, Link.lbw)
        Link.lbw' -= min(M.ibw, Link.lbw)
      <levels>
        <cutpoint value=30>
        <cutpoint value=70>

This module parses that format (indentation-insensitive, closing tags
optional and ignored) into :class:`ComponentSpec` / :class:`InterfaceType`
objects.  A ``<cost>`` section holding a single formula line is accepted
in both spec kinds as the §3.1 cost extension.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..expr import parse_assign, parse_condition, parse_expr
from .component import ComponentSpec
from .errors import SpecError
from .interface import InterfaceType, PropertySpec
from .levels import LevelSpec

__all__ = ["parse_spec_text", "ParsedSpecs"]

_TAG_RE = re.compile(r"^<\s*(/?)(\w+)((?:\s+\w+\s*=\s*[^\s>]+)*)\s*>$")
_ATTR_RE = re.compile(r"(\w+)\s*=\s*([^\s>]+)")

_COMPONENT_SECTIONS = {"linkages", "requires", "implements", "conditions", "effects", "cost"}
_INTERFACE_SECTIONS = {"cross_conditions", "cross_effects", "levels", "cost", "properties"}


@dataclass
class ParsedSpecs:
    """The result of parsing a specification document."""

    components: list[ComponentSpec] = field(default_factory=list)
    interfaces: list[InterfaceType] = field(default_factory=list)


@dataclass
class _ComponentDraft:
    name: str
    requires: list[str] = field(default_factory=list)
    implements: list[str] = field(default_factory=list)
    conditions: list[str] = field(default_factory=list)
    effects: list[str] = field(default_factory=list)
    cost: str | None = None

    def build(self) -> ComponentSpec:
        return ComponentSpec.parse(
            self.name,
            requires=self.requires,
            implements=self.implements,
            conditions=self.conditions,
            effects=self.effects,
            cost=self.cost,
        )


@dataclass
class _InterfaceDraft:
    name: str
    cross_conditions: list[str] = field(default_factory=list)
    cross_effects: list[str] = field(default_factory=list)
    cutpoints: list[float] = field(default_factory=list)
    cost: str | None = None
    properties: list[str] = field(default_factory=list)

    def build(self) -> InterfaceType:
        prop_names = self.properties or ["ibw"]
        levels = LevelSpec(tuple(self.cutpoints)) if self.cutpoints else None
        props = tuple(
            PropertySpec(p, degradable=None, default_levels=levels if p == prop_names[0] else None)
            for p in prop_names
        )
        return InterfaceType(
            name=self.name,
            properties=props,
            cross_conditions=tuple(parse_condition(c) for c in self.cross_conditions),
            cross_effects=tuple(parse_assign(e) for e in self.cross_effects),
            cross_cost=parse_expr(self.cost) if self.cost else None,
        )


def _parse_tag(line: str) -> tuple[str, dict[str, str]] | None:
    m = _TAG_RE.match(line)
    if not m:
        return None
    closing, name, attr_text = m.groups()
    if closing:
        return (f"/{name}", {})
    attrs = {k: v.strip("\"'") for k, v in _ATTR_RE.findall(attr_text or "")}
    return (name, attrs)


def parse_spec_text(text: str) -> ParsedSpecs:
    """Parse a specification document into component/interface specs."""
    out = ParsedSpecs()
    current: _ComponentDraft | _InterfaceDraft | None = None
    section: str | None = None
    linkage_mode: str | None = None

    def flush() -> None:
        nonlocal current
        if current is None:
            return
        if isinstance(current, _ComponentDraft):
            out.components.append(current.build())
        else:
            out.interfaces.append(current.build())
        current = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tag = _parse_tag(line)
        if tag is not None:
            name, attrs = tag
            if name.startswith("/"):
                continue  # closing tags are optional noise
            if name == "component":
                flush()
                if "name" not in attrs:
                    raise SpecError(f"line {lineno}: <component> needs a name attribute")
                current = _ComponentDraft(attrs["name"])
                section = None
                linkage_mode = None
            elif name == "interface":
                if "name" not in attrs:
                    raise SpecError(f"line {lineno}: <interface> needs a name attribute")
                in_linkage = isinstance(current, _ComponentDraft) and linkage_mode in (
                    "requires",
                    "implements",
                )
                if in_linkage:
                    getattr(current, linkage_mode).append(attrs["name"])
                else:
                    # Top-level interface spec (Fig. 6).
                    flush()
                    current = _InterfaceDraft(attrs["name"])
                    section = None
            elif name == "cutpoint":
                if not isinstance(current, _InterfaceDraft) or section != "levels":
                    raise SpecError(f"line {lineno}: <cutpoint> outside a <levels> section")
                try:
                    current.cutpoints.append(float(attrs["value"]))
                except (KeyError, ValueError):
                    raise SpecError(f"line {lineno}: <cutpoint> needs a numeric value") from None
            elif name == "property":
                if not isinstance(current, _InterfaceDraft) or section != "properties":
                    raise SpecError(f"line {lineno}: <property> outside a <properties> section")
                current.properties.append(attrs["name"])
            elif name in _COMPONENT_SECTIONS and isinstance(current, _ComponentDraft):
                if name in ("requires", "implements"):
                    linkage_mode = name
                    section = "linkages"
                elif name == "linkages":
                    section = "linkages"
                else:
                    section = name
                    linkage_mode = None
            elif name in _INTERFACE_SECTIONS and isinstance(current, _InterfaceDraft):
                section = name
            else:
                raise SpecError(f"line {lineno}: unexpected tag <{name}> in this context")
            continue

        # Formula line.
        if current is None or section is None:
            raise SpecError(f"line {lineno}: formula outside any section: {line!r}")
        if isinstance(current, _ComponentDraft):
            if section == "conditions":
                current.conditions.append(line)
            elif section == "effects":
                current.effects.append(line)
            elif section == "cost":
                current.cost = line
            else:
                raise SpecError(f"line {lineno}: formula in non-formula section {section!r}")
        else:
            if section == "cross_conditions":
                current.cross_conditions.append(line)
            elif section == "cross_effects":
                current.cross_effects.append(line)
            elif section == "cost":
                current.cost = line
            else:
                raise SpecError(f"line {lineno}: formula in non-formula section {section!r}")

    flush()
    return out
