"""Interface (data stream) specifications.

An interface type names a kind of data stream, its application-specific
properties (the paper's ``ibw`` — delivered stream bandwidth), and the
formulas governing a link crossing (Fig. 6): conditions that must hold for
the stream to cross, and effects on the post-crossing property values
(primed variables) and on link resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..expr import (
    Assign,
    Node,
    infer_degradable,
    parse_assign,
    parse_condition,
    parse_expr,
    variables,
)
from .errors import SpecError
from .levels import LevelSpec

__all__ = ["PropertySpec", "InterfaceType"]


@dataclass(frozen=True)
class PropertySpec:
    """One application-specific property of an interface.

    Attributes
    ----------
    name:
        Property identifier (``ibw``).
    degradable / upgradable:
        §3.1 tags.  Stream bandwidth is degradable: a component may
        process less than is available.  ``None`` requests automatic
        syntactic inference at compile time.
    default_levels:
        Levels declared inline in the interface spec (Fig. 6); experiment
        levelings override these.
    """

    name: str
    degradable: bool | None = None
    upgradable: bool = False
    default_levels: LevelSpec | None = None


@dataclass
class InterfaceType:
    """A data-stream interface with crossing semantics."""

    name: str
    properties: tuple[PropertySpec, ...] = (PropertySpec("ibw", degradable=True),)
    cross_conditions: tuple[Node, ...] = ()
    cross_effects: tuple[Assign, ...] = ()
    cross_cost: Node | None = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SpecError(f"interface name must be an identifier: {self.name!r}")
        seen: set[str] = set()
        for p in self.properties:
            if p.name in seen:
                raise SpecError(f"duplicate property {p.name!r} on interface {self.name}")
            seen.add(p.name)
        self._check_vars()

    @staticmethod
    def parse(
        name: str,
        properties: Iterable[PropertySpec] | None = None,
        cross_conditions: Iterable[str] = (),
        cross_effects: Iterable[str] = (),
        cross_cost: str | None = None,
    ) -> "InterfaceType":
        """Build an interface from formula strings (the usual entry point)."""
        return InterfaceType(
            name=name,
            properties=tuple(properties) if properties is not None else (PropertySpec("ibw", degradable=True),),
            cross_conditions=tuple(parse_condition(c) for c in cross_conditions),
            cross_effects=tuple(parse_assign(e) for e in cross_effects),
            cross_cost=parse_expr(cross_cost) if cross_cost is not None else None,
        )

    # -- introspection -------------------------------------------------------

    def property_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.properties)

    def property_spec(self, prop: str) -> PropertySpec:
        for p in self.properties:
            if p.name == prop:
                return p
        raise SpecError(f"interface {self.name} has no property {prop!r}")

    def spec_var(self, prop: str) -> str:
        """The spec-variable name for one of this interface's properties."""
        return f"{self.name}.{prop}"

    def is_degradable(self, prop: str) -> bool:
        """Resolve the degradable tag, inferring syntactically if unset."""
        spec = self.property_spec(prop)
        if spec.degradable is not None:
            return spec.degradable
        return infer_degradable(self.spec_var(prop), self.cross_effects)

    def _check_vars(self) -> None:
        """Cross formulas may only mention this interface and ``Link``."""
        own = {self.spec_var(p.name) for p in self.properties}
        formulas: list[Node] = list(self.cross_conditions) + list(self.cross_effects)
        if self.cross_cost is not None:
            formulas.append(self.cross_cost)
        for f in formulas:
            for v in variables(f):
                scope = v.split(".", 1)[0]
                if scope != "Link" and v not in own:
                    raise SpecError(
                        f"cross formula of interface {self.name} references {v!r}; "
                        f"only Link.* and {sorted(own)} are in scope"
                    )


def _default_cross_effects(iface: str, prop: str = "ibw") -> tuple[Assign, ...]:
    """The paper's Fig. 6 crossing semantics for a bandwidth stream."""
    return (
        parse_assign(f"{iface}.{prop}' := min({iface}.{prop}, Link.lbw)"),
        parse_assign(f"Link.lbw' -= min({iface}.{prop}, Link.lbw)"),
    )


def bandwidth_interface(
    name: str,
    cross_cost: str | None = None,
    levels: LevelSpec | None = None,
) -> InterfaceType:
    """Convenience constructor for a Fig. 6-style bandwidth stream."""
    return InterfaceType(
        name=name,
        properties=(PropertySpec("ibw", degradable=True, default_levels=levels),),
        cross_effects=_default_cross_effects(name),
        cross_cost=parse_expr(cross_cost) if cross_cost is not None else None,
    )


InterfaceType.bandwidth = staticmethod(bandwidth_interface)  # type: ignore[attr-defined]

__all__.append("bandwidth_interface")
