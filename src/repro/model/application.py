"""Application specifications: the full CPP input minus the network.

An :class:`AppSpec` bundles interface types, component types, the resource
vocabulary, pre-placed components (the running Server of Fig. 1), and the
goal placements (the Client that must be deployed).  Combined with a
:class:`~repro.network.Network` and a
:class:`~repro.model.levels.Leveling`, it fully determines a CPP instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..network.resources import CPU, LINK_BANDWIDTH, ResourceDecl, ResourceScope
from .component import ComponentSpec
from .errors import SpecError
from .interface import InterfaceType
from .levels import Leveling

__all__ = ["Placement", "AppSpec"]


@dataclass(frozen=True, slots=True)
class Placement:
    """A (component, node) pair — either pre-existing or a goal."""

    component: str
    node: str


@dataclass
class AppSpec:
    """A component-based application and its deployment goal."""

    name: str
    interfaces: dict[str, InterfaceType]
    components: dict[str, ComponentSpec]
    resources: tuple[ResourceDecl, ...] = (CPU, LINK_BANDWIDTH)
    initial_placements: tuple[Placement, ...] = ()
    goal_placements: tuple[Placement, ...] = ()
    pinned: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._validate()

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def build(
        name: str,
        interfaces: Iterable[InterfaceType],
        components: Iterable[ComponentSpec],
        resources: Iterable[ResourceDecl] = (CPU, LINK_BANDWIDTH),
        initial: Iterable[tuple[str, str]] = (),
        goals: Iterable[tuple[str, str]] = (),
    ) -> "AppSpec":
        """Assemble an AppSpec from component/interface collections.

        Initial and goal components are automatically pinned to their
        nodes — a pre-placed Server cannot float, and the Client's
        location is part of the goal.
        """
        initial_p = tuple(Placement(c, n) for c, n in initial)
        goal_p = tuple(Placement(c, n) for c, n in goals)
        pinned = {p.component: p.node for p in initial_p + goal_p}
        return AppSpec(
            name=name,
            interfaces={i.name: i for i in interfaces},
            components={c.name: c for c in components},
            resources=tuple(resources),
            initial_placements=initial_p,
            goal_placements=goal_p,
            pinned=pinned,
        )

    # -- validation -------------------------------------------------------------

    def _validate(self) -> None:
        names = set(self.resources and [r.name for r in self.resources])
        if len(names) != len(self.resources):
            raise SpecError(f"app {self.name}: duplicate resource declarations")
        for comp in self.components.values():
            for iface in comp.requires + comp.implements:
                if iface not in self.interfaces:
                    raise SpecError(
                        f"component {comp.name} links unknown interface {iface!r}"
                    )
        for p in self.initial_placements + self.goal_placements:
            if p.component not in self.components:
                raise SpecError(f"placement of unknown component {p.component!r}")
        for comp, node in self.pinned.items():
            if comp not in self.components:
                raise SpecError(f"pin of unknown component {comp!r}")
        goal_comps = {p.component for p in self.goal_placements}
        init_comps = {p.component for p in self.initial_placements}
        if goal_comps & init_comps:
            raise SpecError(
                f"app {self.name}: components {sorted(goal_comps & init_comps)} are "
                "both pre-placed and goals"
            )
        if not self.goal_placements:
            raise SpecError(f"app {self.name}: no goal placements — nothing to plan")

    # -- queries ------------------------------------------------------------------

    def interface(self, name: str) -> InterfaceType:
        try:
            return self.interfaces[name]
        except KeyError:
            raise SpecError(f"unknown interface {name!r}") from None

    def component(self, name: str) -> ComponentSpec:
        try:
            return self.components[name]
        except KeyError:
            raise SpecError(f"unknown component {name!r}") from None

    def resource(self, name: str) -> ResourceDecl:
        for r in self.resources:
            if r.name == name:
                return r
        raise SpecError(f"unknown resource {name!r}")

    def node_resources(self) -> list[ResourceDecl]:
        return [r for r in self.resources if r.scope is ResourceScope.NODE]

    def link_resources(self) -> list[ResourceDecl]:
        return [r for r in self.resources if r.scope is ResourceScope.LINK]

    def placeable_nodes(self, component: str, candidate_nodes: Iterable[str]) -> list[str]:
        """Nodes where ``component`` may go, honouring pins."""
        pin = self.pinned.get(component)
        if pin is not None:
            return [pin] if pin in set(candidate_nodes) else []
        return list(candidate_nodes)

    def default_leveling(self) -> Leveling:
        """Leveling assembled from the interfaces' inline level specs."""
        specs = {}
        for iface in self.interfaces.values():
            for prop in iface.properties:
                if prop.default_levels is not None:
                    specs[iface.spec_var(prop.name)] = prop.default_levels
        return Leveling(specs, name=f"{self.name}-defaults")
