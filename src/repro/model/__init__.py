"""The CPP model: interfaces, components, applications, levels."""

from .errors import SpecError
from .levels import TRIVIAL_LEVELS, Leveling, LevelSpec
from .interface import InterfaceType, PropertySpec, bandwidth_interface
from .component import ComponentSpec
from .application import AppSpec, Placement
from .parser import ParsedSpecs, parse_spec_text
from .validation import require_valid, validate_against_network

__all__ = [
    "SpecError",
    "LevelSpec",
    "TRIVIAL_LEVELS",
    "Leveling",
    "PropertySpec",
    "InterfaceType",
    "bandwidth_interface",
    "ComponentSpec",
    "AppSpec",
    "Placement",
    "ParsedSpecs",
    "parse_spec_text",
    "validate_against_network",
    "require_valid",
]
