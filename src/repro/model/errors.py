"""Exception types for CPP model specifications."""

from __future__ import annotations

__all__ = ["SpecError"]


class SpecError(Exception):
    """Raised on malformed or inconsistent CPP specifications."""
