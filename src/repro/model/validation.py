"""Cross-validation of an application spec against a concrete network.

The compiler assumes a well-formed pairing of app and network; this module
surfaces problems early with readable messages instead of letting them
appear as mysterious planner failures.
"""

from __future__ import annotations

from ..network import Network, ResourceScope
from .application import AppSpec

__all__ = ["validate_against_network", "require_valid"]


def validate_against_network(app: AppSpec, network: Network) -> list[str]:
    """Return a list of human-readable problems (empty when consistent)."""
    problems: list[str] = []

    for placement in app.initial_placements + app.goal_placements:
        if placement.node not in network:
            problems.append(
                f"placement of {placement.component} references unknown node "
                f"{placement.node!r}"
            )
    for comp, node in app.pinned.items():
        if node not in network:
            problems.append(f"component {comp} pinned to unknown node {node!r}")

    node_res = {r.name for r in app.node_resources()}
    link_res = {r.name for r in app.link_resources()}
    for node in network.nodes.values():
        unknown = set(node.resources) - node_res
        if unknown:
            problems.append(
                f"node {node.id} carries undeclared resources {sorted(unknown)}"
            )
    for link in network.links.values():
        unknown = set(link.resources) - link_res
        if unknown:
            problems.append(
                f"link {link.key} carries undeclared resources {sorted(unknown)}"
            )

    for r in app.resources:
        if r.scope is ResourceScope.NODE:
            missing = [n.id for n in network.nodes.values() if r.name not in n.resources]
            if missing and len(missing) == len(network.nodes):
                problems.append(f"no node provides resource {r.name!r}")
        else:
            if not network.links:
                problems.append(
                    f"link resource {r.name!r} is declared but the network "
                    "has no links"
                )
                continue
            missing = [lk.key for lk in network.links.values() if r.name not in lk.resources]
            if missing and len(missing) == len(network.links):
                problems.append(f"no link provides resource {r.name!r}")

    if not network.is_connected():
        problems.append("network is not connected")

    return problems


def require_valid(app: AppSpec, network: Network) -> None:
    """Raise :class:`ValueError` with all problems when validation fails."""
    problems = validate_against_network(app, network)
    if problems:
        raise ValueError(
            f"app {app.name!r} inconsistent with network {network.name!r}:\n  "
            + "\n  ".join(problems)
        )
