"""Warm-start compile cache (docs/PERFORMANCE.md, "Parallel execution").

Compilation — grounding, leveling, reachability pruning, closure
compilation — dominates the wall clock of every workload that solves the
same (app, network, leveling) triple more than once: the churn
simulator's repair loop compiles the *same* instance twice per step (the
repair problem and the final stitched validation), transient faults
recover to previously-seen network states, and steady-state sweeps
re-plan unchanged cells.  :class:`CompileCache` memoizes
:func:`~repro.compile.compile_problem` results by content fingerprint
(:mod:`repro.parallel.fingerprint`) and hands out cheap
:meth:`~repro.compile.CompiledProblem.fork` copies, so consumers may
mutate what they receive (deployment repair rewrites initial state and
discounts action costs) without poisoning the cache.

Cross-validation of the (app, network) pair — :func:`require_valid` — is
memoized the same way at its own, coarser key, so a campaign that plans
hundreds of repairs against a handful of recurring network states stops
re-walking the topology for every solve.

Semantically the cache is transparent: a hit returns a problem byte-for-
byte equivalent to a fresh compilation (guarded by the determinism tests
in ``tests/parallel/``).  Only timings change — ``compile_seconds`` on a
forked hit reports the (near-zero) fork time, not the original
compilation.

Hits and misses are counted both on the cache object (for benchmarks)
and, when a :class:`~repro.obs.MetricsRegistry` is passed, as
``cache.hit`` / ``cache.miss`` / ``cache.validate.hit`` /
``cache.validate.miss`` counters visible in ``--metrics`` output.
"""

from __future__ import annotations

import time
from collections import OrderedDict

from ..compile import CompiledProblem, compile_problem
from ..model import AppSpec, Leveling
from ..network import Network
from ..obs import MetricsRegistry
from .fingerprint import app_fingerprint, digest, leveling_fingerprint, network_fingerprint

__all__ = ["CompileCache", "default_compile_cache"]


class CompileCache:
    """LRU cache of compiled problems plus an (app, network) validation memo.

    Parameters
    ----------
    max_entries:
        Compiled problems kept (LRU eviction).  Large-network problems
        run to a few tens of MB, so the default stays small; validation
        memo entries are a few bytes and keep ``4 * max_entries``.
    """

    def __init__(self, max_entries: int = 16):
        self.max_entries = max_entries
        self._problems: OrderedDict[tuple, CompiledProblem] = OrderedDict()
        self._validated: OrderedDict[tuple[str, str], None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.validate_hits = 0
        self.validate_misses = 0
        self.analysis_hits = 0
        self.analysis_misses = 0
        self.delta_hits = 0
        self.delta_fallbacks = 0

    def __len__(self) -> int:
        return len(self._problems)

    def clear(self) -> None:
        self._problems.clear()
        self._validated.clear()

    def stats(self) -> dict:
        """JSON-ready counters (benchmarks and ``--metrics`` summaries)."""
        total = self.hits + self.misses
        return {
            "entries": len(self._problems),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
            "validate_hits": self.validate_hits,
            "validate_misses": self.validate_misses,
            "analysis_hits": self.analysis_hits,
            "analysis_misses": self.analysis_misses,
            "delta_hits": self.delta_hits,
            "delta_fallbacks": self.delta_fallbacks,
        }

    # -- the memoized compile --------------------------------------------------

    def compile(
        self,
        app: AppSpec,
        network: Network,
        leveling: Leveling | None = None,
        bound_overrides: dict[str, float] | None = None,
        strict: bool = False,
        *,
        analyze: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> CompiledProblem:
        """Compile (or reuse) a problem; the result is yours to mutate.

        Mirrors :func:`~repro.compile.compile_problem` exactly, including
        its exceptions — a ``strict`` lint failure or an invalid
        (app, network) pair raises on every call, cached or not, because
        failures are never cached.

        With ``analyze=True`` the static-analysis result rides along on
        the cache entry: it is computed at most once per entry (lazily, so
        a problem first cached without analysis gains it on the first
        analyzing hit) and shared by reference with every fork — the
        result holds no action references, so sharing is safe.  Reuse is
        counted as ``cache.analysis.hit`` / ``cache.analysis.miss``.
        """
        key = (
            app_fingerprint(app),
            network_fingerprint(network),
            leveling_fingerprint(leveling),
            digest(bound_overrides),
            strict,
        )
        cached = self._problems.get(key)
        if cached is not None:
            self._problems.move_to_end(key)
            self.hits += 1
            if metrics is not None:
                metrics.inc("cache.hit")
            if analyze:
                if cached.analysis is None:
                    from ..analysis import analyze_problem

                    cached.analysis = analyze_problem(cached)
                    self.analysis_misses += 1
                    if metrics is not None:
                        metrics.inc("cache.analysis.miss")
                else:
                    self.analysis_hits += 1
                    if metrics is not None:
                        metrics.inc("cache.analysis.hit")
            t0 = time.perf_counter()
            fork = cached.fork()
            fork.compile_seconds = time.perf_counter() - t0
            fork.compile_source = "cache"
            return fork
        self.misses += 1
        if metrics is not None:
            metrics.inc("cache.miss")
        if analyze:
            self.analysis_misses += 1
            if metrics is not None:
                metrics.inc("cache.analysis.miss")
        problem = compile_problem(
            app, network, leveling, bound_overrides, strict, analyze=analyze
        )
        self._problems[key] = problem.fork()  # pristine copy, caller may mutate
        while len(self._problems) > self.max_entries:
            self._problems.popitem(last=False)
        # A successful compilation implies the pair validated; remember it.
        self._remember_valid(key[0], key[1])
        return problem

    # -- the delta-aware compile -----------------------------------------------

    def compile_delta(
        self,
        app: AppSpec,
        network: Network,
        leveling: Leveling | None = None,
        bound_overrides: dict[str, float] | None = None,
        strict: bool = False,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> CompiledProblem:
        """Compile, preferring a cached base patched across a network diff.

        The incremental-replanning entry point: on an exact-fingerprint
        hit this is :meth:`compile`; on a miss it looks for a cached
        entry sharing the (app, leveling, overrides) key with a
        *different* network — the previous network state of a repair
        loop — diffs the two topologies
        (:func:`~repro.parallel.fingerprint.network_delta`), and patches
        only the ground actions touching changed elements
        (:func:`repro.compile.delta.patch_problem`) instead of
        recompiling the triple.  The patched problem is cached under the
        new key, so the stitched-validation compile of the same repair
        is a plain hit.

        A successful patch counts as ``cache.delta.hit`` (plus the
        ordinary ``cache.miss`` — the exact key was absent); any
        fallback to full compilation counts as ``cache.delta.full``.
        The result's :attr:`~repro.compile.CompiledProblem.compile_source`
        says which way it came: ``"cache"``, ``"delta"``, or ``"fresh"``.

        Exceptions mirror :meth:`compile`: an invalid (app, network)
        pair raises ``ValueError`` whether patched or compiled.  The
        ``strict`` path never patches (the lint pass reads the network).
        """
        key = (
            app_fingerprint(app),
            network_fingerprint(network),
            leveling_fingerprint(leveling),
            digest(bound_overrides),
            strict,
        )
        if key in self._problems:
            return self.compile(
                app, network, leveling, bound_overrides, strict, metrics=metrics
            )

        base: CompiledProblem | None = None
        if not strict:
            for cached_key in reversed(self._problems):
                if (
                    cached_key[0] == key[0]
                    and cached_key[2:] == key[2:]
                    and cached_key[1] != key[1]
                ):
                    base = self._problems[cached_key]
                    break
        if base is not None:
            from ..compile.delta import patch_problem
            from .fingerprint import network_delta

            delta = network_delta(base.network, network)
            patched = patch_problem(base.fork(), network, delta, bound_overrides)
            if patched is not None:
                self.misses += 1
                self.delta_hits += 1
                if metrics is not None:
                    metrics.inc("cache.miss")
                    metrics.inc("cache.delta.hit")
                self._problems[key] = patched.fork()
                while len(self._problems) > self.max_entries:
                    self._problems.popitem(last=False)
                self._remember_valid(key[0], key[1])
                return patched

        self.delta_fallbacks += 1
        if metrics is not None:
            metrics.inc("cache.delta.full")
        return self.compile(
            app, network, leveling, bound_overrides, strict, metrics=metrics
        )

    # -- the memoized validation ----------------------------------------------

    def require_valid(
        self,
        app: AppSpec,
        network: Network,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Memoized :func:`repro.model.validation.require_valid`.

        Only *successful* validations are remembered — an invalid pair
        re-raises with its full message on every call.
        """
        from ..model.validation import require_valid

        key = (app_fingerprint(app), network_fingerprint(network))
        if key in self._validated:
            self._validated.move_to_end(key)
            self.validate_hits += 1
            if metrics is not None:
                metrics.inc("cache.validate.hit")
            return
        self.validate_misses += 1
        if metrics is not None:
            metrics.inc("cache.validate.miss")
        require_valid(app, network)
        self._remember_valid(*key)

    def _remember_valid(self, app_fp: str, net_fp: str) -> None:
        self._validated[(app_fp, net_fp)] = None
        while len(self._validated) > 4 * self.max_entries:
            self._validated.popitem(last=False)


_default: CompileCache | None = None


def default_compile_cache() -> CompileCache:
    """The process-wide cache (one per worker process, by construction)."""
    global _default
    if _default is None:
        _default = CompileCache()
    return _default
