"""A spawn-safe process pool with deterministic sharding.

Why not :class:`concurrent.futures.ProcessPoolExecutor`?  Two reasons,
both load-bearing for this codebase:

* **Deterministic task→worker affinity.**  Tasks are sharded statically
  (task ``i`` goes to worker ``i % workers``), so a task set replayed
  against a persistent pool lands on the *same* workers every time.
  That makes results reproducible metric-for-metric and lets each
  worker's warm-start compile cache (:mod:`repro.parallel.cache`) hit
  reliably on repeated workloads — a shared work queue would scatter
  repeat cells across workers at the scheduler's whim.
* **Loud failures.**  A worker that dies (OOM, segfault, unpicklable
  result) surfaces as :class:`WorkerCrashed` naming the worker and its
  shard; a task that raises surfaces as :class:`TaskFailed` carrying the
  remote traceback text, re-raised in deterministic task order.

Workers are started with the ``spawn`` method unconditionally — no
inherited state, no fork-only assumptions — so behavior is identical on
Linux, macOS, and Windows, and pickling bugs in task payloads show up
everywhere instead of only off-Linux.  Task functions must therefore be
module-level importables and payloads must survive pickling
(:func:`repro.parallel.check_picklable` diagnoses violations).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
import traceback
from multiprocessing import connection as mp_connection
from typing import Callable, Sequence

__all__ = ["WorkerPool", "WorkerCrashed", "TaskFailed", "resolve_workers"]

STALL_INTERVALS = 4
"""A streaming worker silent for this many heartbeat periods is stalled."""

START_METHOD = "spawn"


class WorkerCrashed(RuntimeError):
    """A worker process died before returning its shard's results."""


class TaskFailed(RuntimeError):
    """One or more tasks raised in workers; carries remote tracebacks.

    ``index``/``remote_traceback`` describe the lowest failing task (the
    deterministic primary); ``failures`` maps *every* failed task index
    to its ``(message, remote_traceback)`` pair so multi-failure runs are
    debuggable in one pass, and ``indices`` lists them sorted.
    """

    def __init__(
        self,
        index: int,
        message: str,
        remote_traceback: str,
        failures: dict[int, tuple[str, str]] | None = None,
    ):
        self.index = index
        self.remote_traceback = remote_traceback
        self.failures = dict(failures) if failures else {index: (message, remote_traceback)}
        self.indices = sorted(self.failures)
        text = (
            f"task {index} failed in worker: {message}\n"
            f"--- remote traceback ---\n{remote_traceback}"
        )
        others = [i for i in self.indices if i != index]
        if others:
            text += f"\n({len(self.indices)} tasks failed in total: {self.indices})"
            for i in others:
                other_message, _tb = self.failures[i]
                text += f"\ntask {i} failed in worker: {other_message}"
        super().__init__(text)


def resolve_workers(workers: int | None, tasks: int) -> int:
    """Clamp a worker-count request to something sensible."""
    if workers is None or workers <= 1:
        return 1
    return max(1, min(workers, tasks))


def _synth_frame(kind: str, pid: int, **extra) -> dict:
    """A coordinator-side frame (stall/recovery/respawn bookkeeping)."""
    frame = {
        "kind": kind,
        "pid": pid,
        "seq": 0,
        "ts_s": time.time(),
        "task": None,
        "label": "",
        "done": 0,
        "total": 0,
    }
    frame.update(extra)
    return frame


def _run_one(fn, payload) -> tuple[bool, object, str | None]:
    """Run one task; never raises — failures come back as data."""
    try:
        return True, fn(payload), None
    except BaseException as exc:  # noqa: BLE001 - report, don't die
        return False, f"{type(exc).__name__}: {exc}", traceback.format_exc()


def _worker_main(conn) -> None:
    """Worker loop: receive (fn, shard, interval), run, reply; repeat.

    Two dispatch forms:

    * ``("run", fn, shard, interval)`` — the classic batch contract: one
      final ``("done", results)`` message carries the whole shard.
    * ``("run_each", fn, shard, interval, kill_before)`` — the supervised
      contract (:class:`~repro.parallel.Supervisor`): each task's result
      is sent eagerly as ``("result", (index, ok, value, remote_tb))``,
      so the coordinator knows exactly which tasks completed if this
      process dies mid-shard; an empty ``("done", [])`` marks the shard's
      end.  ``kill_before`` is the fault-injection hook: the worker
      SIGKILLs *itself* immediately before running any task listed there
      (tests and the supervision-smoke CI job inject crashes this way).

    With a stream interval set, zero or more ``("frame", dict)`` messages
    precede the final ``("done", ...)`` — the heartbeat thread is joined
    before the done send, so no frame ever trails the results.
    """
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            eager = message[0] == "run_each"
            kill_before = frozenset(message[4]) if eager else frozenset()
            _, fn, shard, interval_s = message[:4]
            sender = None
            if interval_s is not None:
                from ..obs.stream import FrameSender

                sender = FrameSender(conn, interval_s, total=len(shard))
            results = []
            for index, payload in shard:
                if index in kill_before:
                    if sender is not None:
                        sender.close()
                    os.kill(os.getpid(), signal.SIGKILL)
                if sender is not None:
                    sender.task_start(index, payload)
                ok, value, remote_tb = _run_one(fn, payload)
                if sender is not None:
                    sender.task_end(index, ok, value if ok else None)
                if eager:
                    try:
                        conn.send(("result", (index, ok, value, remote_tb)))
                    except (BrokenPipeError, EOFError, OSError):
                        raise
                    except Exception as exc:  # unpicklable result value
                        conn.send(
                            (
                                "result",
                                (
                                    index,
                                    False,
                                    f"result not picklable: {type(exc).__name__}: {exc}",
                                    traceback.format_exc(),
                                ),
                            )
                        )
                else:
                    results.append((index, ok, value, remote_tb))
            if sender is not None:
                sender.close()
            conn.send(("done", results))
    except (EOFError, KeyboardInterrupt):  # parent went away / interrupt
        pass
    finally:
        conn.close()


class WorkerPool:
    """Persistent spawn-started workers with per-worker command pipes.

    Use as a context manager::

        with WorkerPool(4) as pool:
            rows = pool.map(run_cell_task, tasks)

    ``map`` may be called repeatedly; workers persist between calls, so
    per-process state (module import cost, compile caches) is paid once.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        ctx = mp.get_context(START_METHOD)
        self._procs = []
        self._conns = []
        for i in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn,),
                name=f"repro-worker-{i}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    @property
    def workers(self) -> int:
        return len(self._procs)

    @property
    def pids(self) -> list[int]:
        """The worker process ids, in worker order."""
        return [proc.pid or 0 for proc in self._procs]

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def map(
        self,
        fn: Callable,
        payloads: Sequence,
        on_frame: Callable[[int, dict], None] | None = None,
        stream_interval_s: float | None = None,
    ) -> list:
        """Run ``fn`` over ``payloads``; results in payload order.

        ``fn`` must be a module-level callable (pickled by reference).
        Task ``i`` always runs on worker ``i % workers``; within one
        worker, its shard runs in ascending task order.  The first
        failing task (lowest index) is re-raised as :class:`TaskFailed`.

        With ``on_frame`` set, workers stream telemetry frames (see
        :mod:`repro.obs.stream`) interleaved with their results;
        ``on_frame(worker_id, frame)`` is invoked for each, on this
        thread, in arrival order.  A streaming worker that stays silent
        for ``STALL_INTERVALS`` heartbeat periods gets a synthesized
        ``heartbeat_missed`` frame per further silent period — detection
        only; the pool keeps waiting for its results.  Without
        ``on_frame``, no frames are requested and workers send exactly
        one results message, as before.
        """
        if not self._procs:
            raise RuntimeError("pool is closed")
        if on_frame is not None and stream_interval_s is None:
            from ..obs.stream import DEFAULT_STREAM_INTERVAL_S

            stream_interval_s = DEFAULT_STREAM_INTERVAL_S
        interval = stream_interval_s if on_frame is not None else None

        shards: list[list[tuple[int, object]]] = [[] for _ in self._procs]
        for index, payload in enumerate(payloads):
            shards[index % len(self._procs)].append((index, payload))

        busy = []
        for worker_id, shard in enumerate(shards):
            if shard:
                self._conns[worker_id].send(("run", fn, shard, interval))
                busy.append(worker_id)

        results: dict[int, object] = {}
        failures: dict[int, tuple[str, str]] = {}
        pending = set(busy)
        by_conn = {self._conns[worker_id]: worker_id for worker_id in busy}
        last_seen = {worker_id: time.monotonic() for worker_id in busy}
        stalled: set[int] = set()
        stall_after = (interval or 0.0) * STALL_INTERVALS
        while pending:
            conns = [self._conns[worker_id] for worker_id in sorted(pending)]
            # Wake at heartbeat granularity when streaming, so one silent
            # worker is flagged on time even while its siblings chatter.
            ready = mp_connection.wait(
                conns, timeout=interval if interval is not None else None
            )
            if interval is not None:
                now = time.monotonic()
                for worker_id in sorted(pending):
                    if (
                        self._conns[worker_id] not in (ready or ())
                        and now - last_seen[worker_id] >= stall_after
                    ):
                        # One synthesized frame per further silent period.
                        last_seen[worker_id] = now
                        stalled.add(worker_id)
                        on_frame(
                            worker_id,
                            _synth_frame(
                                "heartbeat_missed", self._procs[worker_id].pid or 0
                            ),
                        )
            if not ready:
                continue
            for conn in ready:
                worker_id = by_conn[conn]
                try:
                    message = conn.recv()
                except (EOFError, ConnectionResetError) as exc:
                    shard_ids = [i for i, _ in shards[worker_id]]
                    raise WorkerCrashed(
                        f"worker {worker_id} died while running tasks {shard_ids} "
                        f"({type(exc).__name__}); its results are lost"
                    ) from exc
                last_seen[worker_id] = time.monotonic()
                if worker_id in stalled:
                    # The worker resumed (e.g. SIGCONT): synthesize an
                    # explicit recovery frame so live views clear the
                    # STALLED row instead of sticking stale.
                    stalled.discard(worker_id)
                    if on_frame is not None:
                        on_frame(
                            worker_id,
                            _synth_frame(
                                "heartbeat_recovered", self._procs[worker_id].pid or 0
                            ),
                        )
                tag = message[0]
                if tag == "frame":
                    if on_frame is not None:
                        on_frame(worker_id, message[1])
                    continue
                pending.discard(worker_id)
                for index, ok, value, remote_tb in message[1]:
                    if ok:
                        results[index] = value
                    else:
                        failures[index] = (value, remote_tb)

        if failures:
            first = min(failures)
            message, remote_tb = failures[first]
            raise TaskFailed(first, message, remote_tb, failures=failures)
        return [results[i] for i in range(len(payloads))]

    def close(self) -> None:
        """Stop all workers (idempotent)."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []
