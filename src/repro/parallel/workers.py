"""Module-level worker task functions for the process pool.

Spawn-started workers pickle task functions *by reference*, so
everything a :class:`~repro.parallel.WorkerPool` runs lives here as a
plain module-level function taking one pickleable payload dataclass and
returning one pickleable result dataclass.  Each task builds its own
:class:`~repro.obs.Telemetry` (when asked) and returns a
:class:`~repro.parallel.MetricsSnapshot`; the parent merges snapshots in
task order, so parallel runs report the same counters a serial run
would.

Compilation inside a worker goes through the worker's process-global
warm-start cache (:func:`~repro.parallel.default_compile_cache`):
repeated cells or recurring fault-campaign network states stop paying
grounding costs after first sight, and the ``cache.hit`` / ``cache.miss``
counters ride home in the snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model import AppSpec, Leveling
from ..network import Network
from .envelope import MetricsSnapshot, PlanEnvelope

__all__ = [
    "CellTask",
    "CellResult",
    "run_cell_task",
    "CampaignTask",
    "CampaignResult",
    "run_campaign_task",
]


# -- Table 2 cells (experiments.harness fan-out) -------------------------------


@dataclass(frozen=True)
class CellTask:
    """One (network, scenario) cell of the paper's evaluation."""

    network: str
    scenario: str
    source_bw: float
    demand: float
    rg_node_budget: int
    with_metrics: bool = False
    use_cache: bool = True
    static_prune: str | None = None


@dataclass(frozen=True)
class CellResult:
    """A solved cell: the row (plan stripped), its plan, worker metrics."""

    row: object  # Table2Row with plan=None and plan_names filled
    plan: PlanEnvelope | None
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)


def run_cell_task(task: CellTask) -> CellResult:
    """Solve one Table 2 cell in this worker."""
    from ..experiments.harness import run_cell
    from ..obs import Telemetry
    from .cache import default_compile_cache

    telemetry = Telemetry() if task.with_metrics else None
    row = run_cell(
        task.network,
        task.scenario,
        source_bw=task.source_bw,
        demand=task.demand,
        rg_node_budget=task.rg_node_budget,
        telemetry=telemetry,
        compile_cache=default_compile_cache() if task.use_cache else None,
        static_prune=task.static_prune,
    )
    envelope = PlanEnvelope.from_plan(row.plan) if row.plan is not None else None
    row.plan_names = tuple(envelope.actions) if envelope is not None else ()
    row.plan = None  # the full Plan holds the compiled problem; too big to ship
    return CellResult(
        row=row,
        plan=envelope,
        metrics=MetricsSnapshot.from_telemetry(telemetry),
    )


# -- fault-campaign runs (simulate fan-out) ------------------------------------


@dataclass(frozen=True)
class CampaignTask:
    """One seeded campaign run: instance + campaign spec + seed override."""

    app: AppSpec
    network: Network
    leveling: Leveling
    spec: dict
    seed: int | None = None
    events: int | None = None
    time_limit_s: float | None = None
    include_timings: bool = False
    with_metrics: bool = False
    use_cache: bool = True


@dataclass(frozen=True)
class CampaignResult:
    """One campaign run's deterministic record plus worker metrics."""

    seed: int | None
    record: dict
    description: str
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)


def run_campaign_task(task: CampaignTask) -> CampaignResult:
    """Run one fault campaign in this worker."""
    from ..obs import Telemetry
    from ..simulate.campaign import run_campaign_run
    from .cache import default_compile_cache

    telemetry = Telemetry() if task.with_metrics else None
    result = run_campaign_run(
        task.app,
        task.network,
        task.leveling,
        task.spec,
        seed=task.seed,
        events=task.events,
        time_limit_s=task.time_limit_s,
        telemetry=telemetry,
        compile_cache=default_compile_cache() if task.use_cache else None,
    )
    return CampaignResult(
        seed=task.seed,
        record=result.to_dict(include_timings=task.include_timings),
        description=result.describe(),
        metrics=MetricsSnapshot.from_telemetry(telemetry),
    )
