"""Module-level worker task functions for the process pool.

Spawn-started workers pickle task functions *by reference*, so
everything a :class:`~repro.parallel.WorkerPool` runs lives here as a
plain module-level function taking one pickleable payload dataclass and
returning one pickleable result dataclass.  Each task builds its own
:class:`~repro.obs.Telemetry` (when asked) and returns a
:class:`~repro.parallel.MetricsSnapshot`; the parent merges snapshots in
task order, so parallel runs report the same counters a serial run
would.

Compilation inside a worker goes through the worker's process-global
warm-start cache (:func:`~repro.parallel.default_compile_cache`):
repeated cells or recurring fault-campaign network states stop paying
grounding costs after first sight, and the ``cache.hit`` / ``cache.miss``
counters ride home in the snapshot.
"""

from __future__ import annotations

from contextlib import nullcontext as _noop
from dataclasses import dataclass, field, replace

from ..model import AppSpec, Leveling
from ..network import Network
from ..obs.context import TraceContext
from .envelope import MetricsSnapshot, PlanEnvelope

__all__ = [
    "CellTask",
    "CellResult",
    "run_cell_task",
    "CampaignTask",
    "CampaignResult",
    "run_campaign_task",
    "RepairTask",
    "RepairOutcome",
    "run_repair_task",
    "DomainTask",
    "DomainResult",
    "run_domain_task",
]


# -- Table 2 cells (experiments.harness fan-out) -------------------------------


@dataclass(frozen=True)
class CellTask:
    """One (network, scenario) cell of the paper's evaluation."""

    network: str
    scenario: str
    source_bw: float
    demand: float
    rg_node_budget: int
    with_metrics: bool = False
    use_cache: bool = True
    static_prune: str | None = None
    trace: TraceContext | None = None
    profile: bool = False


@dataclass(frozen=True)
class CellResult:
    """A solved cell: the row (plan stripped), its plan, worker metrics."""

    row: object  # Table2Row with plan=None and plan_names filled
    plan: PlanEnvelope | None
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    profile: bytes = b""
    """Marshal pstats blob of the whole task, when profiling was asked."""


def run_cell_task(task: CellTask) -> CellResult:
    """Solve one Table 2 cell in this worker."""
    from ..experiments.harness import run_cell
    from ..obs import Telemetry, capture_profile
    from .cache import default_compile_cache

    telemetry = Telemetry(context=task.trace) if task.with_metrics else None
    blobs: list[bytes] = []
    with capture_profile(blobs) if task.profile else _noop():
        row = run_cell(
            task.network,
            task.scenario,
            source_bw=task.source_bw,
            demand=task.demand,
            rg_node_budget=task.rg_node_budget,
            telemetry=telemetry,
            compile_cache=default_compile_cache() if task.use_cache else None,
            static_prune=task.static_prune,
        )
    envelope = PlanEnvelope.from_plan(row.plan) if row.plan is not None else None
    row.plan_names = tuple(envelope.actions) if envelope is not None else ()
    row.plan = None  # the full Plan holds the compiled problem; too big to ship
    return CellResult(
        row=row,
        plan=envelope,
        metrics=MetricsSnapshot.from_telemetry(telemetry),
        profile=blobs[0] if blobs else b"",
    )


# -- fault-campaign runs (simulate fan-out) ------------------------------------


@dataclass(frozen=True)
class CampaignTask:
    """One seeded campaign run: instance + campaign spec + seed override."""

    app: AppSpec
    network: Network
    leveling: Leveling
    spec: dict
    seed: int | None = None
    events: int | None = None
    time_limit_s: float | None = None
    include_timings: bool = False
    with_metrics: bool = False
    use_cache: bool = True
    trace: TraceContext | None = None


@dataclass(frozen=True)
class CampaignResult:
    """One campaign run's deterministic record plus worker metrics."""

    seed: int | None
    record: dict
    description: str
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)


def run_campaign_task(task: CampaignTask) -> CampaignResult:
    """Run one fault campaign in this worker."""
    from ..obs import Telemetry
    from ..simulate.campaign import run_campaign_run
    from .cache import default_compile_cache

    telemetry = Telemetry(context=task.trace) if task.with_metrics else None
    result = run_campaign_run(
        task.app,
        task.network,
        task.leveling,
        task.spec,
        seed=task.seed,
        events=task.events,
        time_limit_s=task.time_limit_s,
        telemetry=telemetry,
        compile_cache=default_compile_cache() if task.use_cache else None,
    )
    return CampaignResult(
        seed=task.seed,
        record=result.to_dict(include_timings=task.include_timings),
        description=result.describe(),
        metrics=MetricsSnapshot.from_telemetry(telemetry),
    )


# -- hierarchical domain subproblems (repro.hierarchy fan-out) ------------------


@dataclass(frozen=True)
class DomainTask:
    """One stub domain's concrete subproblem (docs/ALGORITHM.md).

    The payload is the fully synthetic (app, network, leveling) triple
    built by :func:`repro.hierarchy.build_domain_problem` — boundary
    contracts are baked into the sub-app, so the task is a plain flat
    solve and is byte-identical no matter which worker (or how many)
    runs it.  Compilation goes through the worker's process-global
    :class:`~repro.parallel.CompileCache`, keyed by the sub-app /
    sub-network / leveling content fingerprints: warm sweeps over the
    same topology re-ground nothing.
    """

    domain: str
    app: AppSpec
    network: Network
    leveling: Leveling | None
    rg_node_budget: int = 200_000
    time_limit_s: float | None = None
    with_metrics: bool = False
    use_cache: bool = True
    trace: TraceContext | None = None


@dataclass(frozen=True)
class DomainResult:
    """One domain solve: the sub-plan as ground-action names.

    Planning failures travel as data (``solved=False`` + the failure
    type), not as exceptions — the coordinator decides whether to fall
    back; the supervision layer only ever sees worker *crashes*.
    """

    domain: str
    solved: bool
    action_names: tuple[str, ...] = ()
    cost_lb: float = 0.0
    exact_cost: float = 0.0
    failure: str = ""
    compile_source: str = "fresh"
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)


def run_domain_task(task: DomainTask) -> DomainResult:
    """Solve one hierarchical domain subproblem in this worker."""
    from ..obs import Telemetry
    from ..planner import Planner, PlannerConfig, PlanningError
    from .cache import default_compile_cache

    telemetry = Telemetry(context=task.trace) if task.with_metrics else None
    config = PlannerConfig(
        leveling=task.leveling,
        rg_node_budget=task.rg_node_budget,
        time_limit_s=task.time_limit_s,
        telemetry=telemetry,
    )
    planner = Planner(config)
    try:
        if task.use_cache:
            problem = default_compile_cache().compile(
                task.app,
                task.network,
                task.leveling,
                metrics=telemetry.metrics if telemetry is not None else None,
            )
        else:
            problem = planner.compile(task.app, task.network)
        plan = planner.solve(problem=problem)
    except PlanningError as exc:
        return DomainResult(
            domain=task.domain,
            solved=False,
            failure=type(exc).__name__,
            metrics=MetricsSnapshot.from_telemetry(telemetry),
        )
    return DomainResult(
        domain=task.domain,
        solved=True,
        action_names=tuple(plan.action_names()),
        cost_lb=plan.cost_lb,
        exact_cost=plan.exact_cost,
        compile_source=problem.compile_source,
        metrics=MetricsSnapshot.from_telemetry(telemetry),
    )


# -- fleet-repair tasks (controller fan-out) -----------------------------------


@dataclass(frozen=True)
class RepairTask:
    """One fleet member's repair against the current network state.

    ``deployment_names`` is the member's running deployment as ground-
    action names (the serializable identity used by
    :func:`repro.planner.repair_by_names`) — or ``None`` when the member
    is down and needs a from-scratch deployment.
    """

    app: AppSpec
    network: Network
    leveling: Leveling
    deployment_names: tuple[str, ...] | None
    migration_cost_factor: float = 0.5
    rg_node_budget: int = 20_000
    time_limit_s: float | None = None
    use_delta: bool = False
    use_cache: bool = True
    replan_from_scratch: bool = True
    with_metrics: bool = False
    trace: TraceContext | None = None


@dataclass(frozen=True)
class RepairOutcome:
    """One repair's result: the new deployment (as names) and its costs."""

    app: str
    outcome: str
    """``"repaired"`` (prefix kept, delta planned), ``"redeployed"``
    (from-scratch solve), ``"outage"`` (planning failed or replanning
    disabled), or ``"quarantined"`` (the repair task repeatedly killed
    its worker and the supervisor pulled it from circulation)."""
    deployment_names: tuple[str, ...] = ()
    survived: int = 0
    repaired: int = 0
    repair_cost: float = 0.0
    total_cost: float = 0.0
    failure: str = ""
    compile_source: str = "fresh"
    wall_ms: float = 0.0
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)

    @property
    def failed(self) -> bool:
        return self.outcome in ("outage", "quarantined")


def run_repair_task(task: RepairTask) -> RepairOutcome:
    """Repair one fleet member in this worker.

    Compilation goes through the worker's process-global cache; with
    deterministic task→worker sharding the same member lands on the same
    worker every event, so that cache holds the member's *previous*
    network state — exactly what ``use_delta`` patches from.
    """
    from ..obs import Telemetry
    from ..simulate.controller import repair_member
    from .cache import default_compile_cache

    telemetry = Telemetry(context=task.trace) if task.with_metrics else None
    outcome = repair_member(
        task,
        telemetry=telemetry,
        compile_cache=default_compile_cache() if task.use_cache else None,
    )
    return replace(outcome, metrics=MetricsSnapshot.from_telemetry(telemetry))
