"""Stable content fingerprints for planning inputs.

The warm-start compile cache (:mod:`repro.parallel.cache`) keys compiled
problems by *what they were compiled from*: the network topology, the
application specification, and the leveling.  Fingerprints are
blake2b digests of a canonical JSON rendering — formulas are serialized
through their :meth:`~repro.expr.Node.unparse` text, dict iteration is
sorted — so two structurally identical inputs built through different
code paths (or in different worker processes) hash identically, while
any semantic change (a cutpoint, a resource capacity, a cost formula)
changes the key.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..model import AppSpec, Leveling
from ..network import Network, network_to_dict

__all__ = [
    "app_fingerprint",
    "network_fingerprint",
    "leveling_fingerprint",
    "digest",
]

_DIGEST_SIZE = 16  # 128-bit digests: collision-safe for cache keys


def digest(payload: Any) -> str:
    """blake2b hexdigest of a JSON-canonicalized payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode(), digest_size=_DIGEST_SIZE).hexdigest()


def network_fingerprint(network: Network) -> str:
    """Fingerprint of the full topology (nodes, links, resources, labels)."""
    return digest(network_to_dict(network))


def _formulas(nodes) -> list[str]:
    return [n.unparse() for n in nodes]


def app_fingerprint(app: AppSpec) -> str:
    """Fingerprint of everything compilation reads from the app spec."""
    payload = {
        "name": app.name,
        "resources": [
            {
                "name": r.name,
                "scope": r.scope.value,
                "degradable": r.degradable,
                "upgradable": r.upgradable,
                "consumable": r.consumable,
            }
            for r in app.resources
        ],
        "interfaces": {
            name: {
                "properties": [
                    {
                        "name": p.name,
                        "degradable": p.degradable,
                        "upgradable": p.upgradable,
                        "default_levels": list(p.default_levels.cutpoints)
                        if p.default_levels is not None
                        else None,
                    }
                    for p in iface.properties
                ],
                "cross_conditions": _formulas(iface.cross_conditions),
                "cross_effects": _formulas(iface.cross_effects),
                "cross_cost": iface.cross_cost.unparse()
                if iface.cross_cost is not None
                else None,
            }
            for name, iface in sorted(app.interfaces.items())
        },
        "components": {
            name: {
                "requires": list(comp.requires),
                "implements": list(comp.implements),
                "conditions": _formulas(comp.conditions),
                "effects": _formulas(comp.effects),
                "cost": comp.cost.unparse() if comp.cost is not None else None,
            }
            for name, comp in sorted(app.components.items())
        },
        "initial": [[p.component, p.node] for p in app.initial_placements],
        "goals": [[p.component, p.node] for p in app.goal_placements],
        "pinned": dict(sorted(app.pinned.items())),
    }
    return digest(payload)


def leveling_fingerprint(leveling: Leveling | None) -> str:
    """Fingerprint of a leveling (``None`` hashes distinctly).

    The name participates: it is carried through to compiled problems and
    plan records, so two levelings with equal cutpoints but different
    names must not share a cache entry (records would then name the wrong
    scenario).
    """
    if leveling is None:
        return digest(None)
    payload = {
        "name": leveling.name,
        "specs": {
            var: list(spec.cutpoints)
            for var, spec in sorted(leveling.specs.items())
        },
    }
    return digest(payload)
