"""Stable content fingerprints for planning inputs.

The warm-start compile cache (:mod:`repro.parallel.cache`) keys compiled
problems by *what they were compiled from*: the network topology, the
application specification, and the leveling.  Fingerprints are
blake2b digests of a canonical JSON rendering — formulas are serialized
through their :meth:`~repro.expr.Node.unparse` text, dict iteration is
sorted — so two structurally identical inputs built through different
code paths (or in different worker processes) hash identically, while
any semantic change (a cutpoint, a resource capacity, a cost formula)
changes the key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..model import AppSpec, Leveling
from ..network import Network, network_to_dict

__all__ = [
    "app_fingerprint",
    "network_fingerprint",
    "leveling_fingerprint",
    "digest",
    "NetworkDelta",
    "network_delta",
]

_DIGEST_SIZE = 16  # 128-bit digests: collision-safe for cache keys


def digest(payload: Any) -> str:
    """blake2b hexdigest of a JSON-canonicalized payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode(), digest_size=_DIGEST_SIZE).hexdigest()


def network_fingerprint(network: Network) -> str:
    """Fingerprint of the full topology (nodes, links, resources, labels)."""
    return digest(network_to_dict(network))


def _formulas(nodes) -> list[str]:
    return [n.unparse() for n in nodes]


def app_fingerprint(app: AppSpec) -> str:
    """Fingerprint of everything compilation reads from the app spec."""
    payload = {
        "name": app.name,
        "resources": [
            {
                "name": r.name,
                "scope": r.scope.value,
                "degradable": r.degradable,
                "upgradable": r.upgradable,
                "consumable": r.consumable,
            }
            for r in app.resources
        ],
        "interfaces": {
            name: {
                "properties": [
                    {
                        "name": p.name,
                        "degradable": p.degradable,
                        "upgradable": p.upgradable,
                        "default_levels": list(p.default_levels.cutpoints)
                        if p.default_levels is not None
                        else None,
                    }
                    for p in iface.properties
                ],
                "cross_conditions": _formulas(iface.cross_conditions),
                "cross_effects": _formulas(iface.cross_effects),
                "cross_cost": iface.cross_cost.unparse()
                if iface.cross_cost is not None
                else None,
            }
            for name, iface in sorted(app.interfaces.items())
        },
        "components": {
            name: {
                "requires": list(comp.requires),
                "implements": list(comp.implements),
                "conditions": _formulas(comp.conditions),
                "effects": _formulas(comp.effects),
                "cost": comp.cost.unparse() if comp.cost is not None else None,
            }
            for name, comp in sorted(app.components.items())
        },
        "initial": [[p.component, p.node] for p in app.initial_placements],
        "goals": [[p.component, p.node] for p in app.goal_placements],
        "pinned": dict(sorted(app.pinned.items())),
    }
    return digest(payload)


@dataclass(frozen=True)
class NetworkDelta:
    """A structured diff between two networks over the *same* node set.

    The delta-aware compile (:mod:`repro.compile.delta`) patches only
    the ground actions touching changed elements, so the diff records
    exactly the patch-relevant facts: which nodes changed a resource
    value, which links changed one, and which links appeared or
    disappeared.  Changes the patcher cannot express — a different node
    set, label or software edits (they gate where components may ground
    at all) — mark the delta unpatchable with a reason.
    """

    changed_nodes: tuple[str, ...] = ()
    changed_links: tuple[tuple[str, str], ...] = ()
    added_links: tuple[tuple[str, str], ...] = ()
    removed_links: tuple[tuple[str, str], ...] = ()
    patchable: bool = True
    reason: str = field(default="", compare=False)

    def is_empty(self) -> bool:
        """No difference at all (the networks fingerprint identically)."""
        return self.patchable and not (
            self.changed_nodes
            or self.changed_links
            or self.added_links
            or self.removed_links
        )

    def touched_links(self) -> frozenset[tuple[str, str]]:
        """Canonical link keys whose cross actions need re-grounding."""
        return frozenset(self.changed_links) | frozenset(self.added_links)

    def describe(self) -> str:
        if not self.patchable:
            return f"unpatchable: {self.reason}"
        parts = []
        if self.changed_nodes:
            parts.append(f"{len(self.changed_nodes)} node(s) changed")
        if self.changed_links:
            parts.append(f"{len(self.changed_links)} link(s) changed")
        if self.added_links:
            parts.append(f"{len(self.added_links)} link(s) added")
        if self.removed_links:
            parts.append(f"{len(self.removed_links)} link(s) removed")
        return ", ".join(parts) if parts else "no change"


def network_delta(old: Network, new: Network) -> NetworkDelta:
    """Diff two networks into a :class:`NetworkDelta`.

    Patchable deltas cover exactly what fault-campaign events produce:
    node/link resource-value changes, link failures, and link
    recoveries.  Anything else (node add/remove, label or software
    changes) yields ``patchable=False`` and the caller falls back to a
    full compilation.
    """

    def _unpatchable(reason: str) -> NetworkDelta:
        return NetworkDelta(patchable=False, reason=reason)

    old_nodes, new_nodes = old.nodes, new.nodes
    if old_nodes.keys() != new_nodes.keys():
        return _unpatchable("node set changed")
    changed_nodes = []
    for node_id in new_nodes:
        o, n = old_nodes[node_id], new_nodes[node_id]
        if o.labels != n.labels or o.software != n.software:
            return _unpatchable(f"node {node_id} labels/software changed")
        if o.resources != n.resources:
            changed_nodes.append(node_id)

    old_links, new_links = old.links, new.links
    changed_links, added, removed = [], [], []
    for key in new_links:
        if key not in old_links:
            added.append(key)
            continue
        o, n = old_links[key], new_links[key]
        if o.labels != n.labels:
            return _unpatchable(f"link {key[0]}~{key[1]} labels changed")
        if o.resources != n.resources:
            changed_links.append(key)
    for key in old_links:
        if key not in new_links:
            removed.append(key)

    return NetworkDelta(
        changed_nodes=tuple(sorted(changed_nodes)),
        changed_links=tuple(sorted(changed_links)),
        added_links=tuple(sorted(added)),
        removed_links=tuple(sorted(removed)),
    )


def leveling_fingerprint(leveling: Leveling | None) -> str:
    """Fingerprint of a leveling (``None`` hashes distinctly).

    The name participates: it is carried through to compiled problems and
    plan records, so two levelings with equal cutpoints but different
    names must not share a cache entry (records would then name the wrong
    scenario).
    """
    if leveling is None:
        return digest(None)
    payload = {
        "name": leveling.name,
        "specs": {
            var: list(spec.cutpoints)
            for var, spec in sorted(leveling.specs.items())
        },
    }
    return digest(payload)
