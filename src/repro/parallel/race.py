"""Portfolio racing for the graceful-degradation ladder.

Sequential :func:`~repro.planner.solve_robust` walks the ladder rung by
rung, slicing the time budget between attempts (half to the full solve,
most of the rest to the coarsened retry, the remainder to greedy).  With
``workers > 1`` the rungs *race* instead: each rung runs in its own
spawn-started process with the **whole** remaining budget, and the walk
returns as soon as the best rung that can still win has resolved.

Acceptance policy (this is what keeps racing a pure wall-clock
optimization): a finished rung's plan is accepted only once every
higher-priority rung has failed — a greedy plan arriving first never
preempts a full solve that is still running.  The payoff is that losing
rungs stop costing wall clock: the ladder's worst case drops from the
*sum* of the rung budgets to the *maximum* of them, and a full solve
that would have been cut short by its sequential half-budget slice gets
the entire window (so racing may legitimately return a *better* rung
than the sequential walk — the outcome records which).

Failures keep ladder semantics: :class:`~repro.planner.Unsolvable` and
:class:`~repro.planner.ResourceInfeasible` from any rung abort the whole
race (no rung below can fix either), and rungs still running when the
winner is accepted are terminated and recorded as ``cancelled``.  A rung
whose process dies *silently* (OOM kill, stray signal) is relaunched
once with the remaining budget before being recorded as ``crashed`` —
the racing mode's slice of the supervision story (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, replace

from ..model import AppSpec, Leveling
from ..network import Network
from ..obs.context import TraceContext
from .envelope import MetricsSnapshot, PlanEnvelope
from .pool import START_METHOD

__all__ = ["RungJob", "RungOutcome", "race_rungs"]

_POLL_S = 0.02
_GRACE_S = 2.0  # extra wall clock allowed past the budget for self-deadlines


@dataclass(frozen=True)
class RungJob:
    """One racing rung: its name, leveling, and planner configuration."""

    rung: str
    app: AppSpec
    network: Network
    leveling: Leveling | None
    config: object  # PlannerConfig with telemetry stripped
    with_metrics: bool = False
    trace: TraceContext | None = None


@dataclass
class RungOutcome:
    """How one racing rung ended."""

    rung: str
    status: str  # 'ok' | 'error' | 'cancelled' | 'crashed'
    plan: PlanEnvelope | None = None
    error_type: str = ""
    detail: str = ""
    elapsed_s: float = 0.0
    metrics: MetricsSnapshot | None = None


def _race_child(job: RungJob, queue) -> None:
    """Run one rung to completion and report through the queue."""
    from ..obs import Telemetry
    from ..planner.errors import ResourceInfeasible, SearchBudgetExceeded, Unsolvable
    from ..planner.planner import Planner

    telemetry = Telemetry(context=job.trace) if job.with_metrics else None
    config = replace(job.config, leveling=job.leveling, telemetry=telemetry)
    t0 = time.perf_counter()
    try:
        plan = Planner(config).solve(job.app, job.network)
    except (SearchBudgetExceeded, Unsolvable, ResourceInfeasible) as exc:
        queue.put(
            RungOutcome(
                rung=job.rung,
                status="error",
                error_type=type(exc).__name__,
                detail=str(exc).splitlines()[0],
                elapsed_s=time.perf_counter() - t0,
                metrics=MetricsSnapshot.from_telemetry(telemetry),
            )
        )
        return
    queue.put(
        RungOutcome(
            rung=job.rung,
            status="ok",
            plan=PlanEnvelope.from_plan(plan),
            detail=f"{len(plan.actions)} actions, cost lower bound {plan.cost_lb:g}"
            + (" (incumbent)" if plan.incumbent else ""),
            elapsed_s=time.perf_counter() - t0,
            metrics=MetricsSnapshot.from_telemetry(telemetry),
        )
    )


def race_rungs(
    jobs: list[RungJob],
    workers: int,
    time_limit_s: float | None = None,
) -> tuple[RungOutcome | None, list[RungOutcome]]:
    """Race ladder rungs across processes; return (winner, all outcomes).

    ``jobs`` must be in priority order (best rung first).  At most
    ``workers`` processes run at once; pending rungs launch as slots
    free up.  The winner is the highest-priority rung that succeeded,
    accepted as soon as every better rung has failed.  Outcomes are
    returned in priority order and include cancelled/unstarted rungs.

    The race itself never raises planner errors — a rung that fails with
    ``Unsolvable``/``ResourceInfeasible`` aborts the race (ladder
    semantics: no lower rung can fix those), which surfaces as
    ``winner=None`` with the failing rung's outcome carrying the error.
    """
    ctx = mp.get_context(START_METHOD)
    queue = ctx.SimpleQueue()
    outcomes: dict[str, RungOutcome] = {}
    procs: dict[str, mp.process.BaseProcess] = {}
    pending = list(jobs)
    jobs_by_rung = {job.rung: job for job in jobs}
    relaunched: set[str] = set()
    deadline = (
        time.monotonic() + time_limit_s + _GRACE_S if time_limit_s is not None else None
    )
    priority = [job.rung for job in jobs]

    def launch_available() -> None:
        while pending and len(procs) < max(workers, 1):
            job = pending.pop(0)
            proc = ctx.Process(
                target=_race_child, args=(job, queue), name=f"repro-race-{job.rung}"
            )
            proc.start()
            procs[job.rung] = proc

    def resolved(rung: str) -> bool:
        return rung in outcomes

    def decide() -> RungOutcome | None:
        """The winner, if one can be accepted already."""
        for rung in priority:
            if not resolved(rung):
                return None  # a better rung is still running/pending
            outcome = outcomes[rung]
            if outcome.status == "ok":
                return outcome
            # failed → the next rung down may win
        return None

    def abort(reason: str) -> None:
        for rung, proc in procs.items():
            if proc.is_alive():
                proc.terminate()
            proc.join()
            if not resolved(rung):
                outcomes[rung] = RungOutcome(rung=rung, status="cancelled", detail=reason)
        procs.clear()
        for job in pending:
            outcomes[job.rung] = RungOutcome(
                rung=job.rung, status="cancelled", detail=reason
            )
        pending.clear()

    launch_available()
    winner: RungOutcome | None = None
    fatal = False
    while procs or pending:
        if not queue.empty():
            outcome: RungOutcome = queue.get()
            outcomes[outcome.rung] = outcome
            proc = procs.pop(outcome.rung, None)
            if proc is not None:
                proc.join()
            if outcome.status == "error" and outcome.error_type in (
                "Unsolvable",
                "ResourceInfeasible",
            ):
                fatal = True
                abort(f"aborted: {outcome.rung} is {outcome.error_type}")
                break
            winner = decide()
            if winner is not None:
                abort(f"lost race to {winner.rung}")
                break
            launch_available()
            continue
        # Reap silent crashes (a terminated/killed child posts nothing).
        crashed = [r for r, p in procs.items() if not p.is_alive() and queue.empty()]
        for rung in crashed:
            proc = procs.pop(rung)
            proc.join()
            if resolved(rung):
                continue
            if rung not in relaunched:
                # One supervised relaunch per rung: a transient death
                # (OOM kill, stray signal) should not forfeit the race.
                relaunched.add(rung)
                pending.insert(0, jobs_by_rung[rung])
                continue
            outcomes[rung] = RungOutcome(
                rung=rung,
                status="crashed",
                error_type="WorkerCrashed",
                detail=(
                    f"rung process exited with code {proc.exitcode} "
                    "(crashed again after one relaunch)"
                ),
            )
        if crashed:
            launch_available()
            continue
        if deadline is not None and time.monotonic() > deadline:
            abort("race deadline expired")
            break
        time.sleep(_POLL_S)

    if winner is None and not fatal:
        winner = decide() or next(
            (
                outcomes[r]
                for r in priority
                if r in outcomes and outcomes[r].status == "ok"
            ),
            None,
        )
    ordered = [
        outcomes.get(rung, RungOutcome(rung=rung, status="cancelled", detail="not run"))
        for rung in priority
    ]
    return winner, ordered
