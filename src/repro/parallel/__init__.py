"""Process-parallel execution (docs/PERFORMANCE.md, "Parallel execution").

Spawn-safe building blocks for running planner work across processes:

* :class:`WorkerPool` — persistent spawn-started workers with
  deterministic task→worker sharding and loud failures
  (:class:`TaskFailed`, :class:`WorkerCrashed`).
* :class:`Supervisor` (:mod:`repro.parallel.supervisor`) — the
  self-healing layer on the same workers: death detection, respawn,
  retry with a budget, poison quarantine
  (:class:`TaskQuarantined`), and in-process fallback, reported via
  :class:`SupervisionReport` (docs/ROBUSTNESS.md).
* Envelopes (:mod:`repro.parallel.envelope`) — the pickleable contract
  between parent and workers; :func:`check_picklable` names the exact
  offending field when something unpicklable sneaks in.
* :class:`CompileCache` (:mod:`repro.parallel.cache`) — warm-start
  compile cache keyed by content fingerprints
  (:mod:`repro.parallel.fingerprint`), one per worker process.
* Worker task functions (:mod:`repro.parallel.workers`) — the
  module-level entry points the pool actually runs (Table-2 cells,
  fault-campaign runs).
* Portfolio racing (:mod:`repro.parallel.race`) — the process-parallel
  mode of :func:`repro.planner.solve_robust`.

Consumers: ``run_table2(workers=N)``, ``run_campaign(workers=N)``,
``solve_robust(workers=N)``, and the ``--workers`` CLI flags on
``repro bench`` / ``repro simulate`` / ``repro plan --fallback``.
"""

from .cache import CompileCache, default_compile_cache
from .envelope import (
    ENVELOPE_TYPES,
    EnvelopeError,
    MetricsSnapshot,
    PlanEnvelope,
    ProblemEnvelope,
    check_picklable,
)
from .fingerprint import (
    NetworkDelta,
    app_fingerprint,
    digest,
    leveling_fingerprint,
    network_delta,
    network_fingerprint,
)
from .pool import START_METHOD, TaskFailed, WorkerCrashed, WorkerPool, resolve_workers
from .race import RungJob, RungOutcome, race_rungs
from .supervisor import (
    SupervisionReport,
    SupervisionStats,
    Supervisor,
    SupervisorConfig,
    TaskQuarantined,
)
from .workers import (
    CampaignResult,
    CampaignTask,
    CellResult,
    CellTask,
    DomainResult,
    DomainTask,
    RepairOutcome,
    RepairTask,
    run_campaign_task,
    run_cell_task,
    run_domain_task,
    run_repair_task,
)

__all__ = [
    "START_METHOD",
    "WorkerPool",
    "WorkerCrashed",
    "TaskFailed",
    "resolve_workers",
    "Supervisor",
    "SupervisorConfig",
    "SupervisionReport",
    "SupervisionStats",
    "TaskQuarantined",
    "CompileCache",
    "default_compile_cache",
    "EnvelopeError",
    "check_picklable",
    "ProblemEnvelope",
    "PlanEnvelope",
    "MetricsSnapshot",
    "ENVELOPE_TYPES",
    "digest",
    "app_fingerprint",
    "network_fingerprint",
    "leveling_fingerprint",
    "NetworkDelta",
    "network_delta",
    "RungJob",
    "RungOutcome",
    "race_rungs",
    "CellTask",
    "CellResult",
    "run_cell_task",
    "CampaignTask",
    "CampaignResult",
    "run_campaign_task",
    "RepairTask",
    "RepairOutcome",
    "run_repair_task",
    "DomainTask",
    "DomainResult",
    "run_domain_task",
]
