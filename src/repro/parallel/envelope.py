"""Pickleable task/result envelopes for the process pool.

Worker processes receive *inputs* (specs, networks, levelings, planner
configuration) and return *summaries* (plans by action name, stats
fields, metrics snapshots) — never live planner state.  The envelope
types here define that contract explicitly:

* :class:`ProblemEnvelope` — everything needed to compile a problem in a
  worker (the compiled form itself is deliberately not shipped: its
  pickle is large and rebuilding replay closures on load costs more than
  compiling against the worker's warm cache).
* :class:`PlanEnvelope` — a finished plan flattened to action names,
  costs, stats, and stop metadata; :meth:`PlanEnvelope.restore` rebinds
  it to a compiled problem in the parent.
* :class:`MetricsSnapshot` — a worker registry's
  :meth:`~repro.obs.MetricsRegistry.snapshot`, merged back into the
  parent registry via :meth:`~repro.obs.MetricsRegistry.merge_snapshot`.

Every envelope passes :func:`check_picklable` at construction in debug
contexts and in the round-trip test-suite; on failure the offending
attribute path is named (``EnvelopeError: ... at plan.stats``), so an
accidentally-introduced closure or open file dies loudly at the
boundary instead of as an opaque ``PicklingError`` inside the pool.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, fields, is_dataclass

from ..compile import CompiledProblem
from ..model import AppSpec, Leveling
from ..network import Network
from ..planner import Plan, PlannerStats

__all__ = [
    "EnvelopeError",
    "check_picklable",
    "ProblemEnvelope",
    "PlanEnvelope",
    "MetricsSnapshot",
]


class EnvelopeError(TypeError):
    """An envelope (or one of its fields) cannot cross a process boundary."""


def _find_unpicklable(obj, path: str, depth: int = 6) -> str | None:
    """Locate the deepest named attribute/key that fails to pickle."""
    try:
        pickle.dumps(obj)
        return None
    except Exception:
        pass
    if depth <= 0:
        return path
    children: list[tuple[str, object]] = []
    if is_dataclass(obj) and not isinstance(obj, type):
        children = [(f"{path}.{f.name}", getattr(obj, f.name)) for f in fields(obj)]
    elif isinstance(obj, dict):
        children = [(f"{path}[{k!r}]", v) for k, v in obj.items()]
    elif isinstance(obj, (list, tuple, set, frozenset)):
        children = [(f"{path}[{i}]", v) for i, v in enumerate(obj)]
    elif hasattr(obj, "__dict__"):
        children = [(f"{path}.{k}", v) for k, v in vars(obj).items()]
    for child_path, child in children:
        found = _find_unpicklable(child, child_path, depth - 1)
        if found is not None:
            return found
    return path


def check_picklable(obj, label: str = "envelope") -> None:
    """Raise :class:`EnvelopeError` naming the offending field, or pass.

    The error message pinpoints the deepest non-picklable attribute path
    (``plan.stats.<field>``) plus the original pickler complaint.
    """
    try:
        pickle.dumps(obj)
        return
    except Exception as exc:
        where = _find_unpicklable(obj, label)
        raise EnvelopeError(
            f"{label} is not picklable at {where}: {type(exc).__name__}: {exc}"
        ) from exc


@dataclass(frozen=True)
class ProblemEnvelope:
    """Inputs of one compilation, ready to ship to a worker."""

    app: AppSpec
    network: Network
    leveling: Leveling | None = None
    bound_overrides: dict | None = None
    strict: bool = False

    @staticmethod
    def from_problem(problem: CompiledProblem) -> "ProblemEnvelope":
        return ProblemEnvelope(
            app=problem.app, network=problem.network, leveling=problem.leveling
        )

    def compile(self, cache=None, metrics=None) -> CompiledProblem:
        """Compile in the receiving process (through its warm cache)."""
        if cache is None:
            from .cache import default_compile_cache

            cache = default_compile_cache()
        return cache.compile(
            self.app,
            self.network,
            self.leveling,
            self.bound_overrides,
            self.strict,
            metrics=metrics,
        )

    def validate(self) -> None:
        check_picklable(self, "problem envelope")


@dataclass(frozen=True)
class PlanEnvelope:
    """A finished plan flattened for the trip home."""

    actions: tuple[str, ...]
    cost_lb: float
    exact_cost: float
    stats: PlannerStats
    incumbent: bool = False
    stop_reason: str = "optimal"
    app: str = ""
    network: str = ""
    leveling: str = ""

    @staticmethod
    def from_plan(plan: Plan) -> "PlanEnvelope":
        return PlanEnvelope(
            actions=tuple(plan.action_names()),
            cost_lb=plan.cost_lb,
            exact_cost=plan.exact_cost,
            stats=plan.stats,
            incumbent=plan.incumbent,
            stop_reason=plan.stop_reason,
            app=plan.problem.app.name,
            network=plan.problem.network.name,
            leveling=plan.problem.leveling.name,
        )

    def restore(self, problem: CompiledProblem) -> Plan:
        """Rebind to a compiled problem (same app/network/leveling).

        Raises
        ------
        KeyError
            When an action name does not exist in ``problem`` — the
            instance differs from the one the worker solved.
        """
        plan = Plan.from_dict(
            {
                "format": 1,
                "actions": list(self.actions),
                "cost_lower_bound": self.cost_lb,
                "incumbent": self.incumbent,
                "stop_reason": self.stop_reason,
            },
            problem,
        )
        plan.stats = self.stats
        return plan

    def validate(self) -> None:
        check_picklable(self, "plan envelope")


@dataclass(frozen=True)
class MetricsSnapshot:
    """A worker telemetry, flattened for the trip home.

    ``records`` is the registry's JSON snapshot; ``spans`` carries the
    worker's recorded spans as plain dicts (:func:`repro.obs.spans_payload`)
    together with the provenance the coordinator needs to stitch them
    into its own timeline (docs/OBSERVABILITY.md, "Distributed
    tracing"): the worker pid (the trace lane), the trace context the
    task ran under, and the paired epoch/perf clock anchors that map
    worker ``perf_counter`` timestamps onto the coordinator's clock.
    """

    records: tuple = ()
    spans: tuple = ()
    pid: int = 0
    trace_id: str = ""
    parent_span_id: int | None = None
    epoch_anchor_s: float = 0.0
    perf_anchor_s: float = 0.0

    @staticmethod
    def from_telemetry(telemetry) -> "MetricsSnapshot":
        if telemetry is None:
            return MetricsSnapshot()
        import os

        from ..obs.context import spans_payload

        context = getattr(telemetry, "context", None)
        return MetricsSnapshot(
            records=tuple(telemetry.metrics.snapshot()),
            spans=spans_payload(telemetry.spans),
            pid=os.getpid(),
            trace_id=getattr(telemetry, "trace_id", ""),
            parent_span_id=context.parent_span_id if context is not None else None,
            epoch_anchor_s=getattr(telemetry, "epoch_anchor_s", 0.0),
            perf_anchor_s=getattr(telemetry, "perf_anchor_s", 0.0),
        )

    @staticmethod
    def from_registry(metrics) -> "MetricsSnapshot":
        if metrics is None:
            return MetricsSnapshot()
        return MetricsSnapshot(records=tuple(metrics.snapshot()))

    def merge_into(self, metrics) -> None:
        """Accumulate into a parent registry (see ``merge_snapshot``)."""
        if metrics is not None and self.records:
            metrics.merge_snapshot(list(self.records))

    def validate(self) -> None:
        check_picklable(self, "metrics snapshot")


# Re-exported for test parametrization convenience.
ENVELOPE_TYPES = (ProblemEnvelope, PlanEnvelope, MetricsSnapshot)
__all__.append("ENVELOPE_TYPES")
