"""Self-healing worker supervision (docs/ROBUSTNESS.md, "Supervised execution").

:class:`~repro.parallel.WorkerPool` is deliberately *loud*: a worker
that dies mid-shard aborts the whole map with
:class:`~repro.parallel.WorkerCrashed`, losing every sibling task's
work.  That is the right contract for a benchmark harness and exactly
the wrong one for long campaigns and controller runs, where ``--workers
4`` must never be *less* reliable than ``--workers 1``.
:class:`Supervisor` is the self-healing layer on top of the same worker
processes:

* **Death detection** — workers run the eager ``run_each`` protocol
  (each task's result is sent the moment it finishes), and the
  coordinator waits on pipes *and* process sentinels, so a SIGKILL, OOM,
  or segfault is detected immediately and the coordinator knows exactly
  which tasks the dead worker still owed: the in-flight task (head of
  its queue) and its unstarted tail.
* **Kill-and-respawn on stall** — with heartbeats flowing, a worker
  silent past the flag threshold (``STALL_INTERVALS`` periods) emits
  synthesized ``heartbeat_missed`` frames, and one silent past the
  *kill* budget (``SupervisorConfig.stall_kill_intervals`` periods) is
  SIGKILLed and treated as a death — escalation, not just labelling.
  Freshly (re)spawned workers get a startup grace: a worker is never
  killed before it has sent its first message (heartbeats are not
  flowing yet while the interpreter is still importing).
* **Retry with a budget** — the dead worker's tasks requeue onto the
  respawned worker (or survivors, when the respawn budget is spent).
  The in-flight task is charged one attempt under the
  :class:`~repro.simulate.RetryPolicy` shape (attempt budget plus
  deterministic exponential backoff, *accounted not slept*, exactly as
  the fault injector does).
* **Poison quarantine** — a task that kills
  ``SupervisorConfig.poison_kills`` consecutive workers is quarantined:
  recorded as a structured :class:`TaskQuarantined` outcome in the
  :class:`SupervisionReport` instead of aborting the run.
* **Graceful degradation** — when respawn fails or its budget is
  exhausted and no worker survives, remaining tasks run in-process,
  serially, in the coordinator (tasks that already killed a worker are
  quarantined rather than risked in-process).

Recoveries are observable: ``pool.worker.respawned``,
``pool.task.retried``, ``pool.task.quarantined``, and
``pool.worker.stall_killed`` counters land in the supervising
telemetry's registry, respawn/retry/quarantine events surface as frames
in the ``--live`` stream, and each respawn is recorded as a
``supervise.respawn`` span in the coordinator trace.

Determinism: results are keyed by task index and reassembled in payload
order, retries re-run the same pure task function on the same payload,
and backoff is accounted rather than slept — so a supervised run that
survives worker deaths returns **byte-identical** results to an
undisturbed serial run (``tests/parallel/test_determinism.py`` kills a
worker mid-campaign and diffs).

Fault injection for tests and CI: ``run(..., inject_kill={k})`` makes
the worker assigned task ``k`` SIGKILL *itself* immediately before
running it, once — the requeued attempt runs clean.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Sequence

from .pool import STALL_INTERVALS, TaskFailed, _run_one, _synth_frame, _worker_main

__all__ = [
    "Supervisor",
    "SupervisorConfig",
    "SupervisionReport",
    "SupervisionStats",
    "TaskQuarantined",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the supervision layer (defaults are production-safe)."""

    retry: object | None = None
    """Attempt budget + deterministic backoff for crash-requeued tasks;
    any object with ``max_attempts`` and ``backoff_s(attempt)`` works.
    ``None`` means :class:`repro.simulate.RetryPolicy`'s defaults."""

    poison_kills: int = 2
    """Consecutive worker deaths attributed to one task before it is
    quarantined as poison instead of requeued."""

    max_respawns: int = 8
    """Total worker respawns across this supervisor's lifetime; past the
    budget, tasks requeue onto survivors (or run in-process)."""

    stall_kill_intervals: int = 16
    """Heartbeat periods of silence before a streaming worker is
    SIGKILLed and respawned (the flag threshold stays
    ``STALL_INTERVALS``).  Only active while heartbeats flow."""

    heartbeat_interval_s: float | None = None
    """Force worker heartbeats at this period even without a live frame
    consumer, enabling stall escalation on quiet runs.  ``None`` keeps
    the pool contract: no frames unless a stream is attached."""


@dataclass(frozen=True)
class TaskQuarantined:
    """A structured record of one task pulled from circulation."""

    index: int
    label: str
    attempts: int
    workers_killed: int
    reason: str

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "attempts": self.attempts,
            "workers_killed": self.workers_killed,
            "reason": self.reason,
        }


@dataclass
class SupervisionStats:
    """What the supervisor had to do to finish one run."""

    respawns: int = 0
    retries: int = 0
    quarantined: int = 0
    stall_kills: int = 0
    inprocess: int = 0
    backoff_s: float = 0.0
    """Simulated (accounted, never slept) retry backoff, for parity with
    the fault injector's accounting."""


@dataclass
class SupervisionReport:
    """The outcome of one supervised run.

    ``values[i]`` is task ``i``'s result, or ``None`` where the task
    failed or was quarantined (look it up in ``failures`` /
    ``quarantined``).
    """

    values: list
    failures: dict[int, tuple[str, str]] = field(default_factory=dict)
    quarantined: list[TaskQuarantined] = field(default_factory=list)
    stats: SupervisionStats = field(default_factory=SupervisionStats)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.quarantined

    def raise_on_failure(self) -> list:
        """``values`` if everything succeeded, else :class:`TaskFailed`.

        Quarantined tasks surface as failures here too — strict callers
        (the Table-2 sweep, benchmarks) want the loud contract; graceful
        callers (campaigns, the controller) read the report directly.
        """
        failures = dict(self.failures)
        for q in self.quarantined:
            failures.setdefault(q.index, (f"quarantined: {q.reason}", ""))
        if failures:
            first = min(failures)
            message, remote_tb = failures[first]
            raise TaskFailed(first, message, remote_tb, failures=failures)
        return self.values


class _Slot:
    """One supervised worker slot (respawnable in place)."""

    __slots__ = (
        "proc", "conn", "dead", "queued", "last_seen", "stalled", "stall_since", "spoken",
    )

    def __init__(self):
        self.proc = None
        self.conn = None
        self.dead = False  # respawn budget spent; never revived
        self.queued: list[int] = []  # unreported task indices, run order
        self.last_seen = 0.0
        self.stalled = False
        self.stall_since = 0.0
        self.spoken = False  # sent any message since (re)spawn


class Supervisor:
    """Respawning, retrying, quarantining wrapper around worker processes.

    Drop-in superset of :class:`~repro.parallel.WorkerPool`: ``map``
    keeps the strict raise-on-failure contract (after recovery has been
    attempted), ``run`` returns the full :class:`SupervisionReport`.
    Workers persist across calls like the pool's, and tasks shard
    deterministically (task ``i`` starts on worker ``i % workers``), so
    warm per-worker compile caches behave identically — supervision only
    changes what happens when a worker dies.
    """

    def __init__(
        self,
        workers: int,
        config: SupervisorConfig | None = None,
        telemetry=None,
        metrics=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        import multiprocessing as mp

        from .pool import START_METHOD

        self.config = config or SupervisorConfig()
        retry = self.config.retry
        if retry is None:
            from ..simulate.faults import RetryPolicy

            retry = RetryPolicy()
        self._retry = retry
        self._telemetry = telemetry
        self._metrics = metrics if metrics is not None else (
            telemetry.metrics if telemetry is not None else None
        )
        self._ctx = mp.get_context(START_METHOD)
        self._slots = [_Slot() for _ in range(workers)]
        self._respawns_used = 0
        self._closed = False
        for slot_id in range(workers):
            self._spawn(slot_id)

    # -- worker lifecycle --------------------------------------------------------

    def _spawn(self, slot_id: int) -> None:
        slot = self._slots[slot_id]
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-worker-{slot_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        slot.proc = proc
        slot.conn = parent_conn
        slot.dead = False
        slot.stalled = False
        slot.spoken = False
        slot.last_seen = time.monotonic()

    @property
    def workers(self) -> int:
        return len(self._slots)

    @property
    def pids(self) -> list[int]:
        """Current worker pids, in slot order (0 for dead slots)."""
        return [
            (slot.proc.pid or 0) if slot.proc is not None else 0
            for slot in self._slots
        ]

    def live_slots(self) -> list[int]:
        return [i for i, slot in enumerate(self._slots) if not slot.dead]

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop all workers (idempotent)."""
        self._closed = True
        for slot in self._slots:
            if slot.conn is not None:
                try:
                    slot.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for slot in self._slots:
            if slot.proc is not None:
                slot.proc.join(timeout=5)
                if slot.proc.is_alive():  # pragma: no cover - stuck worker
                    slot.proc.terminate()
                    slot.proc.join(timeout=5)
                slot.proc = None
            if slot.conn is not None:
                slot.conn.close()
                slot.conn = None
            slot.dead = True

    # -- the pool-compatible strict surface ---------------------------------------

    def map(
        self,
        fn: Callable,
        payloads: Sequence,
        on_frame: Callable[[int, dict], None] | None = None,
        stream_interval_s: float | None = None,
    ) -> list:
        """Supervised ``WorkerPool.map``: recover first, raise only if a
        task (not a worker) is beyond saving."""
        return self.run(
            fn, payloads, on_frame=on_frame, stream_interval_s=stream_interval_s
        ).raise_on_failure()

    # -- the supervised run --------------------------------------------------------

    def run(
        self,
        fn: Callable,
        payloads: Sequence,
        on_frame: Callable[[int, dict], None] | None = None,
        stream_interval_s: float | None = None,
        on_result: Callable[[int, object], None] | None = None,
        inject_kill: Sequence[int] = (),
    ) -> SupervisionReport:
        """Run ``fn`` over ``payloads`` under supervision.

        ``on_result(index, value)`` fires as each task *completes* (in
        completion order — checkpoint journals use it to persist results
        crash-safely as they land).  ``inject_kill`` lists task indices
        whose assigned worker SIGKILLs itself right before running them,
        once each — the fault-injection hook for tests and CI.
        """
        if self._closed:
            raise RuntimeError("supervisor is closed")
        payload_list = list(payloads)
        total = len(payload_list)
        report = SupervisionReport(values=[None] * total)
        if not total:
            return report

        if on_frame is not None and stream_interval_s is None:
            from ..obs.stream import DEFAULT_STREAM_INTERVAL_S

            stream_interval_s = DEFAULT_STREAM_INTERVAL_S
        interval = (
            stream_interval_s
            if on_frame is not None
            else self.config.heartbeat_interval_s
        )

        state = _RunState(
            supervisor=self,
            fn=fn,
            payloads=payload_list,
            report=report,
            on_frame=on_frame,
            on_result=on_result,
            interval=interval,
            kill_pending=set(inject_kill),
        )
        state.dispatch_initial()
        state.loop()
        return report

    # -- shared bookkeeping (used by _RunState) -----------------------------------

    def _inc(self, counter: str, n: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.inc(counter, n)

    def _respawn_budget_left(self) -> bool:
        return self._respawns_used < self.config.max_respawns

    def _take_respawn(self) -> None:
        self._respawns_used += 1


class _RunState:
    """The per-``run()`` recovery state machine.

    Kept separate from :class:`Supervisor` so a supervisor reused across
    batches (the controller) never leaks one run's task bookkeeping into
    the next.
    """

    def __init__(
        self,
        supervisor: Supervisor,
        fn,
        payloads: list,
        report: SupervisionReport,
        on_frame,
        on_result,
        interval: float | None,
        kill_pending: set[int],
    ):
        self.sup = supervisor
        self.fn = fn
        self.payloads = payloads
        self.report = report
        self.on_frame = on_frame
        self.on_result = on_result
        self.interval = interval
        self.kill_pending = kill_pending
        self.attempts: dict[int, int] = {}
        self.kills: dict[int, int] = {}
        self.stall_after = (interval or 0.0) * STALL_INTERVALS
        self.kill_after = (interval or 0.0) * supervisor.config.stall_kill_intervals

    # -- labels/frames -------------------------------------------------------------

    def _label(self, index: int) -> str:
        from ..obs.stream import task_label

        return task_label(self.payloads[index])

    def _frame(self, kind: str, slot_id: int, **extra) -> None:
        if self.on_frame is None:
            return
        slot = self.sup._slots[slot_id]
        pid = (slot.proc.pid or 0) if slot.proc is not None else 0
        self.on_frame(slot_id, _synth_frame(kind, pid, **extra))

    # -- dispatch -------------------------------------------------------------------

    def dispatch_initial(self) -> None:
        live = self.sup.live_slots()
        if not live:
            self._run_inprocess(list(range(len(self.payloads))))
            return
        shards: dict[int, list[int]] = {}
        width = self.sup.workers
        for index in range(len(self.payloads)):
            slot_id = index % width
            if self.sup._slots[slot_id].dead:
                slot_id = live[index % len(live)]
            shards.setdefault(slot_id, []).append(index)
        for slot_id, indices in sorted(shards.items()):
            self._send(slot_id, indices)

    def _send(self, slot_id: int, indices: list[int]) -> None:
        if not indices:
            return
        slot = self.sup._slots[slot_id]
        shard = [(i, self.payloads[i]) for i in indices]
        kills_here = sorted(self.kill_pending.intersection(indices))
        self.kill_pending.difference_update(kills_here)
        for i in indices:
            self.attempts[i] = self.attempts.get(i, 0) + 1
        try:
            slot.conn.send(("run_each", self.fn, shard, self.interval, kills_here))
        except (BrokenPipeError, OSError):
            # The worker died between batches; the death path requeues.
            slot.queued.extend(indices)
            self._handle_death(slot_id)
            return
        slot.queued.extend(indices)
        slot.last_seen = time.monotonic()

    # -- completion bookkeeping ------------------------------------------------------

    def _settled(self) -> int:
        return (
            sum(1 for v in self.report.values if v is not None)
            + len(self.report.failures)
            + len(self.report.quarantined)
        )

    def _record_result(self, index: int, ok: bool, value, remote_tb) -> None:
        if ok:
            self.report.values[index] = value
            if self.on_result is not None:
                self.on_result(index, value)
        else:
            self.report.failures[index] = (value, remote_tb)

    def _quarantine(self, index: int, reason: str) -> None:
        entry = TaskQuarantined(
            index=index,
            label=self._label(index),
            attempts=self.attempts.get(index, 0),
            workers_killed=self.kills.get(index, 0),
            reason=reason,
        )
        self.report.quarantined.append(entry)
        self.report.stats.quarantined += 1
        self.sup._inc("pool.task.quarantined")
        self._frame("task_quarantined", 0, task=index, label=entry.label)

    # -- the event loop ----------------------------------------------------------------

    def loop(self) -> None:
        total = len(self.payloads)
        while self._settled() < total:
            busy = [
                slot_id
                for slot_id, slot in enumerate(self.sup._slots)
                if slot.queued and not slot.dead
            ]
            if not busy:
                # Nothing in flight but tasks unsettled: every owner died
                # without a live successor — run the remainder here.
                remaining = [
                    i
                    for i in range(total)
                    if self.report.values[i] is None
                    and i not in self.report.failures
                    and not any(q.index == i for q in self.report.quarantined)
                ]
                self._run_inprocess(remaining)
                return
            waitables: dict[object, tuple[str, int]] = {}
            for slot_id in busy:
                slot = self.sup._slots[slot_id]
                waitables[slot.conn] = ("conn", slot_id)
                waitables[slot.proc.sentinel] = ("sentinel", slot_id)
            ready = mp_connection.wait(
                list(waitables), timeout=self.interval if self.interval else None
            )
            self._check_stalls(busy, ready or ())
            handled_death: set[int] = set()
            for obj in ready or ():
                kind, slot_id = waitables[obj]
                if slot_id in handled_death:
                    continue
                slot = self.sup._slots[slot_id]
                if kind == "sentinel" or slot.conn is not obj:
                    # The process died; drain results that raced ahead of
                    # the death, then recover.
                    if self._drain_then_die(slot_id):
                        handled_death.add(slot_id)
                    continue
                try:
                    message = slot.conn.recv()
                except (EOFError, ConnectionResetError, OSError):
                    self._handle_death(slot_id)
                    handled_death.add(slot_id)
                    continue
                self._on_message(slot_id, message)

    def _check_stalls(self, busy: list[int], ready) -> None:
        if not self.interval:
            return
        now = time.monotonic()
        ready_set = set(ready)
        for slot_id in busy:
            slot = self.sup._slots[slot_id]
            if slot.conn in ready_set or slot.proc.sentinel in ready_set:
                continue
            if not slot.stalled:
                # First strike happens STALL_INTERVALS periods after the
                # last real message; further strikes once per period.
                if now - slot.last_seen < self.stall_after:
                    continue
                slot.stalled = True
                slot.stall_since = slot.last_seen
                slot.last_seen = now
                self._frame("heartbeat_missed", slot_id)
                continue
            if now - slot.last_seen >= self.interval:
                slot.last_seen = now
                self._frame("heartbeat_missed", slot_id)
            if (
                slot.spoken  # startup grace: never kill a worker still importing
                and self.kill_after > self.stall_after
                and now - slot.stall_since >= self.kill_after
            ):
                # Escalate: the stall budget is spent — kill and let the
                # death path respawn and requeue.
                self.report.stats.stall_kills += 1
                self.sup._inc("pool.worker.stall_killed")
                slot.proc.kill()
                slot.stall_since = now  # one kill per budget, not per tick

    def _on_message(self, slot_id: int, message) -> None:
        slot = self.sup._slots[slot_id]
        slot.last_seen = time.monotonic()
        slot.spoken = True
        if slot.stalled:
            slot.stalled = False
            self._frame("heartbeat_recovered", slot_id)
        tag = message[0]
        if tag == "frame":
            if self.on_frame is not None:
                self.on_frame(slot_id, message[1])
            return
        if tag == "result":
            index, ok, value, remote_tb = message[1]
            if index in slot.queued:
                slot.queued.remove(index)
            self._record_result(index, ok, value, remote_tb)
            return
        # "done": shard-end marker; per-task results already accounted.

    def _drain_then_die(self, slot_id: int) -> bool:
        """Drain raced messages off a dead worker's pipe, then recover.

        Returns True when the worker was in fact dead (always, today —
        the sentinel fired), so callers skip further events for it.
        """
        slot = self.sup._slots[slot_id]
        try:
            while slot.conn.poll():
                self._on_message(slot_id, slot.conn.recv())
        except (EOFError, ConnectionResetError, OSError):
            pass
        self._handle_death(slot_id)
        return True

    # -- death, retry, quarantine, respawn ---------------------------------------------

    def _handle_death(self, slot_id: int) -> None:
        sup = self.sup
        slot = sup._slots[slot_id]
        if slot.proc is not None:
            slot.proc.join(timeout=5)
        if slot.conn is not None:
            slot.conn.close()
        slot.conn = None
        slot.proc = None
        remaining = slot.queued
        slot.queued = []

        if remaining:
            # The head of the queue is the task the worker died on (the
            # eager protocol reports results in run order).  Charge it.
            head = remaining.pop(0)
            self.kills[head] = self.kills.get(head, 0) + 1
            retry = sup._retry
            if self.kills[head] >= sup.config.poison_kills:
                self._quarantine(
                    head,
                    f"poison: killed {self.kills[head]} consecutive workers",
                )
            elif self.attempts.get(head, 0) >= retry.max_attempts:
                self._quarantine(
                    head,
                    f"retry budget exhausted after {self.attempts[head]} attempts",
                )
            else:
                self.report.stats.retries += 1
                self.report.stats.backoff_s += retry.backoff_s(
                    self.attempts.get(head, 1)
                )
                sup._inc("pool.task.retried")
                self._frame(
                    "task_retried", slot_id, task=head, label=self._label(head)
                )
                remaining.insert(0, head)

        if sup._respawn_budget_left():
            sup._take_respawn()
            telemetry = sup._telemetry
            if telemetry is not None:
                with telemetry.span(
                    "supervise.respawn", worker=slot_id, requeued=len(remaining)
                ):
                    respawned = self._try_spawn(slot_id)
            else:
                respawned = self._try_spawn(slot_id)
            if respawned:
                self.report.stats.respawns += 1
                sup._inc("pool.worker.respawned")
                self._frame(
                    "worker_respawned",
                    slot_id,
                    worker=slot_id,
                    respawns=self.report.stats.respawns,
                )
                self._send(slot_id, remaining)
                return
        # No respawn: this slot is permanently dead.
        slot.dead = True
        survivors = [
            s
            for s in sup.live_slots()
            if sup._slots[s].proc is not None and sup._slots[s].proc.is_alive()
        ]
        if survivors:
            # Requeue onto survivors, preserving run order round-robin.
            per_slot: dict[int, list[int]] = {}
            for pos, index in enumerate(remaining):
                target = survivors[pos % len(survivors)]
                per_slot.setdefault(target, []).append(index)
            for target, indices in sorted(per_slot.items()):
                self._send(target, indices)
        else:
            self._run_inprocess(remaining)

    def _try_spawn(self, slot_id: int) -> bool:
        try:
            self.sup._spawn(slot_id)
            return True
        except OSError:  # pragma: no cover - fork/pipe exhaustion
            return False

    def _run_inprocess(self, indices: list[int]) -> None:
        """Last-resort serial fallback in the coordinator process.

        ``--workers N`` must never be less reliable than ``--workers 1``:
        with every worker gone and no respawn budget, the remaining tasks
        run here — except tasks that already killed a worker, which are
        quarantined rather than risked inside the coordinator.
        """
        for index in indices:
            if self.kills.get(index, 0) > 0:
                self._quarantine(
                    index, "killed a worker; refusing in-process retry"
                )
                continue
            self.attempts[index] = self.attempts.get(index, 0) + 1
            ok, value, remote_tb = _run_one(self.fn, self.payloads[index])
            self.report.stats.inprocess += 1
            self.sup._inc("pool.task.inprocess")
            self._record_result(index, ok, value, remote_tb)
