"""Opt-in cProfile/pstats capture for planner phases and worker tasks.

Two capture shapes, both exported as standard ``pstats`` files (open
with ``python -m pstats FILE`` or ``snakeviz``):

* :class:`PhaseProfiler` — attach to a :class:`~repro.obs.Telemetry`
  (``telemetry.profiler = PhaseProfiler()``) and every span entry/exit
  switches the active profile, so each planner phase (compile, plrg,
  slrg, rg, ...) gets **exclusive** accounting: time inside a child
  span is charged to the child, not the parent.  CPython allows only
  one active profiler at a time, hence the explicit disable/enable
  dance on the phase stack.  Surfaced as ``repro plan --profile-out``.
* :func:`capture_profile` — whole-task capture for worker processes;
  the profile travels home as a marshal *blob* (the exact payload of a
  ``.pstats`` file) inside the task result, and
  :func:`merge_profile_blobs` folds any number of per-process blobs
  into one :class:`pstats.Stats`.  Surfaced as
  ``repro bench --profile-out`` (one blob per cell, merged per worker
  pid and overall).

Profiling is opt-in and orthogonal to the rest of telemetry: with no
profiler attached, the only cost on the span path is one ``is None``
check (covered by the overhead guard).
"""

from __future__ import annotations

import cProfile
import marshal
import pstats
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "PhaseProfiler",
    "capture_profile",
    "profile_blob",
    "merge_profile_blobs",
    "write_pstats",
]


class _BlobStats:
    """Adapter making a marshal blob loadable by :class:`pstats.Stats`."""

    def __init__(self, blob: bytes):
        self.stats = marshal.loads(blob)

    def create_stats(self) -> None:  # pstats' load protocol
        pass


def profile_blob(profile: cProfile.Profile) -> bytes:
    """Flatten a finished profile to the portable ``.pstats`` payload."""
    profile.create_stats()
    return marshal.dumps(profile.stats)


def merge_profile_blobs(blobs) -> pstats.Stats | None:
    """Fold profile blobs into one :class:`pstats.Stats` (None if empty).

    ``pstats`` merges by call-site key, so blobs from different
    processes (or repeated captures of the same phase) accumulate the
    way repeated ``Stats.add`` calls on files would.
    """
    loaded = [_BlobStats(blob) for blob in blobs if blob]
    if not loaded:
        return None
    stats = pstats.Stats(loaded[0])
    for extra in loaded[1:]:
        stats.add(extra)
    return stats


def write_pstats(stats: pstats.Stats, path: str) -> None:
    stats.dump_stats(path)


@contextmanager
def capture_profile(sink: list) -> Iterator[None]:
    """Profile the enclosed block; append the blob to ``sink``.

    The worker-task capture: cheap to ship (bytes), mergeable in the
    parent, and never raises — a failing task still reports the profile
    of the work it did.
    """
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield
    finally:
        profile.disable()
        sink.append(profile_blob(profile))


class PhaseProfiler:
    """Span-driven exclusive per-phase profiling.

    Driven by :meth:`Telemetry.span <repro.obs.Telemetry.span>`: entering
    a span suspends the enclosing phase's profile and starts a fresh one;
    leaving it folds the capture into that phase's accumulated blobs and
    resumes the parent.  Repeated entries of the same span name (one
    ``rg`` span per scenario in a sweep) accumulate under one phase key.
    """

    def __init__(self) -> None:
        self._stack: list[tuple[str, cProfile.Profile]] = []
        self._captures: dict[str, list[bytes]] = {}

    def enter_phase(self, name: str) -> None:
        if self._stack:
            self._stack[-1][1].disable()
        profile = cProfile.Profile()
        self._stack.append((name, profile))
        profile.enable()

    def exit_phase(self, name: str) -> None:
        if not self._stack:
            return
        top_name, profile = self._stack.pop()
        profile.disable()
        self._captures.setdefault(top_name, []).append(profile_blob(profile))
        if self._stack:
            self._stack[-1][1].enable()

    @property
    def phases(self) -> list[str]:
        """Phase names seen so far, in first-entry order."""
        return list(self._captures)

    def phase_stats(self, name: str) -> pstats.Stats | None:
        return merge_profile_blobs(self._captures.get(name, ()))

    def merged_stats(self) -> pstats.Stats | None:
        return merge_profile_blobs(
            blob for blobs in self._captures.values() for blob in blobs
        )

    def write(self, prefix: str) -> list[str]:
        """Write ``<prefix>`` (merged) plus ``<prefix>.<phase>.pstats``.

        Returns the written paths, merged file first.
        """
        written: list[str] = []
        merged = self.merged_stats()
        if merged is not None:
            write_pstats(merged, prefix)
            written.append(prefix)
        for name in self._captures:
            stats = self.phase_stats(name)
            if stats is not None:
                path = f"{prefix}.{name}.pstats"
                write_pstats(stats, path)
                written.append(path)
        return written
