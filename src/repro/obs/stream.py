"""Live telemetry streaming between workers and their coordinator.

While a :class:`~repro.parallel.WorkerPool` shard runs, the worker can
push small incremental *frames* back over its existing command pipe —
interleaved with, and distinct from, the final results message — so the
coordinator can watch the fleet instead of staring at a silent
``recv()``.  A frame is a plain dict (trivially picklable, schema below);
the stream is strictly informational: dropping every frame changes
nothing about results, metrics merging, or determinism, and a pipeline
with streaming off sends no frames at all (guarded by
``tests/obs/test_overhead_guard.py``).

Frame schema (all frames)::

    {"kind": ..., "pid": int, "seq": int, "ts_s": float,    # epoch
     "task": int | None, "label": str, "done": int, "total": int}

Kinds:

* ``task_start`` — a task began; ``label`` names it (``Tiny/B``,
  ``seed=7``, the member app name).
* ``task_end`` — a task finished; adds ``ok`` (bool) and ``metrics``
  (the task result's metric records, when the task carried telemetry) so
  the live registry can fold in cache hit rates and repair TTR as they
  happen.
* ``heartbeat`` — periodic liveness ping carrying the current task.
* ``heartbeat_missed`` — synthesized *coordinator-side* by the pool when
  a streaming worker goes quiet (see ``WorkerPool.map``); counted as
  ``pool.heartbeat.missed`` in the live registry.
* ``heartbeat_recovered`` — synthesized coordinator-side when a stalled
  worker speaks again (e.g. after SIGCONT); clears the view's missed
  strikes so the STALLED row disappears instead of sticking stale.
* ``worker_respawned`` / ``task_retried`` / ``task_quarantined`` —
  synthesized by the :class:`~repro.parallel.Supervisor` as it recovers
  from worker deaths; counted in the live registry
  (``pool.worker.respawned`` etc.) so ``--live`` shows recovery as it
  happens.

The coordinator folds frames into a :class:`StreamAggregator`, whose
registry is **live/display-only** — the deterministic final metrics
merge stays the task-ordered :meth:`MetricsSnapshot.merge_into
<repro.parallel.MetricsSnapshot.merge_into>` walk, so watching a run
never changes what it records.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from .metrics import MetricsRegistry

__all__ = [
    "DEFAULT_STREAM_INTERVAL_S",
    "task_label",
    "make_frame",
    "FrameSender",
    "WorkerView",
    "StreamAggregator",
]

DEFAULT_STREAM_INTERVAL_S = 0.25
"""Default heartbeat period for streaming workers (``--live``)."""


def task_label(payload) -> str:
    """A short human label for one task payload.

    Duck-typed over the envelope shapes in :mod:`repro.parallel.workers`:
    Table-2 cells render as ``network/scenario``, campaign runs as
    ``seed=N``, repair tasks as the member app's name; anything else
    falls back to the payload's type name.
    """
    network = getattr(payload, "network", None)
    scenario = getattr(payload, "scenario", None)
    if isinstance(network, str) and isinstance(scenario, str):
        return f"{network}/{scenario}"
    if hasattr(payload, "seed"):
        return f"seed={payload.seed}"
    name = getattr(getattr(payload, "app", None), "name", "")
    if name:
        return str(name)
    return type(payload).__name__


def make_frame(
    kind: str,
    task: int | None = None,
    label: str = "",
    done: int = 0,
    total: int = 0,
    **extra,
) -> dict:
    """Build one frame dict (used by serial drivers and tests).

    ``seq`` is 0 here; :class:`FrameSender` overwrites it with its own
    monotone counter on real worker streams.
    """
    frame = {
        "kind": kind,
        "pid": os.getpid(),
        "seq": 0,
        "ts_s": time.time(),
        "task": task,
        "label": label,
        "done": done,
        "total": total,
    }
    frame.update(extra)
    return frame


class FrameSender:
    """Worker-side frame emitter for one shard.

    Sends ``("frame", dict)`` messages over the worker's command pipe,
    guarded by a lock shared with the heartbeat thread; the thread is
    stopped and joined by :meth:`close` *before* the worker sends its
    final ``("done", results)`` message, so no frame ever trails the
    results.  A broken pipe silently disables the stream — frames are
    best-effort and must never fail the task.
    """

    def __init__(self, conn, interval_s: float, total: int):
        self._conn = conn
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._seq = 0
        self._broken = False
        self._task: int | None = None
        self._label = ""
        self._done = 0
        self._total = total
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._beat, args=(max(interval_s, 0.01),),
            name="repro-heartbeat", daemon=True,
        )
        self._thread.start()

    def _send(self, frame: dict) -> None:
        if self._broken:
            return
        with self._lock:
            frame["pid"] = self._pid
            frame["seq"] = self._seq
            self._seq += 1
            try:
                self._conn.send(("frame", frame))
            except (BrokenPipeError, OSError):
                self._broken = True

    def _beat(self, interval_s: float) -> None:
        while not self._stop.wait(interval_s):
            self._send(
                make_frame(
                    "heartbeat",
                    task=self._task,
                    label=self._label,
                    done=self._done,
                    total=self._total,
                )
            )

    def task_start(self, index: int, payload) -> None:
        self._task = index
        self._label = task_label(payload)
        self._send(
            make_frame(
                "task_start",
                task=index,
                label=self._label,
                done=self._done,
                total=self._total,
            )
        )

    def task_end(self, index: int, ok: bool, result) -> None:
        self._done += 1
        snapshot = getattr(result, "metrics", None)
        records = list(getattr(snapshot, "records", ()) or ())
        self._send(
            make_frame(
                "task_end",
                task=index,
                label=self._label,
                done=self._done,
                total=self._total,
                ok=ok,
                metrics=records,
            )
        )

    def close(self) -> None:
        """Stop the heartbeat thread; must precede the results send."""
        self._stop.set()
        self._thread.join(timeout=5.0)


@dataclass
class WorkerView:
    """What the coordinator currently knows about one worker."""

    worker: int
    pid: int = 0
    task: int | None = None
    label: str = ""
    done: int = 0
    total: int = 0
    frames: int = 0
    last_ts_s: float = 0.0
    missed: int = 0
    """Consecutive missed-heartbeat strikes; reset by any real frame."""


@dataclass
class StreamAggregator:
    """Coordinator-side fold of the frame stream into a live registry.

    One :class:`WorkerView` per worker plus a *display-only*
    :class:`~repro.obs.MetricsRegistry` (``live``) accumulated from
    ``task_end`` frames — counters and histograms fold exactly as the
    deterministic post-run merge does, just earlier and without touching
    the run's own telemetry.
    """

    workers: dict[int, WorkerView] = field(default_factory=dict)
    live: MetricsRegistry = field(default_factory=MetricsRegistry)
    started_s: float = field(default_factory=time.time)
    frames: int = 0

    def on_frame(self, worker: int, frame: dict) -> None:
        view = self.workers.setdefault(worker, WorkerView(worker=worker))
        self.frames += 1
        view.frames += 1
        view.pid = frame.get("pid", view.pid) or view.pid
        view.last_ts_s = frame.get("ts_s", view.last_ts_s)
        kind = frame.get("kind")
        if kind == "heartbeat_missed":
            view.missed += 1
            self.live.inc("pool.heartbeat.missed")
            return
        if kind == "heartbeat_recovered":
            view.missed = 0
            self.live.inc("pool.heartbeat.recovered")
            return
        if kind == "worker_respawned":
            # New process in the same slot: reset the view's liveness
            # state; progress counters (done/total) survive the respawn.
            view.missed = 0
            view.task = None
            view.label = ""
            self.live.inc("pool.worker.respawned")
            return
        if kind == "task_retried":
            self.live.inc("pool.task.retried")
            return
        if kind == "task_quarantined":
            self.live.inc("pool.task.quarantined")
            return
        view.missed = 0
        if "task" in frame:
            view.task = frame["task"]
        if frame.get("label"):
            view.label = frame["label"]
        view.done = frame.get("done", view.done)
        view.total = max(frame.get("total", view.total), view.total)
        if frame.get("kind") == "task_end" and frame.get("metrics"):
            self.live.merge_snapshot(list(frame["metrics"]))

    # -- derived figures for the live view ------------------------------------

    @property
    def tasks_done(self) -> int:
        return sum(v.done for v in self.workers.values())

    @property
    def tasks_total(self) -> int:
        return sum(v.total for v in self.workers.values())

    def eta_s(self, now_s: float | None = None) -> float | None:
        """Naive remaining-time estimate from the aggregate task rate."""
        done, total = self.tasks_done, self.tasks_total
        if done <= 0 or total <= done:
            return None
        elapsed = (now_s if now_s is not None else time.time()) - self.started_s
        if elapsed <= 0:
            return None
        return elapsed / done * (total - done)

    def cache_hit_rate(self) -> float | None:
        """``cache.hit / (cache.hit + cache.miss)`` so far, if seen."""
        hit = self.live.get("cache.hit")
        miss = self.live.get("cache.miss")
        hits = hit.value if hit is not None else 0
        misses = miss.value if miss is not None else 0
        if hits + misses == 0:
            return None
        return hits / (hits + misses)

    def repair_ttr_ms(self) -> float | None:
        """Mean ``repair.ttr`` across the fleet so far, if seen."""
        hist = self.live.get("repair.ttr")
        if hist is None or not getattr(hist, "count", 0):
            return None
        return hist.mean

    @property
    def heartbeat_missed(self) -> int:
        counter = self.live.get("pool.heartbeat.missed")
        return counter.value if counter is not None else 0

    def _count(self, name: str) -> int:
        counter = self.live.get(name)
        return counter.value if counter is not None else 0

    @property
    def respawned(self) -> int:
        return self._count("pool.worker.respawned")

    @property
    def retried(self) -> int:
        return self._count("pool.task.retried")

    @property
    def quarantined(self) -> int:
        return self._count("pool.task.quarantined")
