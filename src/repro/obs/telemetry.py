"""The telemetry facade threaded through the planner.

One :class:`Telemetry` object bundles the three observability channels:

* **spans** — hierarchical wall-clock regions (phases, scenario runs);
* **metrics** — the named counter/gauge/histogram registry;
* **trace** — the per-run bounded RG :class:`~repro.obs.SearchTrace`.

Instrumentation is *off by default*: every hook in the planner takes
``telemetry=None`` and the hot paths guard on a single ``is not None``
check, so a planner without telemetry runs the same instructions it ran
before this subsystem existed (guarded by the overhead test in
``tests/obs/test_overhead_guard.py``).

Spans and metrics accumulate across runs (an experiment harness records
many scenario spans into one timeline); the search trace and the
``planner.*`` stat gauges are per-run — :meth:`Telemetry.begin_run`
starts a fresh trace, and :meth:`PlannerStats.publish
<repro.planner.PlannerStats.publish>` overwrites the gauges.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext

from .metrics import MetricsRegistry
from .span import SpanRecorder
from .trace import SearchTrace

__all__ = ["Telemetry", "maybe_span"]


class Telemetry:
    """Spans + metrics + per-run search trace for one planner/harness."""

    def __init__(self, trace: bool = True, trace_max_events: int = 2000):
        self.spans = SpanRecorder()
        self.metrics = MetricsRegistry()
        self.trace_enabled = trace
        self.trace_max_events = trace_max_events
        self.trace: SearchTrace | None = None
        self.runs = 0

    @contextmanager
    def span(self, name: str, **attrs):
        with self.spans.span(name, **attrs) as sp:
            yield sp

    def begin_run(self) -> SearchTrace | None:
        """Start one planner run: fresh search trace, run counter bumped.

        Called by :meth:`Planner.solve`, so a single planner (or a single
        ``Telemetry``) reused across ``solve()`` calls never leaks trace
        events from one run into the next.
        """
        self.runs += 1
        self.trace = (
            SearchTrace(max_events=self.trace_max_events) if self.trace_enabled else None
        )
        return self.trace


def maybe_span(telemetry: Telemetry | None, name: str, **attrs):
    """``telemetry.span(...)`` or a no-op context when telemetry is off.

    The ``with maybe_span(...) as sp`` target is the :class:`Span` (for
    attaching result attributes) or ``None`` when disabled.
    """
    if telemetry is None:
        return nullcontext(None)
    return telemetry.span(name, **attrs)
