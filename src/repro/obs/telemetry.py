"""The telemetry facade threaded through the planner.

One :class:`Telemetry` object bundles the three observability channels:

* **spans** — hierarchical wall-clock regions (phases, scenario runs);
* **metrics** — the named counter/gauge/histogram registry;
* **trace** — the per-run bounded RG :class:`~repro.obs.SearchTrace`.

Instrumentation is *off by default*: every hook in the planner takes
``telemetry=None`` and the hot paths guard on a single ``is not None``
check, so a planner without telemetry runs the same instructions it ran
before this subsystem existed (guarded by the overhead test in
``tests/obs/test_overhead_guard.py``).

Spans and metrics accumulate across runs (an experiment harness records
many scenario spans into one timeline); the search trace and the
``planner.*`` stat gauges are per-run — :meth:`Telemetry.begin_run`
starts a fresh trace, and :meth:`PlannerStats.publish
<repro.planner.PlannerStats.publish>` overwrites the gauges.

Distributed runs (docs/OBSERVABILITY.md, "Distributed tracing"): a
coordinator telemetry owns a ``trace_id`` and hands workers a
:class:`~repro.obs.TraceContext` via :meth:`Telemetry.current_context`;
worker spans shipped home in metrics snapshots are grafted into
:attr:`Telemetry.remote_spans` by :meth:`Telemetry.stitch_snapshot`, and
the exporters render them as per-pid lanes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext

from .context import (
    REMOTE_ID_BASE,
    RemoteSpan,
    TraceContext,
    new_trace_id,
    stitch_snapshot,
)
from .metrics import MetricsRegistry
from .span import SpanRecorder
from .trace import SearchTrace

__all__ = ["Telemetry", "maybe_span"]


class Telemetry:
    """Spans + metrics + per-run search trace for one planner/harness."""

    def __init__(
        self,
        trace: bool = True,
        trace_max_events: int = 2000,
        context: TraceContext | None = None,
    ):
        self.spans = SpanRecorder()
        self.metrics = MetricsRegistry()
        self.trace_enabled = trace
        self.trace_max_events = trace_max_events
        self.trace: SearchTrace | None = None
        self.runs = 0
        # Cross-process tracing: the trace this telemetry belongs to (a
        # worker inherits the coordinator's id through ``context``), the
        # paired clock anchors remote timestamps are re-based through,
        # and the stitched remote spans with their id allocator.
        self.context = context
        self.trace_id = context.trace_id if context is not None else new_trace_id()
        self.epoch_anchor_s = time.time()
        self.perf_anchor_s = time.perf_counter()
        self.remote_spans: list[RemoteSpan] = []
        self._next_remote_id = REMOTE_ID_BASE
        # Optional per-phase profiler (repro.obs.profile.PhaseProfiler);
        # when attached, every span entry/exit switches the active
        # cProfile so phase accounting is exclusive.
        self.profiler = None

    @contextmanager
    def span(self, name: str, **attrs):
        profiler = self.profiler
        if profiler is not None:
            profiler.enter_phase(name)
        try:
            with self.spans.span(name, **attrs) as sp:
                yield sp
        finally:
            if profiler is not None:
                profiler.exit_phase(name)

    def begin_run(self) -> SearchTrace | None:
        """Start one planner run: fresh search trace, run counter bumped.

        Called by :meth:`Planner.solve`, so a single planner (or a single
        ``Telemetry``) reused across ``solve()`` calls never leaks trace
        events from one run into the next.
        """
        self.runs += 1
        self.trace = (
            SearchTrace(max_events=self.trace_max_events) if self.trace_enabled else None
        )
        return self.trace

    # -- cross-process tracing -------------------------------------------------

    def current_span_id(self) -> int | None:
        """Id of the innermost open span, or ``None`` outside any span."""
        return self.spans.current_id

    def current_context(self) -> TraceContext:
        """The :class:`TraceContext` to stamp on task envelopes right now.

        Call inside the dispatch span (``with telemetry.span("table2.fanout")``)
        so worker roots parent onto it when stitched.
        """
        return TraceContext(trace_id=self.trace_id, parent_span_id=self.current_span_id())

    def allocate_remote_id(self) -> int:
        """A fresh span id for one stitched remote span."""
        next_id = self._next_remote_id
        self._next_remote_id += 1
        return next_id

    def stitch_snapshot(self, snapshot, worker: int | None = None) -> list[RemoteSpan]:
        """Graft a worker snapshot's spans in (see :func:`stitch_snapshot`)."""
        return stitch_snapshot(self, snapshot, worker=worker)


def maybe_span(telemetry: Telemetry | None, name: str, **attrs):
    """``telemetry.span(...)`` or a no-op context when telemetry is off.

    The ``with maybe_span(...) as sp`` target is the :class:`Span` (for
    attaching result attributes) or ``None`` when disabled.
    """
    if telemetry is None:
        return nullcontext(None)
    return telemetry.span(name, **attrs)
