"""Trace exporters: JSONL event stream, Chrome trace-event JSON, terminal.

Two file formats, one committed schema each (``benchmarks/schemas/``):

* **JSONL** (``repro plan --trace-out t.jsonl``) — one JSON object per
  line.  The first line is a header record; subsequent records are
  ``span``, ``metric``, and ``event`` (RG search trace) objects.  Stream-
  friendly and trivially greppable.
* **Chrome trace-event JSON** (``--trace-format chrome``) — the
  ``{"traceEvents": [...]}`` object format understood by Perfetto and
  ``chrome://tracing``: spans become complete (``"ph": "X"``) events,
  search-trace events become instants (``"ph": "i"``), and the metrics
  snapshot rides along under ``otherData``.

Timestamps are re-based so the earliest span starts at 0 µs; both
formats use microseconds, matching the trace-event convention.

Distributed runs: spans stitched home from worker processes
(:attr:`Telemetry.remote_spans <repro.obs.Telemetry.remote_spans>`) are
exported alongside the coordinator's own — tagged with their worker pid
(``pid``/``worker`` fields in JSONL; a real per-pid lane with a
``process_name`` metadata event in Chrome), already re-based onto the
coordinator's clock by the stitcher.  Both formats carry explicit span
ids and parent ids (Chrome puts them in ``args`` under ``span_id`` /
``parent_span_id``), so a loaded trace reconstructs the exact
coordinator→worker parenting, not just visual nesting.
"""

from __future__ import annotations

import json
import os
from typing import IO

from .telemetry import Telemetry

__all__ = [
    "JSONL_FORMAT",
    "CHROME_FORMAT",
    "export_jsonl",
    "export_chrome",
    "export_trace",
    "render_phase_report",
]

JSONL_FORMAT = "repro-trace-jsonl"
CHROME_FORMAT = "repro-trace-chrome"
FORMAT_VERSION = 1


def _time_base(telemetry: Telemetry) -> float:
    starts = [sp.start_s for sp in telemetry.spans.spans]
    starts.extend(sp.start_s for sp in telemetry.remote_spans)
    if telemetry.trace is not None:
        starts.extend(e.ts for e in telemetry.trace.events if e.ts)
    return min(starts, default=0.0)


def _span_records(telemetry: Telemetry, base_s: float) -> list[dict]:
    out = []
    for sp in telemetry.spans.spans:
        out.append(
            {
                "type": "span",
                "id": sp.id,
                "name": sp.name,
                "parent": sp.parent,
                "start_us": (sp.start_s - base_s) * 1e6,
                "dur_us": sp.duration_s * 1e6,
                "attrs": sp.attrs,
            }
        )
    for sp in telemetry.remote_spans:
        record = {
            "type": "span",
            "id": sp.id,
            "name": sp.name,
            "parent": sp.parent,
            "start_us": (sp.start_s - base_s) * 1e6,
            "dur_us": sp.duration_s * 1e6,
            "attrs": sp.attrs,
            "pid": sp.pid,
        }
        if sp.worker is not None:
            record["worker"] = sp.worker
        out.append(record)
    return out


def _event_records(telemetry: Telemetry, base_s: float) -> list[dict]:
    if telemetry.trace is None:
        return []
    out = []
    for seq, ev in enumerate(telemetry.trace.events):
        out.append(
            {
                "type": "event",
                "seq": seq,
                "kind": ev.kind,
                "action": ev.action,
                "detail": ev.detail,
                "depth": ev.depth,
                "reason": ev.reason,
                "ts_us": (ev.ts - base_s) * 1e6 if ev.ts else 0.0,
            }
        )
    return out


def export_jsonl(telemetry: Telemetry, fp: IO[str]) -> int:
    """Write the JSONL event stream; returns the number of records."""
    base_s = _time_base(telemetry)
    records: list[dict] = [
        {
            "type": "header",
            "format": JSONL_FORMAT,
            "version": FORMAT_VERSION,
            "generator": "repro",
            "runs": telemetry.runs,
            "trace_id": telemetry.trace_id,
            "pid": os.getpid(),
        }
    ]
    records.extend(_span_records(telemetry, base_s))
    for snap in telemetry.metrics.snapshot():
        snap = dict(snap)
        snap["type"] = "metric"
        records.append(snap)
    records.extend(_event_records(telemetry, base_s))
    if telemetry.trace is not None:
        records.append(
            {
                "type": "trace-summary",
                "counters": dict(telemetry.trace.counters),
                "prune_reasons": dict(telemetry.trace.prune_reasons),
                "max_events": telemetry.trace.max_events,
            }
        )
    for record in records:
        fp.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def export_chrome(telemetry: Telemetry, fp: IO[str]) -> int:
    """Write Chrome trace-event JSON; returns the number of trace events."""
    base_s = _time_base(telemetry)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": 1,
            "tid": 1,
            "args": {"name": "repro coordinator"},
        }
    ]
    # One metadata lane per worker pid, labelled with the pool index when
    # the stitcher knew it.
    lanes: dict[int, str] = {}
    for sp in telemetry.remote_spans:
        if sp.pid not in lanes:
            label = f"repro worker pid {sp.pid}"
            if sp.worker is not None:
                label = f"repro worker {sp.worker} (pid {sp.pid})"
            lanes[sp.pid] = label
    for pid, label in sorted(lanes.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 1,
                "args": {"name": label},
            }
        )
    for sp in telemetry.spans.spans:
        events.append(
            {
                "name": sp.name,
                "cat": "planner",
                "ph": "X",
                "ts": (sp.start_s - base_s) * 1e6,
                "dur": sp.duration_s * 1e6,
                "pid": 1,
                "tid": 1,
                "args": {
                    **sp.attrs,
                    "span_id": sp.id,
                    "parent_span_id": sp.parent,
                },
            }
        )
    for sp in telemetry.remote_spans:
        events.append(
            {
                "name": sp.name,
                "cat": "worker",
                "ph": "X",
                "ts": (sp.start_s - base_s) * 1e6,
                "dur": sp.duration_s * 1e6,
                "pid": sp.pid,
                "tid": 1,
                "args": {
                    **sp.attrs,
                    "span_id": sp.id,
                    "parent_span_id": sp.parent,
                },
            }
        )
    if telemetry.trace is not None:
        for ev in telemetry.trace.events:
            args = {"detail": ev.detail, "depth": ev.depth}
            if ev.action is not None:
                args["action"] = ev.action
            if ev.reason is not None:
                args["reason"] = ev.reason
            events.append(
                {
                    "name": f"rg.{ev.kind}",
                    "cat": "search",
                    "ph": "i",
                    "s": "t",
                    "ts": (ev.ts - base_s) * 1e6 if ev.ts else 0.0,
                    "pid": 1,
                    "tid": 2,
                    "args": args,
                }
            )
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": CHROME_FORMAT,
            "version": FORMAT_VERSION,
            "generator": "repro",
            "trace_id": telemetry.trace_id,
            "metrics": telemetry.metrics.snapshot(),
        },
    }
    json.dump(payload, fp, sort_keys=True)
    fp.write("\n")
    return len(events)


def export_trace(telemetry: Telemetry, path: str, fmt: str = "jsonl") -> int:
    """Export to ``path`` in ``'jsonl'`` or ``'chrome'`` format."""
    if fmt not in ("jsonl", "chrome"):
        raise ValueError(f"unknown trace format {fmt!r} (expected jsonl or chrome)")
    with open(path, "w") as fp:
        if fmt == "jsonl":
            return export_jsonl(telemetry, fp)
        return export_chrome(telemetry, fp)


# ---------------------------------------------------------------------------
# Terminal renderer — the Figs. 7–8 style search-progress account
# ---------------------------------------------------------------------------

_BAR_WIDTH = 40


def _bar(value: float, peak: float, width: int = _BAR_WIDTH) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1, round(width * value / peak)) if value > 0 else ""


def render_phase_report(telemetry: Telemetry) -> str:
    """Figs. 7–8 style terminal account of one (or more) planner runs.

    Three sections: the span tree with phase wall-clock bars, the RG
    search-progress counters with prune reasons, and histogram sketches
    of the recorded work distributions.
    """
    lines: list[str] = ["phase spans:"]
    phase_spans = [sp for sp in telemetry.spans.spans if sp.end_s is not None]
    peak_ms = max((sp.duration_ms for sp in phase_spans), default=0.0)
    for line in telemetry.spans.render_tree().splitlines():
        lines.append("  " + line)
    if phase_spans and peak_ms > 0:
        lines.append("")
        lines.append("phase wall-clock:")
        for sp in phase_spans:
            if sp.parent is None and len(telemetry.spans.children(sp.id)) > 0:
                continue  # bars for leaf phases only; parents just sum them
            lines.append(
                f"  {sp.name:<16s} {sp.duration_ms:9.2f} ms  |{_bar(sp.duration_ms, peak_ms)}"
            )

    if telemetry.trace is not None:
        lines.append("")
        lines.append(telemetry.trace.summary())

    from .metrics import Histogram

    for hist in telemetry.metrics:
        if not isinstance(hist, Histogram) or hist.count == 0:
            continue
        lines.append("")
        lines.append(
            f"{hist.name}: n={hist.count} mean={hist.mean:g} "
            f"min={hist.min:g} max={hist.max:g}"
        )
        peak = max(c for _b, c in hist.buckets()) or 1
        for bound, count in hist.buckets():
            if count:
                label = (
                    f"<= {bound:g}" if bound != float("inf")
                    else f"> {hist.bounds[-1]:g}"
                )
                lines.append(f"  {label:>10s}: {count:8d} |{_bar(count, peak)}")
    return "\n".join(lines)
