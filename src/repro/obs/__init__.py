"""Unified planner observability: spans, metrics, and search traces.

Zero-dependency, off-by-default telemetry for the three planner phases
and the experiment harness (see docs/OBSERVABILITY.md):

* :class:`Telemetry` — the facade threaded through the planner via
  ``PlannerConfig(telemetry=...)``: hierarchical :class:`Span` timings, a
  :class:`MetricsRegistry` of counters/gauges/histograms, and the per-run
  bounded :class:`SearchTrace`.
* :func:`export_trace` / :func:`export_jsonl` / :func:`export_chrome` —
  file exporters (JSONL event stream; Chrome trace-event JSON for
  Perfetto), surfaced as ``repro plan --trace-out``.
* :func:`load_trace` / :func:`summarize_trace` — read an exported file
  back and render the Figs. 7–8 style account (``repro trace summarize``).
"""

from .export import (
    CHROME_FORMAT,
    JSONL_FORMAT,
    export_chrome,
    export_jsonl,
    export_trace,
    render_phase_report,
)
from .metrics import DEFAULT_BOUNDS, Counter, Gauge, Histogram, MetricsRegistry
from .span import Span, SpanRecorder
from .summarize import TraceFile, TraceFileError, load_trace, summarize_trace
from .telemetry import Telemetry, maybe_span
from .trace import SearchTrace, TraceEvent

__all__ = [
    "Telemetry",
    "maybe_span",
    "Span",
    "SpanRecorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BOUNDS",
    "SearchTrace",
    "TraceEvent",
    "JSONL_FORMAT",
    "CHROME_FORMAT",
    "export_jsonl",
    "export_chrome",
    "export_trace",
    "render_phase_report",
    "TraceFile",
    "TraceFileError",
    "load_trace",
    "summarize_trace",
]
