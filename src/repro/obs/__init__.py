"""Unified planner observability: spans, metrics, and search traces.

Zero-dependency, off-by-default telemetry for the three planner phases
and the experiment harness (see docs/OBSERVABILITY.md):

* :class:`Telemetry` — the facade threaded through the planner via
  ``PlannerConfig(telemetry=...)``: hierarchical :class:`Span` timings, a
  :class:`MetricsRegistry` of counters/gauges/histograms, and the per-run
  bounded :class:`SearchTrace`.
* :func:`export_trace` / :func:`export_jsonl` / :func:`export_chrome` —
  file exporters (JSONL event stream; Chrome trace-event JSON for
  Perfetto), surfaced as ``repro plan --trace-out``.
* :func:`load_trace` / :func:`summarize_trace` — read an exported file
  back and render the Figs. 7–8 style account (``repro trace summarize``).
* :class:`TraceContext` / :func:`stitch_snapshot` — cross-process trace
  propagation: worker spans ship home in metrics snapshots and stitch
  under the dispatching coordinator span as :class:`RemoteSpan` lanes.
* :class:`StreamAggregator` / :class:`LiveMonitor` — live worker
  telemetry frames (``--live``) with stalled-worker heartbeat detection.
* :class:`PhaseProfiler` / :func:`capture_profile` — opt-in cProfile
  capture per planner phase or per worker task (``--profile-out``).
"""

from .context import (
    RemoteSpan,
    TraceContext,
    new_trace_id,
    spans_payload,
    stitch_snapshot,
)
from .export import (
    CHROME_FORMAT,
    JSONL_FORMAT,
    export_chrome,
    export_jsonl,
    export_trace,
    render_phase_report,
)
from .live import LiveMonitor
from .metrics import DEFAULT_BOUNDS, Counter, Gauge, Histogram, MetricsRegistry
from .profile import (
    PhaseProfiler,
    capture_profile,
    merge_profile_blobs,
    profile_blob,
    write_pstats,
)
from .span import Span, SpanRecorder
from .stream import (
    DEFAULT_STREAM_INTERVAL_S,
    FrameSender,
    StreamAggregator,
    WorkerView,
    make_frame,
    task_label,
)
from .summarize import TraceFile, TraceFileError, load_trace, summarize_trace
from .telemetry import Telemetry, maybe_span
from .trace import SearchTrace, TraceEvent

__all__ = [
    "Telemetry",
    "maybe_span",
    "Span",
    "SpanRecorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BOUNDS",
    "SearchTrace",
    "TraceEvent",
    "TraceContext",
    "RemoteSpan",
    "new_trace_id",
    "spans_payload",
    "stitch_snapshot",
    "DEFAULT_STREAM_INTERVAL_S",
    "task_label",
    "make_frame",
    "FrameSender",
    "WorkerView",
    "StreamAggregator",
    "LiveMonitor",
    "PhaseProfiler",
    "capture_profile",
    "profile_blob",
    "merge_profile_blobs",
    "write_pstats",
    "JSONL_FORMAT",
    "CHROME_FORMAT",
    "export_jsonl",
    "export_chrome",
    "export_trace",
    "render_phase_report",
    "TraceFile",
    "TraceFileError",
    "load_trace",
    "summarize_trace",
]
