"""Cross-process trace propagation: contexts, remote spans, stitching.

A coordinator that fans planner work out over worker processes opens a
dispatch span (``table2.fanout``, ``campaign.fanout``,
``controller.batch``) and stamps every task envelope with a
:class:`TraceContext` — the coordinator's trace id plus the id of that
dispatch span.  Workers build their :class:`~repro.obs.Telemetry` *under*
that context; when the task result travels home, the worker's recorded
spans ride along inside the metrics snapshot
(:class:`repro.parallel.MetricsSnapshot`) and :func:`stitch_snapshot`
grafts them into the coordinator's telemetry as :class:`RemoteSpan`
records — re-identified (worker-local span ids collide across workers),
re-parented (worker roots hang off the dispatch span), and re-based onto
the coordinator's clock — so one export renders the whole fleet on one
timeline, one lane per worker pid.

Clock mapping: span timestamps are ``time.perf_counter`` seconds, which
are only comparable within one process.  Every ``Telemetry`` therefore
captures a paired (epoch, perf_counter) anchor at construction; a worker
timestamp maps onto the coordinator's perf timeline through the epoch:

    epoch  = worker.epoch_anchor + (t - worker.perf_anchor)
    parent = parent.perf_anchor + (epoch - parent.epoch_anchor)

Wall-clock skew between the two anchors is bounded by process spawn
latency on one machine — microseconds against millisecond spans.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field

__all__ = [
    "TraceContext",
    "RemoteSpan",
    "REMOTE_ID_BASE",
    "new_trace_id",
    "spans_payload",
    "stitch_snapshot",
]

REMOTE_ID_BASE = 1_000_000
"""First span id handed to stitched remote spans.  Coordinator-local ids
are list indices (0, 1, 2, ...); starting remote ids here keeps the two
ranges disjoint without coordinating allocation across processes."""


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (uuid4)."""
    return uuid.uuid4().hex


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The cross-process trace position a task envelope carries.

    ``parent_span_id`` is the coordinator-side span that dispatched the
    work; worker root spans are re-parented onto it when stitched.  The
    dataclass is tiny, immutable, and trivially picklable — a disabled
    pipeline ships ``None`` instead, so the telemetry-off hot path pays
    one ``None`` field per task envelope and nothing else.
    """

    trace_id: str
    parent_span_id: int | None = None


@dataclass(slots=True)
class RemoteSpan:
    """A worker span after stitching into the coordinator's telemetry.

    Same shape as :class:`~repro.obs.Span` plus provenance: the worker
    process pid (the trace lane) and, when the caller knows it, the
    pool's worker index.  Timestamps are coordinator ``perf_counter``
    seconds — already re-based, directly comparable to local spans.
    """

    id: int
    name: str
    start_s: float
    end_s: float | None
    parent: int | None
    attrs: dict = field(default_factory=dict)
    pid: int = 0
    worker: int | None = None

    @property
    def duration_s(self) -> float:
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1e3


def spans_payload(recorder) -> tuple[dict, ...]:
    """Flatten a :class:`~repro.obs.SpanRecorder` for the trip home.

    Plain dicts (not :class:`Span` objects) cross the process boundary:
    the envelope contract stays schema-stable and versionable, and the
    parent never unpickles worker-side classes.  Order is preserved —
    the recorder appends parents before children, which
    :func:`stitch_snapshot` relies on when remapping ids.
    """
    return tuple(
        {
            "id": sp.id,
            "name": sp.name,
            "start_s": sp.start_s,
            "end_s": sp.end_s,
            "parent": sp.parent,
            "attrs": dict(sp.attrs),
        }
        for sp in recorder.spans
    )


def stitch_snapshot(telemetry, snapshot, worker: int | None = None) -> list[RemoteSpan]:
    """Graft a worker snapshot's spans into ``telemetry.remote_spans``.

    Re-identifies every span (fresh ids from the coordinator's remote
    allocator), re-parents worker roots onto the dispatching span named
    by the snapshot's context (only when the snapshot belongs to this
    telemetry's trace — foreign snapshots stitch as unparented lanes),
    and re-bases timestamps onto the coordinator's perf clock via the
    paired epoch/perf anchors.  Returns the grafted spans; a snapshot
    without spans is a cheap no-op.
    """
    if not snapshot.spans:
        return []
    parent_local = (
        snapshot.parent_span_id
        if snapshot.trace_id and snapshot.trace_id == telemetry.trace_id
        else None
    )
    # worker perf -> epoch -> coordinator perf (see module docstring)
    shift = (
        (snapshot.epoch_anchor_s - snapshot.perf_anchor_s)
        + (telemetry.perf_anchor_s - telemetry.epoch_anchor_s)
    )
    id_map: dict[int, int] = {}
    grafted: list[RemoteSpan] = []
    for record in snapshot.spans:
        new_id = telemetry.allocate_remote_id()
        id_map[record["id"]] = new_id
        parent = record.get("parent")
        end_s = record.get("end_s")
        grafted.append(
            RemoteSpan(
                id=new_id,
                name=record["name"],
                start_s=record["start_s"] + shift,
                end_s=None if end_s is None else end_s + shift,
                parent=id_map[parent] if parent is not None else parent_local,
                attrs=dict(record.get("attrs") or {}),
                pid=snapshot.pid,
                worker=worker,
            )
        )
    telemetry.remote_spans.extend(grafted)
    return grafted
