"""Load exported trace files back and summarize them in the terminal.

``repro trace summarize FILE`` sniffs the format (JSONL event stream or
Chrome trace-event JSON), normalizes both into one :class:`TraceFile`
shape, and renders the same search-progress account the live
``--metrics`` flag prints — so a trace captured on one machine can be
read on another without the planner objects.

Multi-process traces (a ``--workers N`` run with ``--trace-out``) group
per *lane*: spans carrying a worker ``pid`` render under their own
``lane: worker pid P`` heading, with cross-lane parent links (a worker
root span parented onto the coordinator's dispatch span) annotated
rather than silently flattened.  Concatenating two exports into one
file is *mixed-schema input* and fails loudly with the offending line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .export import CHROME_FORMAT, JSONL_FORMAT

__all__ = ["TraceFile", "TraceFileError", "load_trace", "summarize_trace"]


class TraceFileError(ValueError):
    """The file is not a readable exported trace."""


@dataclass
class TraceFile:
    """Format-independent view of an exported trace."""

    format: str  # 'jsonl' | 'chrome'
    spans: list[dict] = field(default_factory=list)  # name/parent/start_us/dur_us/attrs
    metrics: list[dict] = field(default_factory=list)  # registry snapshots
    events: list[dict] = field(default_factory=list)  # kind/action/detail/depth/reason
    header: dict = field(default_factory=dict)
    trace_summary: dict = field(default_factory=dict)


def load_trace(path: str) -> TraceFile:
    """Parse an exported trace file of either format."""
    try:
        text = open(path).read()
    except OSError as exc:
        raise TraceFileError(f"cannot read {path}: {exc}") from exc
    stripped = text.lstrip()
    if not stripped:
        raise TraceFileError(f"{path}: empty file")
    if stripped.startswith("{"):
        # A Chrome export is one JSON object with a traceEvents array; a
        # JSONL export is one object *per line*.  Try the whole-file parse
        # first so a single-line JSONL header is not mistaken for Chrome.
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) and "traceEvents" in payload:
            return _load_chrome(path, text)
    return _load_jsonl(path, text)


def _load_jsonl(path: str, text: str) -> TraceFile:
    out = TraceFile(format="jsonl")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFileError(f"{path}:{lineno}: not JSON ({exc})") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise TraceFileError(f"{path}:{lineno}: record without a 'type' field")
        rtype = record["type"]
        if rtype == "header":
            if record.get("format") != JSONL_FORMAT:
                raise TraceFileError(
                    f"{path}: unexpected format {record.get('format')!r}"
                )
            if out.header:
                raise TraceFileError(
                    f"{path}:{lineno}: second header record — mixed-schema "
                    "input (two exports concatenated into one file?); "
                    "summarize each export separately"
                )
            out.header = record
        elif rtype == "span":
            out.spans.append(record)
        elif rtype == "metric":
            out.metrics.append(record)
        elif rtype == "event":
            out.events.append(record)
        elif rtype == "trace-summary":
            out.trace_summary = record
        else:
            raise TraceFileError(f"{path}:{lineno}: unknown record type {rtype!r}")
    if not out.header:
        raise TraceFileError(f"{path}: missing header record")
    return out


def _load_chrome(path: str, text: str) -> TraceFile:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceFileError(f"{path}: not JSON ({exc})") from exc
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise TraceFileError(f"{path}: no traceEvents array")
    other = payload.get("otherData", {})
    if other.get("format") not in (None, CHROME_FORMAT):
        raise TraceFileError(f"{path}: unexpected format {other.get('format')!r}")
    out = TraceFile(format="chrome", header=other, metrics=list(other.get("metrics", [])))
    next_id = 0
    for ev in payload["traceEvents"]:
        ph = ev.get("ph")
        if ph == "X":
            # Current exports carry explicit span identity in args
            # (span_id / parent_span_id); older files fall back to
            # sequential ids with nesting implied by timestamps only.
            args = dict(ev.get("args", {}))
            span_id = args.pop("span_id", None)
            parent = args.pop("parent_span_id", None)
            record = {
                "id": span_id if span_id is not None else next_id,
                "name": ev.get("name", "?"),
                "parent": parent,
                "start_us": ev.get("ts", 0.0),
                "dur_us": ev.get("dur", 0.0),
                "attrs": args,
            }
            pid = ev.get("pid", 1)
            if pid != 1:  # pid 1 is the coordinator lane by convention
                record["pid"] = pid
            out.spans.append(record)
            next_id += 1
        elif ph == "i":
            args = ev.get("args", {})
            name = ev.get("name", "")
            out.events.append(
                {
                    "kind": name.split(".", 1)[1] if "." in name else name,
                    "action": args.get("action"),
                    "detail": args.get("detail", ""),
                    "depth": args.get("depth", 0),
                    "reason": args.get("reason"),
                    "ts_us": ev.get("ts", 0.0),
                }
            )
    return out


def summarize_trace(trace: TraceFile) -> str:
    """Human-readable account of a loaded trace file."""
    lines = [f"trace file: {trace.format} format"]
    if trace.header.get("runs"):
        lines.append(f"planner runs recorded: {trace.header['runs']}")

    if trace.spans:
        by_id = {sp["id"]: sp for sp in trace.spans}
        # Group spans into lanes: pid-less spans are the coordinator's
        # own; spans stitched home from workers carry their worker pid.
        lanes: dict[object, list[dict]] = {}
        for sp in trace.spans:
            lanes.setdefault(sp.get("pid"), []).append(sp)
        multi = len(lanes) > 1
        if multi:
            worker_lanes = len([pid for pid in lanes if pid is not None])
            lines.append(
                f"lanes: coordinator + {worker_lanes} worker process(es)"
            )

        def render_lane(spans: list[dict], title: str) -> None:
            lines.append("")
            lines.append(title)
            lane_ids = {sp["id"] for sp in spans}
            depth_cache: dict[int, int] = {}

            def depth_of(sp: dict) -> int:
                sid = sp["id"]
                if sid in depth_cache:
                    return depth_cache[sid]
                parent = sp.get("parent")
                d = (
                    0
                    if parent is None or parent not in lane_ids
                    else depth_of(by_id[parent]) + 1
                )
                depth_cache[sid] = d
                return d

            for sp in spans:
                indent = "  " * depth_of(sp)
                attrs = sp.get("attrs") or {}
                shown = (
                    "  [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
                    if attrs
                    else ""
                )
                parent = sp.get("parent")
                cross = ""
                if parent is not None and parent not in lane_ids and parent in by_id:
                    # Cross-lane link: a worker root dispatched by a
                    # coordinator span — annotate instead of flattening.
                    cross = f"  <- {by_id[parent]['name']}#{parent}"
                lines.append(
                    f"  {indent}{sp['name']:<24s} "
                    f"{sp.get('dur_us', 0.0) / 1e3:9.2f} ms{shown}{cross}"
                )

        coordinator = lanes.pop(None, [])
        if coordinator:
            render_lane(coordinator, "spans (coordinator):" if multi else "spans:")
        for pid in sorted(lanes):
            spans = lanes[pid]
            worker = next(
                (sp.get("worker") for sp in spans if sp.get("worker") is not None),
                None,
            )
            title = (
                f"spans (worker {worker}, pid {pid}):"
                if worker is not None
                else f"spans (worker pid {pid}):"
            )
            render_lane(spans, title)

    stats_gauges = {
        m["name"]: m.get("value")
        for m in trace.metrics
        if m.get("kind") == "gauge" and m.get("name", "").startswith("planner.")
    }
    if stats_gauges:
        lines.append("")
        lines.append("planner stats (Table 2 view):")
        for name in sorted(stats_gauges):
            value = stats_gauges[name]
            shown = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name.removeprefix('planner.'):<22s} {shown}")

    histograms = [m for m in trace.metrics if m.get("kind") == "histogram"]
    counters = [
        m for m in trace.metrics
        if m.get("kind") == "counter" and m.get("value", 0)
    ]
    if counters:
        lines.append("")
        lines.append("counters:")
        for m in sorted(counters, key=lambda m: m["name"]):
            lines.append(f"  {m['name']:<28s} {m['value']}")
    for hist in histograms:
        if not hist.get("count"):
            continue
        lines.append("")
        mean = hist["sum"] / hist["count"]
        lines.append(
            f"{hist['name']}: n={hist['count']} mean={mean:g} "
            f"min={hist['min']:g} max={hist['max']:g}"
        )
        buckets = [(b, c) for b, c in hist.get("buckets", []) if c]
        peak = max((c for _b, c in buckets), default=1)
        width = 40
        for bound, count in buckets:
            label = f"<= {bound:g}" if bound is not None else "overflow"
            bar = "#" * max(1, round(width * count / peak))
            lines.append(f"  {label:>10s}: {count:8d} |{bar}")

    if trace.events or trace.trace_summary:
        lines.append("")
        lines.append("search events:")
        counts = trace.trace_summary.get("counters")
        if counts is None:
            counts = {}
            for ev in trace.events:
                counts[ev["kind"]] = counts.get(ev["kind"], 0) + 1
        for kind in ("create", "expand", "prune", "terminal"):
            lines.append(f"  {kind:9s}: {counts.get(kind, 0)}")
        reasons = trace.trace_summary.get("prune_reasons")
        if reasons is None:
            reasons = {}
            for ev in trace.events:
                if ev["kind"] == "prune" and ev.get("reason"):
                    reasons[ev["reason"]] = reasons.get(ev["reason"], 0) + 1
        if reasons:
            lines.append("  prune reasons:")
            for reason in sorted(reasons, key=reasons.get, reverse=True):
                lines.append(f"    {reason}: {reasons[reason]}")
    return "\n".join(lines)
