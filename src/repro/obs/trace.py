"""Structured search traces (migrated from ``repro.planner.trace``).

Optional instrumentation of the RG phase: every node creation, pruning
decision (with its reason), expansion, and the terminal event are
recorded, giving the observability the paper's Figs. 7–8 sketch by hand.
Traces are bounded (a ring of the most recent events plus total counters)
so tracing a large search cannot exhaust memory.

The prune *reason* is a first-class event field — it is never re-parsed
out of the human-readable ``detail`` string, so reason tags containing
``:`` (or any other separator) survive aggregation intact.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "SearchTrace"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One search event."""

    kind: str  # 'create' | 'expand' | 'prune' | 'terminal'
    action: str | None  # action name (None for the root / expansions)
    detail: str  # human-readable specifics (prune specifics, f-values, ...)
    depth: int
    reason: str | None = None  # prune reason tag; None for non-prune events
    ts: float = 0.0  # perf_counter seconds at record time


@dataclass
class SearchTrace:
    """Bounded event recorder with aggregate counters."""

    max_events: int = 2000
    events: deque = field(default_factory=deque)
    counters: Counter = field(default_factory=Counter)
    prune_reasons: Counter = field(default_factory=Counter)

    def record(
        self,
        kind: str,
        action: str | None,
        detail: str,
        depth: int,
        reason: str | None = None,
    ) -> None:
        self.counters[kind] += 1
        if kind == "prune":
            # The explicit reason tag; a reason-less prune is counted
            # verbatim under its detail string (never split on ':').
            self.prune_reasons[reason if reason is not None else detail] += 1
        if len(self.events) >= self.max_events:
            self.events.popleft()
        self.events.append(
            TraceEvent(kind, action, detail, depth, reason, time.perf_counter())
        )

    # -- convenience recorders (keep call sites terse) -----------------------

    def created(self, action: str, f: float, depth: int) -> None:
        self.record("create", action, f"f={f:g}", depth)

    def expanded(self, props: int, f: float, depth: int) -> None:
        self.record("expand", None, f"open={props} f={f:g}", depth)

    def pruned(self, action: str, reason: str, depth: int, detail: str = "") -> None:
        self.record("prune", action, detail or reason, depth, reason=reason)

    def terminal(self, cost: float, depth: int) -> None:
        self.record("terminal", None, f"cost={cost:g}", depth)

    # -- reporting -------------------------------------------------------------

    def summary(self) -> str:
        lines = ["search trace summary:"]
        for kind in ("create", "expand", "prune", "terminal"):
            lines.append(f"  {kind:9s}: {self.counters.get(kind, 0)}")
        if self.prune_reasons:
            lines.append("  prune reasons:")
            for reason, count in self.prune_reasons.most_common():
                lines.append(f"    {reason}: {count}")
        return "\n".join(lines)

    def tail(self, n: int = 20) -> list[TraceEvent]:
        return list(self.events)[-n:]
