"""Named metrics: counters, gauges, and fixed-bucket histograms.

The registry is the planner's single source of named numbers: phase
timings and Table-2 counts are published as gauges (``planner.*``), the
RG records work distributions (replay tail lengths, branching factors,
f-values, per-action replay microseconds) as histograms, and prune
decisions as counters.  :class:`~repro.planner.PlannerStats` is a thin
view over the ``planner.*`` gauges — see ``PlannerStats.publish`` /
``PlannerStats.from_metrics``.

Everything is plain in-process Python — no dependencies, no locks (the
planner is single-threaded), no sampling.  Histograms use fixed upper
bounds chosen at first registration; values beyond the last bound land in
an overflow bucket, so recording is O(len(bounds)) worst case and
allocation-free.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BOUNDS"]

DEFAULT_BOUNDS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


@dataclass(slots=True)
class Counter:
    """Monotonically increasing count."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {"name": self.name, "kind": "counter", "value": self.value}


@dataclass(slots=True)
class Gauge:
    """Last-written value (phase timings, graph sizes, ...)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"name": self.name, "kind": "gauge", "value": self.value}


@dataclass(slots=True)
class Histogram:
    """Fixed-bucket distribution with exact count/sum/min/max."""

    name: str
    bounds: tuple[float, ...] = DEFAULT_BOUNDS
    bucket_counts: list[int] = field(default_factory=list)  # len(bounds) + 1
    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        if self.count == 0 or value < self.min:
            self.min = value
        if self.count == 0 or value > self.max:
            self.max = value
        self.count += 1
        self.total += value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, count)`` pairs; the overflow bound is ``inf``."""
        out = [(float(b), c) for b, c in zip(self.bounds, self.bucket_counts)]
        out.append((float("inf"), self.bucket_counts[-1]))
        return out

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": [[b if b != float("inf") else None, c] for b, c in self.buckets()],
        }


class MetricsRegistry:
    """Create-on-first-use store of named metrics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def _register(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._register(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._register(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: tuple[float, ...] | None = None) -> Histogram:
        return self._register(
            name, Histogram, lambda: Histogram(name, bounds or DEFAULT_BOUNDS)
        )

    # -- convenience one-liners ------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- cross-process merging -------------------------------------------------

    def merge_snapshot(self, snapshot: list[dict]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Used by the parallel executor (:mod:`repro.parallel`) to merge
        each worker's metrics back into the parent: counters and
        histograms *accumulate* (every worker's work is counted exactly
        once, because workers snapshot a registry that is fresh per
        task), while gauges are last-write-wins — callers merge worker
        snapshots in deterministic task order, so the surviving gauge
        value is the last task's, independent of completion order.

        Raises
        ------
        TypeError
            When a name is already registered under a different metric
            kind, or a histogram arrives with mismatched bucket bounds.
        """
        for record in snapshot:
            kind, name = record["kind"], record["name"]
            if kind == "counter":
                self.counter(name).inc(int(record["value"]))
            elif kind == "gauge":
                self.gauge(name).set(record["value"])
            elif kind == "histogram":
                bounds = tuple(
                    float(b) for b, _ in record["buckets"] if b is not None
                )
                hist = self.histogram(name, bounds)
                if hist.bounds != bounds:
                    raise TypeError(
                        f"histogram {name!r} bucket bounds differ: "
                        f"{hist.bounds} vs {bounds}"
                    )
                counts = [int(c) for _, c in record["buckets"]]
                for i, c in enumerate(counts):
                    hist.bucket_counts[i] += c
                if record["count"]:
                    if hist.count == 0:
                        hist.min = record["min"]
                        hist.max = record["max"]
                    else:
                        hist.min = min(hist.min, record["min"])
                        hist.max = max(hist.max, record["max"])
                hist.count += int(record["count"])
                hist.total += record["sum"]
            else:
                raise TypeError(f"unknown metric kind {kind!r} for {name!r}")

    # -- reporting -------------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """JSON-ready list of all metrics, sorted by name."""
        return [self._metrics[k].snapshot() for k in sorted(self._metrics)]

    def reset(self) -> None:
        """Zero every metric, keeping registrations (and histogram bounds)."""
        for metric in self._metrics.values():
            if isinstance(metric, Counter):
                metric.value = 0
            elif isinstance(metric, Gauge):
                metric.value = 0.0
            else:
                metric.bucket_counts = [0] * (len(metric.bounds) + 1)
                metric.count = 0
                metric.total = 0.0
                metric.min = 0.0
                metric.max = 0.0

    def render_text(self) -> str:
        """Plain-text metric listing (``repro plan --metrics``)."""
        lines = []
        for snap in self.snapshot():
            if snap["kind"] == "histogram":
                lines.append(
                    f"{snap['name']}: count={snap['count']} mean="
                    f"{(snap['sum'] / snap['count']) if snap['count'] else 0.0:g} "
                    f"min={snap['min']:g} max={snap['max']:g}"
                )
            else:
                value = snap["value"]
                shown = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"{snap['name']}: {shown}")
        return "\n".join(lines) if lines else "(no metrics recorded)"
