"""Hierarchical wall-clock spans.

A span is one timed region of planner work — a phase (compile, PLRG,
SLRG, RG, post-opt), a validation pass, or a whole experiment-harness
scenario run.  Spans nest: the recorder keeps a stack, so a span opened
while another is active becomes its child, and the resulting forest maps
directly onto the Chrome trace-event timeline.

Timestamps are ``time.perf_counter`` seconds; they are monotonic and
comparable only within one process, which is all a trace file needs
(exporters re-base them to zero).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Span", "SpanRecorder"]


@dataclass(slots=True)
class Span:
    """One timed, attributed region of work."""

    id: int
    name: str
    start_s: float
    end_s: float | None = None
    parent: int | None = None  # id of the enclosing span, None for roots
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span duration in seconds (0.0 while still open)."""
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1e3


class SpanRecorder:
    """Append-only span store with an active-span stack."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[int] = []

    def __len__(self) -> int:
        return len(self.spans)

    @property
    def current_id(self) -> int | None:
        """Id of the innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child of the currently active span; closes on exit."""
        sp = Span(
            id=len(self.spans),
            name=name,
            start_s=time.perf_counter(),
            parent=self._stack[-1] if self._stack else None,
            attrs=dict(attrs),
        )
        self.spans.append(sp)
        self._stack.append(sp.id)
        try:
            yield sp
        finally:
            sp.end_s = time.perf_counter()
            self._stack.pop()

    def children(self, span_id: int | None) -> list[Span]:
        return [s for s in self.spans if s.parent == span_id]

    def render_tree(self) -> str:
        """Indented span forest with millisecond durations."""
        lines: list[str] = []

        def walk(parent: int | None, indent: int) -> None:
            for sp in self.children(parent):
                attrs = ""
                if sp.attrs:
                    attrs = "  [" + ", ".join(
                        f"{k}={v}" for k, v in sorted(sp.attrs.items())
                    ) + "]"
                lines.append(f"{'  ' * indent}{sp.name:<24s} {sp.duration_ms:9.2f} ms{attrs}")
                walk(sp.id, indent + 1)

        walk(None, 0)
        return "\n".join(lines) if lines else "(no spans recorded)"
