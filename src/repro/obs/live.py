"""The ``--live`` terminal progress view over a streaming fleet.

:class:`LiveMonitor` is the glue between a frame stream (worker pushes
multiplexed by ``WorkerPool.map(..., on_frame=...)``, or synthetic
frames from a serial driver) and a terminal: it folds frames into a
:class:`~repro.obs.StreamAggregator` and repaints a compact table — one
row per worker, tasks done/total, the task each worker is on, and the
aggregate ETA / cache-hit-rate / repair-TTR headline — at a bounded
rate.  On a TTY the table repaints in place with ANSI cursor movement;
on anything else (CI logs, pipes) it degrades to one summary line per
repaint interval so logs stay readable.

The monitor writes to *stderr* by default: every streaming command
(``simulate``, ``controller``, ``bench``) promises byte-identical
*stdout* across runs, and the live view must not break that.
"""

from __future__ import annotations

import sys
import time

from .stream import StreamAggregator

__all__ = ["LiveMonitor"]

_PAINT_INTERVAL_S = 0.2
_NONTTY_INTERVAL_S = 2.0


def _fmt_eta(eta_s: float | None) -> str:
    if eta_s is None:
        return "--"
    if eta_s >= 60:
        return f"{int(eta_s // 60)}m{int(eta_s % 60):02d}s"
    return f"{eta_s:.1f}s"


class LiveMonitor:
    """Render a live fleet table from telemetry frames.

    Pass :meth:`on_frame` as the ``on_frame`` callback of
    ``WorkerPool.map``; serial drivers call it directly with worker 0
    frames.  Call :meth:`finish` when the run completes to paint the
    final state and release the terminal.
    """

    def __init__(self, out=None, aggregator: StreamAggregator | None = None):
        self.aggregator = aggregator or StreamAggregator()
        self._out = out if out is not None else sys.stderr
        self._isatty = bool(getattr(self._out, "isatty", lambda: False)())
        self._paint_interval = _PAINT_INTERVAL_S if self._isatty else _NONTTY_INTERVAL_S
        self._last_paint = 0.0
        self._painted_lines = 0

    def on_frame(self, worker: int, frame: dict) -> None:
        self.aggregator.on_frame(worker, frame)
        now = time.monotonic()
        if now - self._last_paint >= self._paint_interval:
            self._last_paint = now
            self.paint()

    # -- rendering -------------------------------------------------------------

    def headline(self) -> str:
        agg = self.aggregator
        parts = [f"live: {agg.tasks_done}/{agg.tasks_total} tasks"]
        parts.append(f"eta {_fmt_eta(agg.eta_s())}")
        rate = agg.cache_hit_rate()
        if rate is not None:
            parts.append(f"cache {rate * 100.0:.0f}%")
        ttr = agg.repair_ttr_ms()
        if ttr is not None:
            parts.append(f"ttr {ttr:.0f}ms")
        if agg.heartbeat_missed:
            parts.append(f"heartbeats missed {agg.heartbeat_missed}")
        if agg.respawned:
            parts.append(f"workers respawned {agg.respawned}")
        if agg.retried:
            parts.append(f"tasks retried {agg.retried}")
        if agg.quarantined:
            parts.append(f"tasks quarantined {agg.quarantined}")
        return "  ".join(parts)

    def render(self) -> str:
        """The full table: headline plus one row per worker."""
        lines = [self.headline()]
        for worker in sorted(self.aggregator.workers):
            view = self.aggregator.workers[worker]
            state = f"on {view.label}" if view.label else "idle"
            if view.missed:
                state = f"STALLED ({view.missed} heartbeats missed)"
            lines.append(
                f"  w{view.worker} pid {view.pid or '?':<7} "
                f"{view.done}/{view.total or '?'}  {state}"
            )
        return "\n".join(lines)

    def paint(self) -> None:
        if self._isatty:
            text = self.render()
            lines = text.count("\n") + 1
            if self._painted_lines:
                # Cursor to the start of the previous paint, clear down.
                self._out.write(f"\x1b[{self._painted_lines}F\x1b[J")
            self._out.write(text + "\n")
            self._painted_lines = lines
        else:
            self._out.write(self.headline() + "\n")
        self._out.flush()

    def finish(self) -> None:
        """Final paint; leaves the cursor below the table."""
        self.paint()
        self._painted_lines = 0
