"""Cost-tradeoff web-service scenario (paper Fig. 5, "Scenario 2").

A text stream ``T`` must travel from a server to a client.  The network
offers two routes: a *long* route of three links and a *short* route of
two links.  Two deployment strategies compete:

* send ``T`` raw — three crossings, no components;
* compress at the source (*WZip*), send the half-bandwidth ``Z`` stream,
  decompress at the client (*WUnzip*) — two crossings plus two components.

Which plan is cheaper depends on the relative cost of link bandwidth and
node CPU, which the builders expose as weights: crossing cost is
``1 + link_weight·bw/10`` and placement cost is ``1 + cpu_weight·bw/10``.
Sweeping the weights flips the optimizer between the two configurations —
the paper's "tradeoffs can be performed by introducing a cost function
that depends on resource consumption".
"""

from __future__ import annotations

from ..model import AppSpec, ComponentSpec, Leveling, LevelSpec, bandwidth_interface
from ..network import Network

__all__ = [
    "DEFAULT_WS_BW",
    "build_app",
    "build_network",
    "ws_leveling",
]

DEFAULT_WS_BW = 100.0
"""The text stream's bandwidth (the client demands all of it)."""

WS_ZIP_RATIO = 0.5


def build_app(
    server_node: str,
    client_node: str,
    bandwidth: float = DEFAULT_WS_BW,
    link_weight: float = 1.0,
    cpu_weight: float = 1.0,
    name: str = "webservice-tradeoff",
) -> AppSpec:
    """The Fig. 5 application with parametric cost weights."""
    interfaces = [
        bandwidth_interface("T", cross_cost=f"1 + {link_weight:g}*T.ibw/10"),
        bandwidth_interface("Z", cross_cost=f"1 + {link_weight:g}*Z.ibw/10"),
    ]
    components = [
        ComponentSpec.parse(
            "WServer",
            implements=["T"],
            effects=[f"T.ibw := {bandwidth:g}"],
        ),
        ComponentSpec.parse(
            "WClient",
            requires=["T"],
            conditions=[f"T.ibw >= {bandwidth:g}"],
            cost="1",
        ),
        ComponentSpec.parse(
            "WZip",
            requires=["T"],
            implements=["Z"],
            conditions=["Node.cpu >= T.ibw/10"],
            effects=[
                f"Z.ibw := T.ibw*{WS_ZIP_RATIO:g}",
                "Node.cpu -= T.ibw/10",
            ],
            cost=f"1 + {cpu_weight:g}*T.ibw/10",
        ),
        ComponentSpec.parse(
            "WUnzip",
            requires=["Z"],
            implements=["T"],
            conditions=["Node.cpu >= Z.ibw/5"],
            effects=[
                f"T.ibw := Z.ibw/{WS_ZIP_RATIO:g}",
                "Node.cpu -= Z.ibw/5",
            ],
            cost=f"1 + {cpu_weight:g}*Z.ibw/10",
        ),
    ]
    return AppSpec.build(
        name=name,
        interfaces=interfaces,
        components=components,
        initial=[("WServer", server_node)],
        goals=[("WClient", client_node)],
    )


def build_network(
    node_cpu: float = 100.0,
    long_bw: float = 200.0,
    short_bw: float = 60.0,
    name: str = "fig5",
) -> Network:
    """The two-route network of Fig. 5.

    ``server — a — b — client`` is the three-link route with ample
    bandwidth; ``server — c — client`` is the two-link route whose links
    (default 60 units) carry the compressed ``Z`` stream (50 units) but
    not the raw ``T`` stream (100 units).  Raw delivery therefore needs
    three crossings while compressed delivery needs two crossings plus the
    Zip/Unzip pair — the paper's exact tradeoff.
    """
    net = Network(name)
    for n in ("server", "a", "b", "c", "client"):
        net.add_node(n, {"cpu": node_cpu})
    net.add_link("server", "a", {"lbw": long_bw}, labels={"WAN"})
    net.add_link("a", "b", {"lbw": long_bw}, labels={"WAN"})
    net.add_link("b", "client", {"lbw": long_bw}, labels={"WAN"})
    net.add_link("server", "c", {"lbw": short_bw}, labels={"WAN"})
    net.add_link("c", "client", {"lbw": short_bw}, labels={"WAN"})
    return net


def ws_leveling(bandwidth: float = DEFAULT_WS_BW, name: str = "ws") -> Leveling:
    """One cutpoint at the demanded bandwidth for both streams.

    This makes the cost lower bound reflect real bandwidth (the committed
    levels are ``[bw, ∞)`` and ``[bw/2, ∞)``), so the optimizer can trade
    crossings against compression components.
    """
    return Leveling(
        {
            "T.ibw": LevelSpec((bandwidth,)),
            "Z.ibw": LevelSpec((bandwidth * WS_ZIP_RATIO,)),
        },
        name=name,
    )
