"""Grid task-graph domain (the paper's introduction scenario).

A grid workflow reads a logical dataset, filters it, runs a compute task,
and delivers the result to a user site, subject to a latency deadline —
"deploying the task graph ... in a way that minimizes resource consumption
while meeting specified deadline goals" (paper §1).

The domain exercises planner features beyond the media benchmark:

* **chained transformations with shrinking bandwidth** — Filter keeps 40%
  of the raw volume, Compute emits a small result stream;
* **an accumulating, upgradable property** — every link crossing adds the
  link's ``delay`` to the stream's ``lat`` property, and the consumer
  demands ``Result.lat <= deadline``.  Deadline violations are detected
  during plan-tail replay (the paper's "discarding of partial plans whose
  total latency exceeds a given limit");
* **data-transfer substitution** — the paper's GridFTP staging of logical
  files to remote sites maps onto ``cross`` actions for the ``Raw``
  stream, and the optional ``Pack``/``Unpack`` pair models compressed
  transfers.
"""

from __future__ import annotations

from ..expr import parse_assign, parse_expr
from ..model import (
    AppSpec,
    ComponentSpec,
    InterfaceType,
    Leveling,
    LevelSpec,
    PropertySpec,
)
from ..network import CPU, LINK_BANDWIDTH, MEMORY, Network, ResourceDecl, ResourceScope

__all__ = [
    "LINK_DELAY",
    "DEFAULT_RAW_BW",
    "DEFAULT_DEADLINE",
    "build_app",
    "build_network",
    "grid_leveling",
]

LINK_DELAY = ResourceDecl("delay", ResourceScope.LINK, consumable=False)
"""Per-link latency (milliseconds); accumulated, not consumed."""

DEFAULT_RAW_BW = 100.0
DEFAULT_DEADLINE = 40.0

FILTER_RATIO = 0.4
RESULT_RATIO = 0.1
PACK_RATIO = 0.5


def _stream(name: str, cross_cost: str) -> InterfaceType:
    """A bandwidth stream that also accumulates latency on each crossing."""
    return InterfaceType(
        name=name,
        properties=(
            PropertySpec("ibw", degradable=True),
            PropertySpec("lat", degradable=False, upgradable=True),
        ),
        cross_effects=tuple(
            parse_assign(e)
            for e in (
                f"{name}.ibw' := min({name}.ibw, Link.lbw)",
                f"Link.lbw' -= min({name}.ibw, Link.lbw)",
                f"{name}.lat' := {name}.lat + Link.delay",
            )
        ),
        cross_cost=parse_expr(cross_cost),
    )


def build_app(
    source_node: str,
    user_node: str,
    raw_bw: float = DEFAULT_RAW_BW,
    deadline: float = DEFAULT_DEADLINE,
    min_result_bw: float | None = None,
    with_pack: bool = True,
    with_memory: bool = False,
    name: str = "grid-workflow",
) -> AppSpec:
    """The grid workflow with the dataset and user pinned to sites.

    ``with_memory`` adds a node-memory dimension: the ComputeTask buffers
    the filtered dataset (``Node.mem >= Filtered.ibw``), exercising the
    model's support for additional node resources (paper §2.1 "additional
    resources such as node memory ... may be relevant").
    """
    if min_result_bw is None:
        min_result_bw = raw_bw * FILTER_RATIO * RESULT_RATIO

    interfaces = [
        _stream("Raw", "1 + Raw.ibw/10"),
        _stream("Filtered", "1 + Filtered.ibw/10"),
        _stream("Result", "1 + Result.ibw/10"),
        _stream("Packed", "1 + Packed.ibw/10"),
    ]
    components = [
        ComponentSpec.parse(
            "DataSource",
            implements=["Raw"],
            effects=[f"Raw.ibw := {raw_bw:g}", "Raw.lat := 0"],
        ),
        ComponentSpec.parse(
            "FilterTask",
            requires=["Raw"],
            implements=["Filtered"],
            conditions=["Node.cpu >= Raw.ibw/4"],
            effects=[
                f"Filtered.ibw := Raw.ibw*{FILTER_RATIO:g}",
                "Filtered.lat := Raw.lat + 2",
                "Node.cpu -= Raw.ibw/4",
            ],
            cost="1 + Raw.ibw/10",
        ),
        ComponentSpec.parse(
            "ComputeTask",
            requires=["Filtered"],
            implements=["Result"],
            conditions=(
                ["Node.cpu >= Filtered.ibw/2", "Node.mem >= Filtered.ibw"]
                if with_memory
                else ["Node.cpu >= Filtered.ibw/2"]
            ),
            effects=(
                [
                    f"Result.ibw := Filtered.ibw*{RESULT_RATIO:g}",
                    "Result.lat := Filtered.lat + 5",
                    "Node.cpu -= Filtered.ibw/2",
                    "Node.mem -= Filtered.ibw",
                ]
                if with_memory
                else [
                    f"Result.ibw := Filtered.ibw*{RESULT_RATIO:g}",
                    "Result.lat := Filtered.lat + 5",
                    "Node.cpu -= Filtered.ibw/2",
                ]
            ),
            cost="1 + Filtered.ibw/5",
        ),
        ComponentSpec.parse(
            "Consumer",
            requires=["Result"],
            conditions=[
                f"Result.ibw >= {min_result_bw:g}",
                f"Result.lat <= {deadline:g}",
            ],
            cost="1",
        ),
    ]
    if with_pack:
        components += [
            ComponentSpec.parse(
                "Pack",
                requires=["Raw"],
                implements=["Packed"],
                conditions=["Node.cpu >= Raw.ibw/10"],
                effects=[
                    f"Packed.ibw := Raw.ibw*{PACK_RATIO:g}",
                    "Packed.lat := Raw.lat + 1",
                    "Node.cpu -= Raw.ibw/10",
                ],
                cost="1 + Raw.ibw/10",
            ),
            ComponentSpec.parse(
                "Unpack",
                requires=["Packed"],
                implements=["Raw"],
                conditions=["Node.cpu >= Packed.ibw/10"],
                effects=[
                    f"Raw.ibw := Packed.ibw/{PACK_RATIO:g}",
                    "Raw.lat := Packed.lat + 1",
                    "Node.cpu -= Packed.ibw/10",
                ],
                cost="1 + Packed.ibw/10",
            ),
        ]
    resources = (CPU, LINK_BANDWIDTH, LINK_DELAY)
    if with_memory:
        resources = (CPU, MEMORY, LINK_BANDWIDTH, LINK_DELAY)
    return AppSpec.build(
        name=name,
        interfaces=interfaces,
        components=components,
        resources=resources,
        initial=[("DataSource", source_node)],
        goals=[("Consumer", user_node)],
    )


def build_network(
    sites: int = 4,
    node_cpu: float = 50.0,
    node_mem: float | None = None,
    wan_bw: float = 60.0,
    wan_delay: float = 8.0,
    lan_bw: float = 200.0,
    lan_delay: float = 1.0,
    name: str = "grid-sites",
) -> Network:
    """A chain of grid sites: each site is a 2-node LAN, sites joined by WAN.

    Node ids: ``site{i}_head`` (WAN-attached) and ``site{i}_worker``.
    """
    net = Network(name)
    head_res = {"cpu": node_cpu}
    worker_res = {"cpu": node_cpu * 2}
    if node_mem is not None:
        head_res["mem"] = node_mem
        worker_res["mem"] = node_mem * 4  # workers carry the buffer RAM
    for i in range(sites):
        net.add_node(f"site{i}_head", dict(head_res), labels={"head"})
        net.add_node(f"site{i}_worker", dict(worker_res), labels={"worker"})
        net.add_link(
            f"site{i}_head",
            f"site{i}_worker",
            {"lbw": lan_bw, "delay": lan_delay},
            labels={"LAN"},
        )
        if i > 0:
            net.add_link(
                f"site{i - 1}_head",
                f"site{i}_head",
                {"lbw": wan_bw, "delay": wan_delay},
                labels={"WAN"},
            )
    return net


def grid_leveling(raw_bw: float = DEFAULT_RAW_BW, name: str = "grid") -> Leveling:
    """Cutpoints at the workflow's natural operating points.

    Raw at {half, full}; downstream streams proportional under the filter,
    result, and pack ratios.
    """
    raw = LevelSpec((round(raw_bw * 0.5, 9), raw_bw))
    return Leveling(
        {
            "Raw.ibw": raw,
            "Filtered.ibw": raw.scaled(FILTER_RATIO),
            "Result.ibw": raw.scaled(FILTER_RATIO * RESULT_RATIO),
            "Packed.ibw": raw.scaled(PACK_RATIO),
        },
        name=name,
    )
