"""The paper's media-stream-delivery application (Figs. 1, 2, 6).

A *Server* produces a combined media stream ``M`` (images + text) that a
*Client* must receive at a minimum bandwidth.  When the direct path lacks
bandwidth, the stream can be split (*Splitter*) into a text stream ``T``
and an image stream ``I``, the text stream compressed (*Zip*) into ``Z``
and decompressed (*Unzip*), and the parts recombined (*Merger*).

Constants are reverse-engineered from the paper's numbers and are mutually
consistent:

* The Merger condition ``T.ibw*3 == I.ibw*7`` fixes the split ratio at
  T : I = 7 : 3, so the Splitter emits ``T = 0.7·M`` and ``I = 0.3·M``.
* Zip halves the text stream (``Z = T/2``): with the optimal 90 units of
  M, the compressed path carries Z = 31.5 and I = 27 — the paper's
  "27 + 31.5 = 58.5 units of LAN bandwidth".
* The Splitter consumes ``M/5`` CPU ("transformation of 200 units of M by
  the splitter requires 40 units of CPU") and Zip consumes ``T/10``;
  with the default 30 CPU per node, a node can split+zip up to
  ``30 / (1/5 + 0.7/10) ≈ 111`` units of M — the paper's "CPU resources
  ... sufficient to process up to 111 units of the media stream".
* Placement and crossing costs are ``1 + bandwidth/10`` — "proportional
  to the processed/transferred bandwidth", favouring few components and
  low bandwidth use.
"""

from __future__ import annotations

from ..model import (
    AppSpec,
    ComponentSpec,
    Leveling,
    LevelSpec,
    bandwidth_interface,
)

__all__ = [
    "SPLIT_T_RATIO",
    "SPLIT_I_RATIO",
    "ZIP_RATIO",
    "DEFAULT_SOURCE_BW",
    "DEFAULT_DEMAND",
    "DEFAULT_NODE_CPU",
    "build_app",
    "proportional_leveling",
]

SPLIT_T_RATIO = 0.7
"""Fraction of the media stream that is text (from the Merger condition)."""

SPLIT_I_RATIO = 0.3
"""Fraction of the media stream that is images."""

ZIP_RATIO = 0.5
"""Compression ratio of the Zip component (Z = T/2)."""

DEFAULT_SOURCE_BW = 200.0
"""The Server can produce up to 200 units of the M stream (§4.1)."""

DEFAULT_DEMAND = 90.0
"""The Client requires at least 90 units of M bandwidth (§4.1)."""

DEFAULT_NODE_CPU = 30.0
"""Per-node CPU such that split+zip handles ≈111 units of M (§4.1)."""


def build_app(
    server_node: str,
    client_node: str,
    source_bw: float = DEFAULT_SOURCE_BW,
    demand: float = DEFAULT_DEMAND,
    name: str = "media-delivery",
) -> AppSpec:
    """The media-delivery application with Server/Client pinned to nodes."""
    interfaces = [
        bandwidth_interface("M", cross_cost="1 + M.ibw/10"),
        bandwidth_interface("T", cross_cost="1 + T.ibw/10"),
        bandwidth_interface("I", cross_cost="1 + I.ibw/10"),
        bandwidth_interface("Z", cross_cost="1 + Z.ibw/10"),
    ]
    components = [
        ComponentSpec.parse(
            "Server",
            implements=["M"],
            effects=[f"M.ibw := {source_bw:g}"],
        ),
        ComponentSpec.parse(
            "Client",
            requires=["M"],
            conditions=[f"M.ibw >= {demand:g}"],
            cost="1",
        ),
        ComponentSpec.parse(
            "Splitter",
            requires=["M"],
            implements=["T", "I"],
            conditions=["Node.cpu >= M.ibw/5"],
            effects=[
                f"T.ibw := M.ibw*{SPLIT_T_RATIO:g}",
                f"I.ibw := M.ibw*{SPLIT_I_RATIO:g}",
                "Node.cpu -= M.ibw/5",
            ],
            cost="1 + M.ibw/10",
        ),
        ComponentSpec.parse(
            "Zip",
            requires=["T"],
            implements=["Z"],
            conditions=["Node.cpu >= T.ibw/10"],
            effects=[
                f"Z.ibw := T.ibw*{ZIP_RATIO:g}",
                "Node.cpu -= T.ibw/10",
            ],
            cost="1 + T.ibw/10",
        ),
        ComponentSpec.parse(
            "Unzip",
            requires=["Z"],
            implements=["T"],
            conditions=["Node.cpu >= Z.ibw/5"],
            effects=[
                f"T.ibw := Z.ibw/{ZIP_RATIO:g}",
                "Node.cpu -= Z.ibw/5",
            ],
            cost="1 + Z.ibw/10",
        ),
        ComponentSpec.parse(
            "Merger",
            requires=["T", "I"],
            implements=["M"],
            conditions=[
                "Node.cpu >= (T.ibw + I.ibw)/5",
                "T.ibw*3 == I.ibw*7",
            ],
            effects=[
                "M.ibw := T.ibw + I.ibw",
                "Node.cpu -= (T.ibw + I.ibw)/5",
            ],
            cost="1 + (I.ibw + T.ibw)/10",
        ),
    ]
    return AppSpec.build(
        name=name,
        interfaces=interfaces,
        components=components,
        initial=[("Server", server_node)],
        goals=[("Client", client_node)],
    )


def proportional_leveling(
    m_cutpoints: tuple[float, ...],
    link_cutpoints: tuple[float, ...] = (),
    name: str = "custom",
) -> Leveling:
    """A leveling with T/I/Z cutpoints proportional to the M cutpoints.

    This is the paper's Table 1 convention: "Bandwidth levels of
    interfaces T, I, and Z are proportional to those of the M stream."
    """
    specs: dict[str, LevelSpec] = {}
    if m_cutpoints:
        m_spec = LevelSpec(tuple(m_cutpoints))
        specs["M.ibw"] = m_spec
        specs["T.ibw"] = m_spec.scaled(SPLIT_T_RATIO)
        specs["I.ibw"] = m_spec.scaled(SPLIT_I_RATIO)
        specs["Z.ibw"] = m_spec.scaled(SPLIT_T_RATIO * ZIP_RATIO)
    if link_cutpoints:
        specs["Link.lbw"] = LevelSpec(tuple(link_cutpoints))
    return Leveling(specs, name=name)
