"""Component choice among compatible implementations (paper §1).

The CPP explicitly includes "choosing amongst compatible components": the
same logical service may have several implementations with different
resource profiles, and the planner must pick per deployment.  This domain
offers two complete compression pipelines for a text stream:

* **FastZip / FastUnzip** — cheap CPU (``T/20``), weak compression
  (ratio 0.8);
* **DeepZip / DeepUnzip** — expensive CPU (``T/4``), strong compression
  (ratio 0.4).

Depending on the bottleneck — link bandwidth vs node CPU — either variant
(or raw delivery) is the right choice, and the cost optimizer picks it.
"""

from __future__ import annotations

from ..model import AppSpec, ComponentSpec, Leveling, LevelSpec, bandwidth_interface
from ..network import Network

__all__ = [
    "FAST_RATIO",
    "DEEP_RATIO",
    "DEFAULT_BW",
    "build_app",
    "build_network",
    "variants_leveling",
]

FAST_RATIO = 0.8
DEEP_RATIO = 0.4
DEFAULT_BW = 100.0


def build_app(
    server_node: str,
    client_node: str,
    bandwidth: float = DEFAULT_BW,
    name: str = "variant-choice",
) -> AppSpec:
    """Text delivery with two alternative compression pipelines."""
    interfaces = [
        bandwidth_interface("T", cross_cost="1 + T.ibw/10"),
        bandwidth_interface("FZ", cross_cost="1 + FZ.ibw/10"),
        bandwidth_interface("DZ", cross_cost="1 + DZ.ibw/10"),
    ]
    components = [
        ComponentSpec.parse(
            "TServer", implements=["T"], effects=[f"T.ibw := {bandwidth:g}"]
        ),
        ComponentSpec.parse(
            "TClient",
            requires=["T"],
            conditions=[f"T.ibw >= {bandwidth:g}"],
            cost="1",
        ),
        ComponentSpec.parse(
            "FastZip",
            requires=["T"],
            implements=["FZ"],
            conditions=["Node.cpu >= T.ibw/20"],
            effects=[f"FZ.ibw := T.ibw*{FAST_RATIO:g}", "Node.cpu -= T.ibw/20"],
            cost="1 + T.ibw/20",
        ),
        ComponentSpec.parse(
            "FastUnzip",
            requires=["FZ"],
            implements=["T"],
            conditions=["Node.cpu >= FZ.ibw/20"],
            effects=[f"T.ibw := FZ.ibw/{FAST_RATIO:g}", "Node.cpu -= FZ.ibw/20"],
            cost="1 + FZ.ibw/20",
        ),
        ComponentSpec.parse(
            "DeepZip",
            requires=["T"],
            implements=["DZ"],
            conditions=["Node.cpu >= T.ibw/4"],
            effects=[f"DZ.ibw := T.ibw*{DEEP_RATIO:g}", "Node.cpu -= T.ibw/4"],
            cost="1 + T.ibw/4",
        ),
        ComponentSpec.parse(
            "DeepUnzip",
            requires=["DZ"],
            implements=["T"],
            conditions=["Node.cpu >= DZ.ibw/4"],
            effects=[f"T.ibw := DZ.ibw/{DEEP_RATIO:g}", "Node.cpu -= DZ.ibw/4"],
            cost="1 + DZ.ibw/4",
        ),
    ]
    return AppSpec.build(
        name=name,
        interfaces=interfaces,
        components=components,
        initial=[("TServer", server_node)],
        goals=[("TClient", client_node)],
    )


def build_network(link_bw: float, node_cpu: float, name: str = "variants") -> Network:
    """A 3-node chain whose middle link is the bottleneck under test."""
    net = Network(name)
    net.add_node("src", {"cpu": node_cpu})
    net.add_node("mid", {"cpu": node_cpu})
    net.add_node("dst", {"cpu": node_cpu})
    net.add_link("src", "mid", {"lbw": link_bw}, labels={"WAN"})
    net.add_link("mid", "dst", {"lbw": link_bw}, labels={"WAN"})
    return net


def variants_leveling(bandwidth: float = DEFAULT_BW, name: str = "variants") -> Leveling:
    """Cutpoints at each pipeline's operating bandwidth."""
    t = LevelSpec((bandwidth,))
    return Leveling(
        {
            "T.ibw": t,
            "FZ.ibw": t.scaled(FAST_RATIO),
            "DZ.ibw": t.scaled(DEEP_RATIO),
        },
        name=name,
    )
