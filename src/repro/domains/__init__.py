"""Application domains: media delivery (the paper's benchmark), grid
workflows, and the Fig. 5 web-service cost tradeoff."""

from . import grid, media, variants, webservice

__all__ = ["media", "grid", "webservice", "variants"]
