"""Network topology: nodes, links, and the :class:`Network` container.

Links are undirected with shared (direction-agnostic) resource capacities,
matching the paper's model where a link crossing consumes link bandwidth
regardless of direction.  Crossing actions are nevertheless directional —
the planner grounds one ``cross`` action per (interface, ordered pair).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Node", "Link", "Network", "NetworkError"]


class NetworkError(Exception):
    """Raised on malformed topology operations (unknown nodes, dup links)."""


@dataclass(slots=True)
class Node:
    """A computational host.

    Attributes
    ----------
    id:
        Unique node identifier.
    resources:
        Node-scoped resource capacities, e.g. ``{"cpu": 30.0}``.
    labels:
        Free-form tags (``"transit"``, ``"stub"``, ``"server"``...).
    software:
        Component names installable on this node; ``None`` means any
        component may be placed here (the paper's qualitative "available
        software on a node" constraint).
    """

    id: str
    resources: dict[str, float] = field(default_factory=dict)
    labels: set[str] = field(default_factory=set)
    software: set[str] | None = None

    def capacity(self, resource: str) -> float:
        return self.resources.get(resource, 0.0)

    def allows(self, component_name: str) -> bool:
        return self.software is None or component_name in self.software


def canonical_ends(a: str, b: str) -> tuple[str, str]:
    """Canonical (sorted) endpoint pair used as the link key."""
    return (a, b) if a <= b else (b, a)


@dataclass(slots=True)
class Link:
    """An undirected network link with shared resource capacities."""

    a: str
    b: str
    resources: dict[str, float] = field(default_factory=dict)
    labels: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise NetworkError(f"self-loop link at node {self.a!r}")
        self.a, self.b = canonical_ends(self.a, self.b)

    @property
    def key(self) -> tuple[str, str]:
        return (self.a, self.b)

    def capacity(self, resource: str) -> float:
        return self.resources.get(resource, 0.0)

    def other_end(self, node_id: str) -> str:
        if node_id == self.a:
            return self.b
        if node_id == self.b:
            return self.a
        raise NetworkError(f"node {node_id!r} is not an endpoint of link {self.key}")


class Network:
    """A wide-area network: nodes, undirected links, adjacency queries."""

    def __init__(self, name: str = "network"):
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._adjacency: dict[str, set[str]] = {}

    # -- construction --------------------------------------------------------

    def add_node(
        self,
        node_id: str,
        resources: dict[str, float] | None = None,
        labels: Iterable[str] = (),
        software: Iterable[str] | None = None,
    ) -> Node:
        if node_id in self._nodes:
            raise NetworkError(f"duplicate node {node_id!r}")
        node = Node(
            node_id,
            dict(resources or {}),
            set(labels),
            set(software) if software is not None else None,
        )
        self._nodes[node_id] = node
        self._adjacency[node_id] = set()
        return node

    def add_link(
        self,
        a: str,
        b: str,
        resources: dict[str, float] | None = None,
        labels: Iterable[str] = (),
    ) -> Link:
        for end in (a, b):
            if end not in self._nodes:
                raise NetworkError(f"link endpoint {end!r} is not a node")
        link = Link(a, b, dict(resources or {}), set(labels))
        if link.key in self._links:
            raise NetworkError(f"duplicate link {link.key}")
        self._links[link.key] = link
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        return link

    def remove_link(self, a: str, b: str) -> Link:
        """Remove and return the link between ``a`` and ``b``."""
        link = self.link(a, b)
        del self._links[link.key]
        self._adjacency[link.a].discard(link.b)
        self._adjacency[link.b].discard(link.a)
        return link

    # -- queries ---------------------------------------------------------------

    @property
    def nodes(self) -> dict[str, Node]:
        return self._nodes

    @property
    def links(self) -> dict[tuple[str, str], Link]:
        return self._links

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[canonical_ends(a, b)]
        except KeyError:
            raise NetworkError(f"no link between {a!r} and {b!r}") from None

    def has_link(self, a: str, b: str) -> bool:
        return canonical_ends(a, b) in self._links

    def neighbors(self, node_id: str) -> set[str]:
        try:
            return self._adjacency[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    def degree(self, node_id: str) -> int:
        return len(self.neighbors(node_id))

    def directed_edges(self) -> Iterator[tuple[str, str, Link]]:
        """Each link in both directions — the grounding domain of ``cross``."""
        for link in self._links.values():
            yield link.a, link.b, link
            yield link.b, link.a, link

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # -- graph algorithms --------------------------------------------------------

    def hop_distances(self, source: str) -> dict[str, int]:
        """BFS hop counts from ``source`` (unreachable nodes absent)."""
        if source not in self._nodes:
            raise NetworkError(f"unknown node {source!r}")
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adjacency[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def is_connected(self) -> bool:
        if not self._nodes:
            return True
        first = next(iter(self._nodes))
        return len(self.hop_distances(first)) == len(self._nodes)

    def shortest_path(self, source: str, target: str) -> list[str] | None:
        """One BFS shortest hop path, or None when disconnected."""
        if source not in self._nodes or target not in self._nodes:
            raise NetworkError("unknown endpoint")
        if source == target:
            return [source]
        parent: dict[str, str] = {source: source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in sorted(self._adjacency[u]):
                if v in parent:
                    continue
                parent[v] = u
                if v == target:
                    path = [v]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                queue.append(v)
        return None

    def links_with_label(self, label: str) -> list[Link]:
        return [lk for lk in self._links.values() if label in lk.labels]

    def nodes_with_label(self, label: str) -> list[Node]:
        return [n for n in self._nodes.values() if label in n.labels]

    def to_networkx(self):
        """Export to a :mod:`networkx` graph for analysis/visualization."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        for node in self._nodes.values():
            g.add_node(node.id, **node.resources, labels=sorted(node.labels))
        for link in self._links.values():
            g.add_edge(link.a, link.b, **link.resources, labels=sorted(link.labels))
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network({self.name!r}, nodes={len(self._nodes)}, links={len(self._links)})"
