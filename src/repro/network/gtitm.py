"""GT-ITM-style transit-stub topology generator.

The paper's *Large* scenario uses a 93-node network produced by the
GeorgiaTech Internetwork Topology Models tool (Zegura, Calvert &
Bhattacharjee, INFOCOM '96).  That tool is external C software; this module
reimplements its transit-stub model:

* a backbone of *transit domains*, each a connected random graph of
  transit nodes, with inter-domain links between random gateway pairs;
* *stub domains* (connected random graphs) hanging off each transit node.

Links are classified ``WAN`` (transit-level and stub attachment links) or
``LAN`` (intra-stub links), and given class-wide bandwidths, reproducing
the paper's "same distribution of resources: LAN links 150 units, WAN
links 70 units".  Generation is fully deterministic given a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .topology import Network

# Domains at or below this size use the literal pair loop; larger ones
# switch to geometric skip-sampling.  The bundled networks (93-node
# Large, the legacy stub-size sweep) all sit far below the threshold, so
# their layouts stay byte-identical across this optimization.
_SKIP_SAMPLING_THRESHOLD = 64

__all__ = ["TransitStubParams", "transit_stub_network", "large_paper_network", "waxman_network"]


@dataclass(frozen=True, slots=True)
class TransitStubParams:
    """Parameters of the transit-stub model.

    Defaults produce the 93-node shape of the paper's Fig. 10:
    3 transit nodes, each attached to 3 stub domains of 10 nodes
    (3 + 3·3·10 = 93).
    """

    transit_domains: int = 1
    transit_nodes_per_domain: int = 3
    stub_domains_per_transit: int = 3
    stub_size: int = 10
    transit_edge_prob: float = 0.5
    stub_edge_prob: float = 0.3
    lan_bandwidth: float = 150.0
    wan_bandwidth: float = 70.0
    node_cpu: float = 1000.0
    seed: int = 2004

    def node_count(self) -> int:
        transit = self.transit_domains * self.transit_nodes_per_domain
        return transit + transit * self.stub_domains_per_transit * self.stub_size


def _connected_random_graph(
    net: Network,
    members: list[str],
    rng: random.Random,
    extra_edge_prob: float,
    bandwidth: float,
    label: str,
) -> None:
    """Wire ``members`` into a connected random subgraph.

    A random spanning tree guarantees connectivity; each remaining pair is
    linked independently with ``extra_edge_prob`` — the standard "pure
    random" edge method of the GT-ITM flat model applied per domain.
    """
    shuffled = members[:]
    rng.shuffle(shuffled)
    for i in range(1, len(shuffled)):
        attach_to = shuffled[rng.randrange(i)]
        net.add_link(shuffled[i], attach_to, {"lbw": bandwidth}, labels={label})
    k = len(members)
    if k <= _SKIP_SAMPLING_THRESHOLD or extra_edge_prob <= 0.0:
        for i in range(k):
            for j in range(i + 1, k):
                a, b = members[i], members[j]
                if not net.has_link(a, b) and rng.random() < extra_edge_prob:
                    net.add_link(a, b, {"lbw": bandwidth}, labels={label})
        return
    # Large domain: draw the gaps between successful pairs from the
    # geometric distribution instead of flipping a coin per pair —
    # O(edges) RNG draws instead of O(k^2).  Same marginal distribution,
    # different draw sequence, so this path is threshold-gated above.
    if extra_edge_prob >= 1.0:
        for i in range(k):
            for j in range(i + 1, k):
                if not net.has_link(members[i], members[j]):
                    net.add_link(members[i], members[j], {"lbw": bandwidth}, labels={label})
        return
    total = k * (k - 1) // 2
    log_q = math.log1p(-extra_edge_prob)
    index = -1
    while True:
        u = rng.random()
        # Number of failures before the next success; u == 0.0 cannot
        # occur (random() is in [0, 1)), and log(1-u) is finite for u<1.
        index += 1 + int(math.log1p(-u) / log_q)
        if index >= total:
            break
        i = int((2 * k - 1 - math.sqrt((2 * k - 1) ** 2 - 8 * index)) / 2)
        # Float sqrt can land one row off at the boundary; fix up exactly.
        while index < i * (2 * k - i - 1) // 2:
            i -= 1
        while index >= (i + 1) * (2 * k - i - 2) // 2:
            i += 1
        j = i + 1 + (index - i * (2 * k - i - 1) // 2)
        a, b = members[i], members[j]
        if not net.has_link(a, b):
            net.add_link(a, b, {"lbw": bandwidth}, labels={label})


def transit_stub_network(params: TransitStubParams | None = None, name: str = "transit-stub") -> Network:
    """Generate a transit-stub network per ``params`` (deterministic)."""
    p = params or TransitStubParams()
    if p.transit_domains < 1 or p.transit_nodes_per_domain < 1:
        raise ValueError("need at least one transit domain with one node")
    if p.stub_size < 1:
        raise ValueError("stub domains need at least one node")
    rng = random.Random(p.seed)
    net = Network(name)

    transit_by_domain: list[list[str]] = []
    for d in range(p.transit_domains):
        domain_nodes = []
        for t in range(p.transit_nodes_per_domain):
            node_id = f"t{d}_{t}"
            net.add_node(node_id, {"cpu": p.node_cpu}, labels={"transit"})
            domain_nodes.append(node_id)
        if len(domain_nodes) > 1:
            _connected_random_graph(
                net, domain_nodes, rng, p.transit_edge_prob, p.wan_bandwidth, "WAN"
            )
        transit_by_domain.append(domain_nodes)

    # Inter-domain backbone: a ring over domains via random gateways (a
    # chain when there are exactly two domains).
    if p.transit_domains > 1:
        for d in range(p.transit_domains):
            nd = (d + 1) % p.transit_domains
            if p.transit_domains == 2 and d == 1:
                break
            a = rng.choice(transit_by_domain[d])
            b = rng.choice(transit_by_domain[nd])
            if not net.has_link(a, b):
                net.add_link(a, b, {"lbw": p.wan_bandwidth}, labels={"WAN"})

    for domain_nodes in transit_by_domain:
        for transit_node in domain_nodes:
            for s in range(p.stub_domains_per_transit):
                stub_nodes = []
                for k in range(p.stub_size):
                    node_id = f"{transit_node}_s{s}_{k}"
                    net.add_node(node_id, {"cpu": p.node_cpu}, labels={"stub"})
                    stub_nodes.append(node_id)
                if len(stub_nodes) > 1:
                    _connected_random_graph(
                        net, stub_nodes, rng, p.stub_edge_prob, p.lan_bandwidth, "LAN"
                    )
                gateway = rng.choice(stub_nodes)
                net.add_link(gateway, transit_node, {"lbw": p.wan_bandwidth}, labels={"WAN"})

    assert net.is_connected(), "transit-stub generation must yield a connected network"
    return net


def waxman_network(
    n: int,
    alpha: float = 0.4,
    beta: float = 0.6,
    seed: int = 2004,
    node_cpu: float = 30.0,
    link_bw: float = 100.0,
    name: str = "waxman",
) -> Network:
    """A flat Waxman random graph (the GT-ITM flat model's classic method).

    Nodes are placed uniformly in the unit square; an edge between ``u``
    and ``v`` appears with probability ``alpha * exp(-d(u,v) / (beta * L))``
    where ``L`` is the maximum possible distance.  A random spanning tree
    guarantees connectivity (pure Waxman graphs can be disconnected, which
    is useless as a planning substrate).
    """
    import math as _math

    if n < 2:
        raise ValueError("a Waxman graph needs at least two nodes")
    if not (0 < alpha <= 1) or beta <= 0:
        raise ValueError("alpha must be in (0, 1], beta positive")
    rng = random.Random(seed)
    net = Network(name)
    coords: dict[str, tuple[float, float]] = {}
    for i in range(n):
        node_id = f"w{i}"
        net.add_node(node_id, {"cpu": node_cpu})
        coords[node_id] = (rng.random(), rng.random())

    ids = list(coords)
    # Spanning tree for connectivity.
    shuffled = ids[:]
    rng.shuffle(shuffled)
    for i in range(1, len(shuffled)):
        attach = shuffled[rng.randrange(i)]
        net.add_link(shuffled[i], attach, {"lbw": link_bw}, labels={"WAN"})

    l_max = _math.sqrt(2.0)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = ids[i], ids[j]
            if net.has_link(a, b):
                continue
            (xa, ya), (xb, yb) = coords[a], coords[b]
            d = _math.hypot(xa - xb, ya - yb)
            if rng.random() < alpha * _math.exp(-d / (beta * l_max)):
                net.add_link(a, b, {"lbw": link_bw}, labels={"WAN"})
    return net


def large_paper_network(
    node_cpu: float = 1000.0,
    lan_bandwidth: float = 150.0,
    wan_bandwidth: float = 70.0,
    seed: int = 2004,
) -> Network:
    """The 93-node network of the paper's Large scenario (Fig. 10)."""
    params = TransitStubParams(
        node_cpu=node_cpu,
        lan_bandwidth=lan_bandwidth,
        wan_bandwidth=wan_bandwidth,
        seed=seed,
    )
    net = transit_stub_network(params, name="large-93")
    assert len(net) == 93, f"expected 93 nodes, generated {len(net)}"
    return net
