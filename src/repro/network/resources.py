"""Resource declarations for nodes and links.

The CPP model is parametric in the set of resources: the paper's
evaluation uses node CPU and link bandwidth, and mentions node memory,
disk bandwidth, or link security as further examples.  A
:class:`ResourceDecl` names a resource, says whether it lives on nodes or
links, and carries the degradable/upgradable tags of §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["ResourceScope", "ResourceDecl", "CPU", "LINK_BANDWIDTH", "MEMORY", "LATENCY"]


class ResourceScope(Enum):
    NODE = "node"
    LINK = "link"


@dataclass(frozen=True, slots=True)
class ResourceDecl:
    """Declaration of one resource kind.

    Attributes
    ----------
    name:
        Identifier used in specification formulas (``Node.cpu`` refers to
        the node-scoped resource named ``cpu``).
    scope:
        Whether the resource is attached to nodes or links.
    degradable:
        A degradable resource available at a high value is also usable at
        any lower value (link bandwidth: a 150-unit link can carry a
        90-unit stream).
    upgradable:
        The mirror property: availability at a low value implies
        availability at higher values (e.g. accumulated latency budgets).
    consumable:
        Whether deployments subtract from the resource (CPU, bandwidth)
        as opposed to merely inspecting it (e.g. a security label encoded
        numerically).
    """

    name: str
    scope: ResourceScope
    degradable: bool = False
    upgradable: bool = False
    consumable: bool = True

    def __post_init__(self) -> None:
        if self.degradable and self.upgradable:
            raise ValueError(f"resource {self.name!r} cannot be both degradable and upgradable")


CPU = ResourceDecl("cpu", ResourceScope.NODE, degradable=True)
LINK_BANDWIDTH = ResourceDecl("lbw", ResourceScope.LINK, degradable=True)
MEMORY = ResourceDecl("mem", ResourceScope.NODE, degradable=True)
LATENCY = ResourceDecl("lat", ResourceScope.LINK, upgradable=True, consumable=False)
