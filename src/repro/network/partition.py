"""Transit-stub domain partitioning (docs/ALGORITHM.md, "Hierarchical
domain decomposition").

A transit-stub network (:mod:`repro.network.gtitm`) is structurally a
small backbone of ``transit``-labelled nodes with ``stub``-labelled
LAN domains hanging off it.  This module recovers that structure from an
arbitrary :class:`Network`: the stub domains are the connected components
of the stub-only subgraph, and each domain's *gateway* is its unique node
with an attachment link to the backbone.

The partition is purely topological (labels + adjacency) and fully
deterministic: members, gateways, and domain keys are derived from sorted
node ids, never from iteration order.  Networks that do not fit the shape
— missing labels, a stub domain with zero or several attachment links, a
node bridging two stubs — raise :class:`PartitionError` with the exact
reason; callers (``repro.hierarchy``) treat that as "not decomposable"
and fall back to flat planning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .topology import Network, NetworkError

__all__ = ["PartitionError", "StubDomain", "TransitStubPartition", "partition_transit_stub"]

TRANSIT_LABEL = "transit"
STUB_LABEL = "stub"


class PartitionError(NetworkError):
    """The network does not decompose into transit + stub domains."""


@dataclass(frozen=True)
class StubDomain:
    """One stub domain: a LAN hanging off the backbone via its gateway.

    ``key`` doubles as the domain's deterministic identity and as the id
    of its representative node in the abstract network — it *is* the
    gateway's node id, so abstract-level ground actions naming the
    representative resolve verbatim against the concrete network.
    """

    key: str
    members: tuple[str, ...]
    gateway: str
    attach_transit: str
    """The transit node the gateway's attachment link reaches."""

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._member_set

    @property
    def _member_set(self) -> frozenset[str]:
        return frozenset(self.members)

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class TransitStubPartition:
    """The full decomposition: backbone nodes plus stub domains."""

    transit_nodes: tuple[str, ...]
    domains: tuple[StubDomain, ...]
    _domain_of: dict[str, StubDomain] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for dom in self.domains:
            for member in dom.members:
                self._domain_of[member] = dom

    def domain_of(self, node_id: str) -> StubDomain | None:
        """The stub domain containing ``node_id`` (None for backbone nodes)."""
        return self._domain_of.get(node_id)

    def domain(self, key: str) -> StubDomain:
        for dom in self.domains:
            if dom.key == key:
                return dom
        raise PartitionError(f"no stub domain with key {key!r}")


def partition_transit_stub(net: Network) -> TransitStubPartition:
    """Decompose ``net`` into its backbone and stub domains.

    Requirements (each violation raises :class:`PartitionError`):

    * every node carries exactly one of the ``transit`` / ``stub`` labels;
    * at least one transit node exists;
    * every stub component has exactly **one** attachment link to the
      backbone (the generator's invariant) — the hierarchical planner's
      boundary-contract extraction relies on a single choke point per
      domain.
    """
    transit: list[str] = []
    stub: list[str] = []
    for node_id in sorted(net.nodes):
        labels = net.nodes[node_id].labels
        is_transit = TRANSIT_LABEL in labels
        is_stub = STUB_LABEL in labels
        if is_transit and is_stub:
            raise PartitionError(f"node {node_id!r} is labelled both transit and stub")
        if not is_transit and not is_stub:
            raise PartitionError(
                f"node {node_id!r} carries neither a 'transit' nor a 'stub' label; "
                "the network is not transit-stub shaped"
            )
        (transit if is_transit else stub).append(node_id)
    if not transit:
        raise PartitionError("no transit-labelled nodes: nothing to use as a backbone")
    if not stub:
        raise PartitionError("no stub-labelled nodes: nothing to decompose")

    transit_set = set(transit)
    seen: set[str] = set()
    domains: list[StubDomain] = []
    for start in stub:  # sorted — component discovery order is deterministic
        if start in seen:
            continue
        members = _stub_component(net, start, transit_set)
        seen |= members
        gateways: list[tuple[str, str]] = []
        for member in sorted(members):
            for neighbor in sorted(net.neighbors(member)):
                if neighbor in transit_set:
                    gateways.append((member, neighbor))
        if len(gateways) != 1:
            raise PartitionError(
                f"stub domain containing {start!r} has {len(gateways)} attachment "
                "links to the backbone; hierarchical decomposition needs exactly one"
            )
        gateway, attach = gateways[0]
        domains.append(
            StubDomain(
                key=gateway,
                members=tuple(sorted(members)),
                gateway=gateway,
                attach_transit=attach,
            )
        )
    domains.sort(key=lambda d: d.key)
    return TransitStubPartition(transit_nodes=tuple(transit), domains=tuple(domains))


def _stub_component(net: Network, start: str, transit_set: set[str]) -> set[str]:
    """Connected component of the stub-only subgraph containing ``start``."""
    component = {start}
    frontier = [start]
    while frontier:
        u = frontier.pop()
        for v in net.neighbors(u):
            if v in transit_set or v in component:
                continue
            component.add(v)
            frontier.append(v)
    return component
