"""JSON (de)serialization of network topologies.

A stable on-disk form lets experiments pin exact topologies (the paper's
Large network is generated once and reused across scenarios) and lets
users bring their own networks to the planner.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .topology import Network, NetworkError

__all__ = ["network_to_dict", "network_from_dict", "save_network", "load_network"]

_FORMAT_VERSION = 1


def network_to_dict(net: Network) -> dict[str, Any]:
    """A JSON-ready dict capturing the full topology."""
    return {
        "format": _FORMAT_VERSION,
        "name": net.name,
        "nodes": [
            {
                "id": n.id,
                "resources": dict(n.resources),
                "labels": sorted(n.labels),
                **({"software": sorted(n.software)} if n.software is not None else {}),
            }
            for n in net.nodes.values()
        ],
        "links": [
            {
                "a": lk.a,
                "b": lk.b,
                "resources": dict(lk.resources),
                "labels": sorted(lk.labels),
            }
            for lk in net.links.values()
        ],
    }


def network_from_dict(data: dict[str, Any]) -> Network:
    """Rebuild a :class:`Network` from :func:`network_to_dict` output."""
    version = data.get("format", 0)
    if version != _FORMAT_VERSION:
        raise NetworkError(f"unsupported network format version {version!r}")
    net = Network(data.get("name", "network"))
    for nd in data.get("nodes", []):
        net.add_node(
            nd["id"],
            nd.get("resources", {}),
            nd.get("labels", ()),
            nd.get("software"),
        )
    for ld in data.get("links", []):
        net.add_link(ld["a"], ld["b"], ld.get("resources", {}), ld.get("labels", ()))
    return net


def save_network(net: Network, path: str | Path) -> None:
    Path(path).write_text(json.dumps(network_to_dict(net), indent=2, sort_keys=True))


def load_network(path: str | Path) -> Network:
    return network_from_dict(json.loads(Path(path).read_text()))
