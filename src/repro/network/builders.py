"""Deterministic topology builders for small experiment networks.

These construct the fixed networks of the paper's evaluation:

* :func:`pair_network` — the *Tiny* two-node network of Fig. 3;
* :func:`chain_network` — linear chains (the *Small* network of Fig. 9 is a
  chain of LAN–WAN–LAN links with spur nodes);
* :func:`star_network`, :func:`ring_network` — additional shapes used by
  tests and examples.

Resource values are supplied by the caller; the experiment presets in
:mod:`repro.experiments.networks` wire in the paper's numbers (LAN 150,
WAN 70, CPU sized for 111 units of media processing).
"""

from __future__ import annotations

from typing import Sequence

from .topology import Network

__all__ = ["pair_network", "chain_network", "star_network", "ring_network", "grid_network"]


def pair_network(
    cpu: float = 30.0,
    link_bw: float = 70.0,
    cpu_target: float | None = None,
    name: str = "tiny",
) -> Network:
    """Two nodes joined by one WAN link (the paper's Fig. 3 shape).

    ``cpu`` is the CPU at the source node ``n0``; the target node gets
    ``cpu_target`` (default: ample CPU, per the paper's footnote that the
    target has sufficient resources for Unzip and Merger).
    """
    net = Network(name)
    net.add_node("n0", {"cpu": cpu}, labels={"server-site"})
    net.add_node("n1", {"cpu": cpu_target if cpu_target is not None else 1000.0}, labels={"client-site"})
    net.add_link("n0", "n1", {"lbw": link_bw}, labels={"WAN"})
    return net


def chain_network(
    link_specs: Sequence[tuple[float, str]],
    cpu: float = 1000.0,
    name: str = "chain",
    spurs: int = 0,
    spur_bw: float = 150.0,
    spur_label: str = "LAN",
) -> Network:
    """A linear chain ``n0 - n1 - ... - nk``.

    ``link_specs`` is a sequence of ``(bandwidth, label)`` pairs, one per
    chain link.  ``spurs`` optional leaf nodes are attached to interior
    chain nodes round-robin — they enlarge the search space without
    changing the solution, mimicking the non-prunable idle nodes of the
    paper's Large scenario.
    """
    net = Network(name)
    n_nodes = len(link_specs) + 1
    for i in range(n_nodes):
        net.add_node(f"n{i}", {"cpu": cpu})
    for i, (bw, label) in enumerate(link_specs):
        net.add_link(f"n{i}", f"n{i + 1}", {"lbw": bw}, labels={label})
    interior = [f"n{i}" for i in range(1, n_nodes - 1)] or [f"n{0}"]
    for s in range(spurs):
        spur_id = f"s{s}"
        net.add_node(spur_id, {"cpu": cpu})
        net.add_link(spur_id, interior[s % len(interior)], {"lbw": spur_bw}, labels={spur_label})
    return net


def star_network(
    leaves: int,
    hub_cpu: float = 1000.0,
    leaf_cpu: float = 1000.0,
    link_bw: float = 150.0,
    name: str = "star",
) -> Network:
    """A hub node ``hub`` with ``leaves`` leaf nodes."""
    net = Network(name)
    net.add_node("hub", {"cpu": hub_cpu})
    for i in range(leaves):
        leaf = f"leaf{i}"
        net.add_node(leaf, {"cpu": leaf_cpu})
        net.add_link("hub", leaf, {"lbw": link_bw}, labels={"LAN"})
    return net


def ring_network(
    size: int,
    cpu: float = 1000.0,
    link_bw: float = 150.0,
    name: str = "ring",
) -> Network:
    """A cycle of ``size`` nodes — gives the planner alternative routes."""
    if size < 3:
        raise ValueError("a ring needs at least 3 nodes")
    net = Network(name)
    for i in range(size):
        net.add_node(f"n{i}", {"cpu": cpu})
    for i in range(size):
        net.add_link(f"n{i}", f"n{(i + 1) % size}", {"lbw": link_bw}, labels={"LAN"})
    return net


def grid_network(
    rows: int,
    cols: int,
    cpu: float = 1000.0,
    link_bw: float = 150.0,
    name: str = "grid",
) -> Network:
    """A rows×cols mesh — used by scaling tests beyond the paper's sizes."""
    net = Network(name)
    for r in range(rows):
        for c in range(cols):
            net.add_node(f"n{r}_{c}", {"cpu": cpu})
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                net.add_link(f"n{r}_{c}", f"n{r}_{c + 1}", {"lbw": link_bw}, labels={"LAN"})
            if r + 1 < rows:
                net.add_link(f"n{r}_{c}", f"n{r + 1}_{c}", {"lbw": link_bw}, labels={"LAN"})
    return net
