"""Network substrate: nodes, links, resources, topologies, generators."""

from .resources import CPU, LATENCY, LINK_BANDWIDTH, MEMORY, ResourceDecl, ResourceScope
from .topology import Link, Network, NetworkError, Node, canonical_ends
from .builders import chain_network, grid_network, pair_network, ring_network, star_network
from .gtitm import TransitStubParams, large_paper_network, transit_stub_network, waxman_network
from .io import load_network, network_from_dict, network_to_dict, save_network
from .partition import PartitionError, StubDomain, TransitStubPartition, partition_transit_stub
from .paths import bottleneck, k_shortest_paths, path_capacity, widest_path

__all__ = [
    "ResourceDecl",
    "ResourceScope",
    "CPU",
    "LINK_BANDWIDTH",
    "MEMORY",
    "LATENCY",
    "Node",
    "Link",
    "Network",
    "NetworkError",
    "canonical_ends",
    "pair_network",
    "chain_network",
    "star_network",
    "ring_network",
    "grid_network",
    "TransitStubParams",
    "transit_stub_network",
    "large_paper_network",
    "waxman_network",
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
    "widest_path",
    "bottleneck",
    "path_capacity",
    "k_shortest_paths",
    "PartitionError",
    "StubDomain",
    "TransitStubPartition",
    "partition_transit_stub",
]
