"""Path algorithms over topologies.

Planning-adjacent helpers: the planner itself searches in action space,
but baselines, analyses, and examples need classical path queries —
widest (maximum-bottleneck) paths for "can this stream fit anywhere?",
k-shortest simple paths for route enumeration, and bottleneck values for
quick feasibility triage before invoking the full planner.
"""

from __future__ import annotations

import heapq
import itertools
import math

from .topology import Network, NetworkError

__all__ = ["widest_path", "bottleneck", "k_shortest_paths", "path_capacity"]


def widest_path(
    net: Network, source: str, target: str, resource: str = "lbw"
) -> list[str] | None:
    """Maximum-bottleneck path from ``source`` to ``target``.

    Dijkstra variant maximizing the minimum link capacity along the path.
    Returns the node sequence, or ``None`` when disconnected.
    """
    if source not in net or target not in net:
        raise NetworkError("unknown endpoint")
    if source == target:
        return [source]
    best: dict[str, float] = {source: math.inf}
    parent: dict[str, str] = {}
    counter = itertools.count()
    heap = [(-math.inf, next(counter), source)]
    visited: set[str] = set()
    while heap:
        neg_width, _tie, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        if u == target:
            path = [u]
            while path[-1] != source:
                path.append(parent[path[-1]])
            return list(reversed(path))
        for v in net.neighbors(u):
            if v in visited:
                continue
            cap = net.link(u, v).capacity(resource)
            width = min(-neg_width, cap)
            if width > best.get(v, -math.inf):
                best[v] = width
                parent[v] = u
                heapq.heappush(heap, (-width, next(counter), v))
    return None


def path_capacity(net: Network, path: list[str], resource: str = "lbw") -> float:
    """Bottleneck capacity of a concrete path (inf for a single node)."""
    if len(path) < 2:
        return math.inf
    return min(net.link(a, b).capacity(resource) for a, b in zip(path, path[1:]))


def bottleneck(
    net: Network, source: str, target: str, resource: str = "lbw"
) -> float:
    """Best achievable bottleneck between two nodes (0 when disconnected)."""
    path = widest_path(net, source, target, resource)
    if path is None:
        return 0.0
    return path_capacity(net, path, resource)


def k_shortest_paths(
    net: Network, source: str, target: str, k: int
) -> list[list[str]]:
    """Up to ``k`` loop-free hop-shortest paths (Yen's algorithm).

    Deterministic: candidate ties break lexicographically on the node
    sequence.
    """
    if k < 1:
        raise ValueError("k must be positive")
    first = net.shortest_path(source, target)
    if first is None:
        return []
    paths: list[list[str]] = [first]
    candidates: list[tuple[int, list[str]]] = []
    # Sorted adjacency, computed once: the spur BFS re-sorts every
    # neighbor list on every visit otherwise — the dominant cost of this
    # algorithm on 10k-node networks.
    adjacency = {u: sorted(net.neighbors(u)) for u in net.nodes}

    for _ in range(1, k):
        prev = paths[-1]
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            removed_edges: set[tuple[str, str]] = set()
            for p in paths:
                if p[: i + 1] == root and len(p) > i + 1:
                    removed_edges.add(tuple(sorted((p[i], p[i + 1]))))
            removed_nodes = set(root[:-1])
            spur = _shortest_avoiding(adjacency, spur_node, target, removed_edges, removed_nodes)
            if spur is None:
                continue
            candidate = root[:-1] + spur
            if candidate not in paths and all(c[1] != candidate for c in candidates):
                candidates.append((len(candidate), candidate))
        if not candidates:
            break
        candidates.sort(key=lambda c: (c[0], c[1]))
        paths.append(candidates.pop(0)[1])
    return paths


def _shortest_avoiding(
    adjacency: dict[str, list[str]],
    source: str,
    target: str,
    removed_edges: set[tuple[str, str]],
    removed_nodes: set[str],
) -> list[str] | None:
    """BFS shortest path avoiding given edges and nodes."""
    from collections import deque

    if source in removed_nodes:
        return None
    parent = {source: source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if v in parent or v in removed_nodes:
                continue
            if tuple(sorted((u, v))) in removed_edges:
                continue
            parent[v] = u
            if v == target:
                path = [v]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                return list(reversed(path))
            queue.append(v)
    return None
