"""Dead ground-action elimination.

An action is *dead* when the envelope fixpoint refutes it against the
final envelopes: no state reachable by exact execution lets it fire.  By
the planner's validated-plan invariant (every returned plan executes
exactly), a dead action cannot appear in any returned plan, so excluding
dead actions from the search preserves the optimal plan cost exactly —
the property the differential audit (:mod:`repro.analysis.audit`) checks
empirically on every bundled domain.

Each dead action carries a :class:`~repro.analysis.certificates.PruneCertificate`
recording the refuting interval argument; the final refutation pass runs
over actions in index order, so the dead list is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compile import CompiledProblem
from ..intervals import Interval
from .certificates import PruneCertificate, certificate_for
from .envelopes import Refutation, abstract_step

__all__ = ["DeadAction", "find_dead_actions"]


@dataclass(frozen=True)
class DeadAction:
    """One provably unfirable ground action with its certificate."""

    index: int
    name: str
    certificate: PruneCertificate


def find_dead_actions(
    problem: CompiledProblem, envelopes: dict[str, Interval]
) -> tuple[DeadAction, ...]:
    """Refute every action against the final envelopes.

    Envelope growth is monotone and every refutation kind is anti-monotone
    in the envelopes (a larger envelope can only *un*-refute), so judging
    against the final fixpoint is consistent with the fixpoint itself: an
    action that contributed writes during the fixpoint is never reported
    dead here.
    """
    dead: list[DeadAction] = []
    for action in problem.actions:
        step = abstract_step(action, envelopes)
        if isinstance(step, Refutation):
            dead.append(
                DeadAction(
                    index=action.index,
                    name=action.name,
                    certificate=certificate_for(action, step),
                )
            )
    return tuple(dead)
