"""Machine-checkable prune certificates for dead ground actions.

A :class:`PruneCertificate` records *why* an action is dead: the
refutation kind plus the concrete interval argument (committed level,
envelope, right-hand side, or condition environment snapshot) that makes
the refutation go through.  Certificates serialize to plain JSON (with
infinities encoded as ``"inf"`` / ``"-inf"`` strings, since standard JSON
has no infinity literal) and :func:`check_certificate` re-verifies one
deterministically against a problem and its envelopes — the audit's
machine-checkable half.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..compile import CompiledProblem, GroundAction
from ..intervals import Interval
from .envelopes import Refutation, abstract_step

__all__ = [
    "PruneCertificate",
    "certificate_for",
    "check_certificate",
    "interval_from_payload",
    "interval_payload",
]


def _encode_num(x: float) -> float | str:
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    return x


def _decode_num(x: float | int | str) -> float:
    if x == "inf":
        return math.inf
    if x == "-inf":
        return -math.inf
    return float(x)


def interval_payload(iv: Interval) -> dict[str, object]:
    """JSON-ready encoding of an interval (infinities as strings)."""
    return {
        "lo": _encode_num(iv.lo),
        "hi": _encode_num(iv.hi),
        "lo_open": iv.lo_open,
        "hi_open": iv.hi_open,
    }


def interval_from_payload(data: dict[str, object]) -> Interval:
    """Inverse of :func:`interval_payload`."""
    lo = _decode_num(data["lo"])  # type: ignore[arg-type]
    hi = _decode_num(data["hi"])  # type: ignore[arg-type]
    return Interval(lo, hi, bool(data["lo_open"]), bool(data["hi_open"]))


@dataclass(frozen=True)
class PruneCertificate:
    """The refuting interval argument for one dead ground action."""

    action: str
    index: int
    kind: str
    detail: str
    spec_var: str | None = None
    gvar: str | None = None
    committed: Interval | None = None
    envelope: Interval | None = None
    rhs: Interval | None = None
    condition: str | None = None
    env: tuple[tuple[str, Interval], ...] = ()

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "action": self.action,
            "index": self.index,
            "kind": self.kind,
            "detail": self.detail,
        }
        if self.spec_var is not None:
            out["spec_var"] = self.spec_var
        if self.gvar is not None:
            out["gvar"] = self.gvar
        if self.committed is not None:
            out["committed"] = interval_payload(self.committed)
        if self.envelope is not None:
            out["envelope"] = interval_payload(self.envelope)
        if self.rhs is not None:
            out["rhs"] = interval_payload(self.rhs)
        if self.condition is not None:
            out["condition"] = self.condition
        if self.env:
            out["env"] = {var: interval_payload(iv) for var, iv in self.env}
        return out

    @staticmethod
    def from_dict(data: dict[str, object]) -> "PruneCertificate":
        def _iv(key: str) -> Interval | None:
            raw = data.get(key)
            if raw is None:
                return None
            return interval_from_payload(raw)  # type: ignore[arg-type]

        env_raw = data.get("env") or {}
        env = tuple(
            (var, interval_from_payload(payload))
            for var, payload in sorted(env_raw.items())  # type: ignore[union-attr]
        )
        return PruneCertificate(
            action=str(data["action"]),
            index=int(data["index"]),  # type: ignore[arg-type]
            kind=str(data["kind"]),
            detail=str(data["detail"]),
            spec_var=data.get("spec_var"),  # type: ignore[arg-type]
            gvar=data.get("gvar"),  # type: ignore[arg-type]
            committed=_iv("committed"),
            envelope=_iv("envelope"),
            rhs=_iv("rhs"),
            condition=data.get("condition"),  # type: ignore[arg-type]
            env=env,
        )


def certificate_for(action: GroundAction, refutation: Refutation) -> PruneCertificate:
    """Package a refutation as a certificate naming the action."""
    return PruneCertificate(
        action=action.name,
        index=action.index,
        kind=refutation.kind,
        detail=refutation.detail,
        spec_var=refutation.spec_var,
        gvar=refutation.gvar,
        committed=refutation.committed,
        envelope=refutation.envelope,
        rhs=refutation.rhs,
        condition=refutation.condition,
        env=refutation.env,
    )


def check_certificate(
    problem: CompiledProblem,
    envelopes: dict[str, Interval],
    cert: PruneCertificate,
) -> bool:
    """Re-verify a certificate against a problem and its envelopes.

    The check recomputes the abstract step for the named action and
    demands (a) it is refuted, (b) for the *same* reason, and (c) with the
    *same* interval argument the certificate recorded.  A certificate
    carried over from a different problem, stale envelopes, or a tampered
    payload fails the check.
    """
    if not 0 <= cert.index < len(problem.actions):
        return False
    action = problem.actions[cert.index]
    if action.name != cert.action:
        return False
    step = abstract_step(action, envelopes)
    if not isinstance(step, Refutation):
        return False
    return certificate_for(action, step) == cert
