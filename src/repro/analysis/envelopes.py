"""Invariant resource envelopes via interval abstract interpretation.

This module computes, for every ground variable of a compiled problem, an
*invariant envelope*: an interval guaranteed to contain the variable's
value in **every state reachable by exact execution** from the initial
state (any executable action sequence, in any order — a superset of the
states a valid plan can pass through).  The fixpoint mirrors the exact
executor's semantics (:mod:`repro.planner.executor`) action by action:

* input streams are clipped to the committed level cap
  (``u = min(raw, committed.hi)``) and must reach the committed floor
  within the executor's ``1e-6`` fuzz;
* resource spec variables (``Node.*`` / ``Link.*``) read the raw envelope;
* effects are simultaneous (right-hand sides read the pre-state) but
  written sequentially, exactly as the executor stages them;
* ``CONSUME`` clamps the remainder to zero and *fails* on overdraw, so a
  guaranteed overdraw refutes the action.

Envelopes deliberately over-approximate *concrete execution*, not the
RG's optimistic replay: replay seeds absent input streams with full
committed intervals as stand-ins for the unexplored plan prefix, which
would wash the analysis out to ⊤.  Soundness of downstream dead-action
pruning rests on the planner's validated-plan invariant — every returned
plan executes exactly — so an action refuted under the envelopes can
never appear in a returned plan (see docs/ANALYSIS.md).

Termination: hull joins only grow envelopes; after :data:`_WIDEN_AFTER`
joins a variable's still-moving bound is widened to infinity, so the
worklist converges without a pass budget (a generous safety budget
remains as a belt-and-suspenders guard).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from ..compile import CompiledProblem, EffectKind, GroundAction, iface_prop_var
from ..expr import EvalError, condition_satisfiable, eval_interval
from ..intervals import Interval, iadd, imax, imin, isub

__all__ = [
    "AbstractStep",
    "EnvelopeResult",
    "Refutation",
    "abstract_step",
    "compute_envelopes",
    "initial_envelopes",
]

_EPS = 1e-6  # must match repro.planner.executor._EPS
_WIDEN_AFTER = 8
_MAX_PASSES = 50  # safety budget only; widening guarantees convergence

_RESOURCE_PREFIXES = ("Node.", "Link.")


@dataclass(frozen=True)
class Refutation:
    """Why an action can never fire under the computed envelopes.

    ``kind`` is one of:

    ``missing-input``
        An input stream variable is never produced (bottom).
    ``level-clip``
        The committed level floor exceeds everything attainable after
        clipping the envelope at the level cap.
    ``condition``
        A condition is unsatisfiable over the abstract input environment.
    ``overdraw``
        A ``CONSUME`` effect overdraws its resource in every reachable
        state.
    ``eval-error``
        Formula evaluation fails deterministically (the exact executor
        raises the analogous :class:`~repro.planner.errors.ExecutionError`).
    """

    kind: str
    detail: str
    spec_var: str | None = None
    gvar: str | None = None
    committed: Interval | None = None
    envelope: Interval | None = None
    rhs: Interval | None = None
    condition: str | None = None
    env: tuple[tuple[str, Interval], ...] = ()


@dataclass(frozen=True)
class AbstractStep:
    """Abstract one-step image of an action that may fire.

    ``env`` is the abstract input environment (spec var → clipped
    interval); ``writes`` are the post-state envelopes of every ground
    variable the action writes, in sorted variable order.
    """

    env: dict[str, Interval]
    writes: tuple[tuple[str, Interval], ...]


def _is_resource_var(spec_var: str) -> bool:
    return spec_var.startswith(_RESOURCE_PREFIXES)


def abstract_step(
    action: GroundAction, envelopes: dict[str, Interval]
) -> AbstractStep | Refutation:
    """Abstractly execute ``action`` over ``envelopes``.

    Returns an :class:`AbstractStep` when some concrete execution might
    fire the action, or a :class:`Refutation` proving that *every*
    concrete attempt fails.  The transfer function over-approximates the
    exact executor: whenever a concrete state within the envelopes lets
    the action execute, this function does not refute it.
    """
    env: dict[str, Interval] = {}
    for spec_var, gvar in sorted(action.var_map.items()):
        committed = action.committed.get(spec_var)
        if committed is None:
            continue  # output-only mapping: written by effects below
        raw = envelopes.get(gvar)
        if _is_resource_var(spec_var):
            if raw is None or raw.is_empty():
                return Refutation(
                    kind="missing-input",
                    detail=f"resource {gvar} has no value",
                    spec_var=spec_var,
                    gvar=gvar,
                    committed=committed,
                    envelope=raw,
                )
            env[spec_var] = raw
            continue
        if raw is None or raw.is_empty():
            return Refutation(
                kind="missing-input",
                detail=f"input stream {gvar} is never produced",
                spec_var=spec_var,
                gvar=gvar,
                committed=committed,
                envelope=raw,
            )
        # Executor input rule: u = min(raw, committed.hi), feasible iff
        # u + EPS >= committed.lo for some attainable u.
        if math.isfinite(committed.hi):
            clipped = imin(raw, Interval.point(committed.hi))
        else:
            clipped = raw
        if not clipped.exists_ge(committed.lo - _EPS):
            return Refutation(
                kind="level-clip",
                detail=(
                    f"at most {clipped.hi:g} of {gvar} ever available but the "
                    f"committed level requires at least {committed.lo:g}"
                ),
                spec_var=spec_var,
                gvar=gvar,
                committed=committed,
                envelope=raw,
            )
        env[spec_var] = clipped

    snapshot = tuple(sorted(env.items()))
    for cond in action.conditions:
        try:
            satisfiable = condition_satisfiable(cond, env)
        except EvalError as exc:
            return Refutation(
                kind="eval-error",
                detail=f"condition {cond.unparse()}: {exc}",
                condition=cond.unparse(),
                env=snapshot,
            )
        if not satisfiable:
            return Refutation(
                kind="condition",
                detail=f"condition {cond.unparse()} unsatisfiable over envelopes",
                condition=cond.unparse(),
                env=snapshot,
            )

    staged: list[tuple[str, EffectKind, Interval, str]] = []
    for assign, (gvar, kind) in zip(action.effects, action.effect_targets):
        try:
            rhs = eval_interval(assign.expr, env)
        except EvalError as exc:
            return Refutation(
                kind="eval-error",
                detail=f"effect on {gvar}: {exc}",
                gvar=gvar,
                env=snapshot,
            )
        if rhs.is_empty():
            return Refutation(
                kind="eval-error",
                detail=f"effect on {gvar} has an empty image",
                gvar=gvar,
                env=snapshot,
            )
        staged.append((gvar, kind, rhs, assign.op))

    # Effects write sequentially (the executor's staged loop), so a later
    # write to the same variable sees the earlier write's post-state.
    local: dict[str, Interval] = {}
    for gvar, kind, rhs, op in staged:
        pre = local.get(gvar)
        if pre is None:
            got = envelopes.get(gvar)
            pre = got if got is not None else Interval.point(0.0)
        if kind is EffectKind.CONSUME:
            post = isub(pre, rhs)
            if not post.exists_ge(-_EPS):
                return Refutation(
                    kind="overdraw",
                    detail=f"consuming {gvar} always overdraws (remaining {post})",
                    gvar=gvar,
                    envelope=pre,
                    rhs=rhs,
                    env=snapshot,
                )
            local[gvar] = imax(post, Interval.point(0.0))
        elif kind is EffectKind.SET_RESOURCE:
            if op == ":=":
                local[gvar] = rhs
            elif op == "+=":
                local[gvar] = iadd(pre, rhs)
            else:
                local[gvar] = isub(pre, rhs)
        else:
            # PRODUCE / PRODUCE_DEGRADABLE / PRODUCE_UPGRADABLE all write
            # the exact value in concrete execution; the closures only
            # exist in the replay map.
            local[gvar] = rhs
    return AbstractStep(env=env, writes=tuple(sorted(local.items())))


@dataclass
class EnvelopeResult:
    """Outcome of the envelope fixpoint."""

    envelopes: dict[str, Interval]
    iterations: int
    widened: tuple[str, ...]
    """Ground variables whose envelope lost a bound to widening."""

    @property
    def bounded(self) -> int:
        """Variables with a finite (both-bounds) envelope — the count
        surfaced as the ``analysis.envelope.tightened`` gauge."""
        return sum(1 for iv in self.envelopes.values() if iv.is_bounded())


def initial_envelopes(problem: CompiledProblem) -> dict[str, Interval]:
    """The abstract initial state: exact points, concrete semantics.

    Unlike :meth:`CompiledProblem.initial_map`, pre-placed streams enter
    as their exact produced value (the executor's seeding), not their
    degradability closure.
    """
    env: dict[str, Interval] = {
        gvar: Interval.point(value)
        for gvar, value in sorted(problem.initial_values.items())
    }
    for iface, node, value, _deg, _upg, prop in problem._initial_streams:
        gvar = iface_prop_var(prop, iface, node)
        point = Interval.point(value)
        prev = env.get(gvar)
        env[gvar] = point if prev is None else prev.hull(point)
    return env


def _read_vars(action: GroundAction) -> list[str]:
    """Ground variables whose envelope growth can re-enable ``action``."""
    reads = {
        gvar
        for spec_var, gvar in action.var_map.items()
        if spec_var in action.committed
    }
    for gvar, kind in action.effect_targets:
        if kind in (EffectKind.CONSUME, EffectKind.SET_RESOURCE):
            reads.add(gvar)
    return sorted(reads)


def compute_envelopes(problem: CompiledProblem) -> EnvelopeResult:
    """Run the worklist fixpoint to a sound invariant envelope per variable.

    Deterministic: the worklist starts in action-index order and
    dependents are enqueued in index order, so identical problems produce
    identical envelopes (byte-for-byte across processes).
    """
    envelopes = initial_envelopes(problem)
    actions = problem.actions

    dependents: dict[str, list[int]] = {}
    for action in actions:
        for gvar in _read_vars(action):
            dependents.setdefault(gvar, []).append(action.index)

    queue: deque[int] = deque(a.index for a in actions)
    queued: set[int] = set(queue)
    joins: dict[str, int] = {}
    widened: set[str] = set()
    iterations = 0
    budget = len(actions) * _MAX_PASSES + 1

    while queue:
        iterations += 1
        if iterations > budget:  # pragma: no cover - widening converges first
            # Sound fallback: give up all precision on written variables.
            top = Interval(-math.inf, math.inf)
            for action in actions:
                for gvar, _kind in action.effect_targets:
                    envelopes[gvar] = top
                    widened.add(gvar)
            break
        idx = queue.popleft()
        queued.discard(idx)
        step = abstract_step(actions[idx], envelopes)
        if isinstance(step, Refutation):
            continue
        for gvar, post in step.writes:
            old = envelopes.get(gvar)
            if old is not None and old.contains_interval(post):
                continue
            new = post if old is None else old.hull(post)
            count = joins.get(gvar, 0) + 1
            joins[gvar] = count
            if count > _WIDEN_AFTER:
                # Widen whichever bound is still moving: first to the zero
                # threshold (resources never go negative — CONSUME clamps),
                # then to infinity if it keeps moving.
                lo, lo_open = new.lo, new.lo_open
                hi, hi_open = new.hi, new.hi_open
                if old is None or new.lo < old.lo:
                    if new.lo >= 0.0 and (old is None or old.lo > 0.0):
                        lo, lo_open = 0.0, False
                    else:
                        lo, lo_open = -math.inf, True
                if old is None or new.hi > old.hi:
                    hi, hi_open = math.inf, True
                new = Interval(lo, hi, lo_open, hi_open)
                if old is not None and old.contains_interval(new):
                    continue
                if not new.is_bounded():  # zero-threshold widening stays finite
                    widened.add(gvar)
            envelopes[gvar] = new
            for dep in dependents.get(gvar, ()):
                if dep not in queued:
                    queue.append(dep)
                    queued.add(dep)

    return EnvelopeResult(
        envelopes=envelopes,
        iterations=iterations,
        widened=tuple(sorted(widened)),
    )
