"""Static analysis of compiled deployment problems.

Interval abstract interpretation over the ground problem: invariant
resource envelopes (:mod:`.envelopes`), certified dead-action elimination
(:mod:`.deadcode`, :mod:`.certificates`), verified symmetry classes with
planner prune hints (:mod:`.symmetry`), and stable ENV/DEAD/SYM
diagnostics plus the :func:`analyze_problem` entry point (:mod:`.report`).

The differential audit lives in :mod:`repro.analysis.audit`; it imports
the planner, so it is intentionally **not** re-exported here — import it
directly to avoid a compile→analysis→planner import cycle.
"""

from .certificates import (
    PruneCertificate,
    certificate_for,
    check_certificate,
    interval_from_payload,
    interval_payload,
)
from .deadcode import DeadAction, find_dead_actions
from .envelopes import (
    AbstractStep,
    EnvelopeResult,
    Refutation,
    abstract_step,
    compute_envelopes,
    initial_envelopes,
)
from .report import AnalysisResult, analyze_problem
from .symmetry import (
    PruneHints,
    SymmetryClass,
    SymmetryResult,
    compute_symmetry,
    node_color_classes,
)

__all__ = [
    "AbstractStep",
    "AnalysisResult",
    "DeadAction",
    "EnvelopeResult",
    "PruneCertificate",
    "PruneHints",
    "Refutation",
    "SymmetryClass",
    "SymmetryResult",
    "abstract_step",
    "analyze_problem",
    "certificate_for",
    "check_certificate",
    "compute_envelopes",
    "compute_symmetry",
    "find_dead_actions",
    "initial_envelopes",
    "interval_from_payload",
    "interval_payload",
    "node_color_classes",
]
