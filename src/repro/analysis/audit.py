"""Differential soundness audit: replan everything with pruning on vs. off.

Static pruning is only trustworthy if it is *observably* free: for every
bundled domain and fig-10 scenario, planning with
``PlannerConfig(static_prune=...)`` must produce the same outcome as
planning without it — the same plan cost when solvable (and byte-identical
plans when the optimum is unique), the same error class when not.  This
module replans each case both ways and compares; CI runs it as the
``analyze-smoke`` job, and ``repro analyze --audit`` runs it on demand.

Kept out of ``repro.analysis.__init__`` on purpose: it imports the
planner, which would cycle through ``compile → analysis → planner``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..domains import grid, media, variants, webservice
from ..experiments import network_case, scenario
from ..model import AppSpec, Leveling
from ..network import Network
from ..planner import Planner, PlannerConfig, PlanningError

__all__ = ["AuditCase", "AuditRow", "bundled_cases", "fig10_cases", "run_audit"]


@dataclass(frozen=True)
class AuditCase:
    """One (app, network, leveling) instance to replan both ways."""

    name: str
    app: AppSpec
    network: Network
    leveling: Leveling
    rg_node_budget: int = 500_000


@dataclass
class AuditRow:
    """Outcome of one case, pruning off vs. on."""

    case: str
    status_off: str  # "solved" or the raised error class name
    status_on: str
    cost_off: float | None = None
    cost_on: float | None = None
    plan_off: tuple[str, ...] = ()
    plan_on: tuple[str, ...] = ()
    rg_expanded_off: int = 0
    rg_expanded_on: int = 0
    dead_actions: int = 0
    sym_pruned: int = 0

    @property
    def identical_cost(self) -> bool:
        if self.status_off != self.status_on:
            return False
        if self.cost_off is None:
            return self.cost_on is None
        return self.cost_on is not None and abs(self.cost_off - self.cost_on) < 1e-9

    @property
    def identical_plan(self) -> bool:
        return self.plan_off == self.plan_on

    @property
    def ok(self) -> bool:
        """The soundness criterion: same outcome class and same cost."""
        return self.status_off == self.status_on and self.identical_cost

    def to_record(self) -> dict[str, object]:
        return {
            "case": self.case,
            "status_off": self.status_off,
            "status_on": self.status_on,
            "cost_off": self.cost_off,
            "cost_on": self.cost_on,
            "identical_cost": self.identical_cost,
            "identical_plan": self.identical_plan,
            "rg_expanded_off": self.rg_expanded_off,
            "rg_expanded_on": self.rg_expanded_on,
            "dead_actions": self.dead_actions,
            "sym_pruned": self.sym_pruned,
            "ok": self.ok,
        }


def bundled_cases() -> list[AuditCase]:
    """Every bundled example domain, at its documented default shape."""
    cases = [
        AuditCase(
            name="webservice/fig5",
            app=webservice.build_app("server", "client"),
            network=webservice.build_network(),
            leveling=webservice.ws_leveling(),
        ),
        AuditCase(
            name="grid/4-sites",
            app=grid.build_app("site0_head", "site3_head"),
            network=grid.build_network(),
            leveling=grid.grid_leveling(),
        ),
        AuditCase(
            name="variants/chain",
            app=variants.build_app("src", "dst"),
            network=variants.build_network(60.0, 100.0),
            leveling=variants.variants_leveling(),
        ),
    ]
    for key in ("Tiny", "Small"):
        case = network_case(key)
        cases.append(
            AuditCase(
                name=f"media/{key}/B",
                app=media.build_app(case.server, case.client),
                network=case.network,
                leveling=scenario("B").leveling(),
            )
        )
    return cases


def fig10_cases(
    networks: tuple[str, ...] = ("Tiny", "Small", "Large"),
    scenarios: tuple[str, ...] = ("A", "B", "C", "D", "E"),
) -> list[AuditCase]:
    """The fig-10 / Table-2 sweep as audit cases (failure cells included)."""
    cases = []
    for net_key in networks:
        case = network_case(net_key)
        for scen_key in scenarios:
            cases.append(
                AuditCase(
                    name=f"media/{net_key}/{scen_key}",
                    app=media.build_app(case.server, case.client),
                    network=case.network,
                    leveling=scenario(scen_key).leveling(),
                )
            )
    return cases


def _solve(case: AuditCase, mode: str | None) -> tuple[str, object]:
    planner = Planner(
        PlannerConfig(
            leveling=case.leveling,
            rg_node_budget=case.rg_node_budget,
            static_prune=mode,
        )
    )
    try:
        plan = planner.solve(case.app, case.network)
    except PlanningError as exc:
        return type(exc).__name__, None
    return "solved", plan


def run_audit(
    cases: list[AuditCase] | None = None,
    mode: str = "full",
    fig10: bool = False,
    progress: Callable[[str], None] | None = None,
) -> list[AuditRow]:
    """Replan every case with ``static_prune`` off vs. ``mode``.

    Returns one :class:`AuditRow` per case; the audit passes when every
    row's ``ok`` is true.  ``fig10=True`` appends the full fig-10 sweep
    (including the infeasible scenario-A cells, which must fail with the
    same error class on both sides).
    """
    if cases is None:
        cases = bundled_cases()
        if fig10:
            cases = cases + fig10_cases()
    rows: list[AuditRow] = []
    for case in cases:
        if progress is not None:
            progress(case.name)
        status_off, plan_off = _solve(case, None)
        status_on, plan_on = _solve(case, mode)
        row = AuditRow(case=case.name, status_off=status_off, status_on=status_on)
        if plan_off is not None:
            row.cost_off = plan_off.cost_lb
            row.plan_off = tuple(a.name for a in plan_off.actions)
            row.rg_expanded_off = plan_off.stats.rg_expanded
        if plan_on is not None:
            row.cost_on = plan_on.cost_lb
            row.plan_on = tuple(a.name for a in plan_on.actions)
            row.rg_expanded_on = plan_on.stats.rg_expanded
            row.dead_actions = plan_on.stats.static_pruned
            row.sym_pruned = plan_on.stats.rg_sym_pruned
        rows.append(row)
    return rows
