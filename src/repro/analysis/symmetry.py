"""Symmetry classes of interchangeable nodes and components.

Two network nodes are *interchangeable* when swapping them is an
automorphism of the deployment problem: identical resource vectors,
labels, and software sets, no pinned/initial/goal role, and structurally
identical incident links.  Classes are found by color refinement
(1-dimensional Weisfeiler–Leman over the network graph), then each
candidate (representative, other) pair is **verified exactly** — first on
the network (neighbor sets and link signatures map under the swap), then
on the ground problem (every ground action mentioning either node has a
swap-image action with equal cost and swap-corresponding proposition
sets).  Only fully verified transpositions produce planner hints; an
unverifiable pair is silently dropped, so hints never compromise
soundness.

The classes themselves are exported as a standalone artifact (the
symmetry-breaking input a MILP/CP-SAT backend wants); the verified
per-action partner map feeds the RG's symmetry sibling prune
(:func:`repro.planner.rg.regression_search`, ``rg.prune.symmetry``).
Partner edges always point from a higher action index to a lower one, so
prune-dependency chains terminate.

Component symmetry (identical implements/requires/conditions/effects/cost
and identical pinned role) is reported for the artifact only; the planner
does not consume it yet.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compile import AvailProp, CompiledProblem, GroundAction, PlacedProp, PropTable
from ..model import AppSpec
from ..network import Network

__all__ = [
    "PruneHints",
    "SymmetryClass",
    "SymmetryResult",
    "compute_symmetry",
    "node_color_classes",
]


@dataclass(frozen=True)
class SymmetryClass:
    """One class of mutually interchangeable elements."""

    kind: str  # "node" | "component"
    members: tuple[str, ...]  # sorted element names, len >= 2


@dataclass(frozen=True)
class PruneHints:
    """Verified symmetry data in the shape the RG consumes.

    ``partner[a2] = (a1, rep, other)`` means: swapping ``rep`` and
    ``other`` maps ground action ``a2`` onto ``a1`` (equal cost, swapped
    proposition sets) under a verified network transposition, and
    ``a1 < a2``.  ``prop_node`` / ``action_nodes`` let the RG compute the
    nodes mentioned by a search node's propositions and plan tail.
    """

    partner: dict[int, tuple[int, str, str]]
    prop_node: dict[int, str]
    action_nodes: dict[int, tuple[str, ...]]


@dataclass(frozen=True)
class SymmetryResult:
    """Symmetry artifact of one compiled problem."""

    node_classes: tuple[SymmetryClass, ...]
    component_classes: tuple[SymmetryClass, ...]
    verified_pairs: tuple[tuple[str, str], ...]
    hints: PruneHints


# -- node coloring -------------------------------------------------------------


def _node_signature(app: AppSpec, network: Network, node_id: str) -> tuple:
    node = network.node(node_id)
    software = (
        tuple(sorted(node.software)) if node.software is not None else None
    )
    roles = tuple(sorted(c for c, n in app.pinned.items() if n == node_id))
    return (
        tuple(sorted(node.resources.items())),
        tuple(sorted(node.labels)),
        software,
        roles,
    )


def _link_signature(network: Network, a: str, b: str) -> tuple:
    link = network.link(a, b)
    return (tuple(sorted(link.resources.items())), tuple(sorted(link.labels)))


def node_color_classes(app: AppSpec, network: Network) -> list[tuple[str, ...]]:
    """Color-refinement partition of the nodes (deterministic).

    Returns every stable class with at least two members, each as a
    sorted member tuple, ordered by representative.  Classes are a
    *candidate* partition — callers must verify pairs before treating
    members as interchangeable.
    """
    node_ids = sorted(network.nodes)
    signature: dict[str, tuple] = {
        nid: _node_signature(app, network, nid) for nid in node_ids
    }
    color: dict[str, int] = {}
    distinct = sorted({signature[nid] for nid in node_ids})
    palette = {sig: i for i, sig in enumerate(distinct)}
    for nid in node_ids:
        color[nid] = palette[signature[nid]]

    while True:
        refined: dict[str, tuple] = {}
        for nid in node_ids:
            incident = tuple(
                sorted(
                    (_link_signature(network, nid, nb), color[nb])
                    for nb in network.neighbors(nid)
                )
            )
            refined[nid] = (color[nid], incident)
        distinct = sorted({refined[nid] for nid in node_ids})
        if len(distinct) == len(set(color.values())):
            break
        palette2 = {sig: i for i, sig in enumerate(distinct)}
        color = {nid: palette2[refined[nid]] for nid in node_ids}

    classes: dict[int, list[str]] = {}
    for nid in node_ids:
        classes.setdefault(color[nid], []).append(nid)
    return sorted(
        tuple(sorted(members)) for members in classes.values() if len(members) >= 2
    )


def _verified_network_transposition(
    app: AppSpec, network: Network, a: str, b: str
) -> bool:
    """Exactly verify that swapping ``a`` and ``b`` fixes the network."""
    if _node_signature(app, network, a) != _node_signature(app, network, b):
        return False
    if a in app.pinned.values() or b in app.pinned.values():
        return False
    sigma = {a: b, b: a}
    for x, y in ((a, b), (b, a)):
        neighbors_x = network.neighbors(x)
        mapped = {sigma.get(n, n) for n in neighbors_x}
        if mapped != network.neighbors(y):
            return False
        for n in sorted(neighbors_x):
            if _link_signature(network, x, n) != _link_signature(
                network, y, sigma.get(n, n)
            ):
                return False
    return True


# -- ground-action verification ------------------------------------------------


def _action_key(action: GroundAction, sigma: dict[str, str]) -> tuple:
    def m(node: str | None) -> str | None:
        if node is None:
            return None
        return sigma.get(node, node)

    return (
        action.kind,
        action.subject,
        m(action.node),
        m(action.src),
        m(action.dst),
        tuple(
            sorted(
                (sv, iv.lo, iv.hi, iv.lo_open, iv.hi_open)
                for sv, iv in action.committed.items()
            )
        ),
    )


def _action_nodes(action: GroundAction) -> tuple[str, ...]:
    return tuple(
        sorted({n for n in (action.node, action.src, action.dst) if n is not None})
    )


def _prop_image(props: PropTable, pid: int, sigma: dict[str, str]) -> int | None:
    """The interned id of a proposition's image under ``sigma``.

    Returns ``None`` when the image proposition does not exist (the swap
    is not a ground-problem symmetry).  Never interns new propositions.
    """
    prop = props[pid]
    if isinstance(prop, PlacedProp):
        node = sigma.get(prop.node)
        if node is None:
            return pid
        return props.index.get(PlacedProp(prop.component, node))
    if isinstance(prop, AvailProp):
        node = sigma.get(prop.node)
        if node is None:
            return pid
        return props.index.get(AvailProp(prop.interface, node, prop.levels))
    return pid  # node-free proposition kinds map to themselves


def _props_image(
    props: PropTable, pids: frozenset[int], sigma: dict[str, str]
) -> frozenset[int] | None:
    out: set[int] = set()
    for pid in pids:
        image = _prop_image(props, pid, sigma)
        if image is None:
            return None
        out.add(image)
    return frozenset(out)


def _verify_pair_actions(
    problem: CompiledProblem,
    rep: str,
    other: str,
    identity_index: dict[tuple, int],
    by_node: dict[str, list[int]],
) -> dict[int, int] | None:
    """Map every action mentioning ``rep``/``other`` to its swap image.

    Returns the involution mapping, or ``None`` when any involved action
    lacks an exact image (different key, cost, or proposition sets) —
    reachability pruning or asymmetric grounding broke the symmetry.
    """
    sigma = {rep: other, other: rep}
    involved = sorted(set(by_node.get(rep, [])) | set(by_node.get(other, [])))
    mapping: dict[int, int] = {}
    for idx in involved:
        action = problem.actions[idx]
        image_idx = identity_index.get(_action_key(action, sigma))
        if image_idx is None:
            return None
        image = problem.actions[image_idx]
        if image.cost_lb != action.cost_lb:
            return None
        if _props_image(problem.props, action.pre_props, sigma) != image.pre_props:
            return None
        if _props_image(problem.props, action.add_props, sigma) != image.add_props:
            return None
        mapping[idx] = image_idx
    for idx, image_idx in mapping.items():
        if mapping.get(image_idx) != idx:
            return None
    return mapping


# -- component classes ---------------------------------------------------------


def _component_classes(app: AppSpec) -> tuple[SymmetryClass, ...]:
    groups: dict[tuple, list[str]] = {}
    for name in sorted(app.components):
        comp = app.component(name)
        sig = (
            tuple(sorted(comp.implements)),
            tuple(sorted(comp.requires)),
            tuple(c.unparse() for c in comp.conditions),
            tuple(
                (a.target.name, a.op, a.expr.unparse()) for a in comp.effects
            ),
            comp.cost.unparse() if comp.cost is not None else None,
            app.pinned.get(name),
        )
        groups.setdefault(sig, []).append(name)
    return tuple(
        SymmetryClass(kind="component", members=tuple(sorted(members)))
        for _sig, members in sorted(groups.items())
        if len(members) >= 2
    )


# -- entry point ---------------------------------------------------------------


def compute_symmetry(problem: CompiledProblem) -> SymmetryResult:
    """Compute node/component classes and verified planner prune hints."""
    app, network = problem.app, problem.network
    candidate_classes = node_color_classes(app, network)

    identity_index: dict[tuple, int] = {}
    ambiguous: set[tuple] = set()
    by_node: dict[str, list[int]] = {}
    for action in problem.actions:
        key = _action_key(action, {})
        if key in identity_index:
            ambiguous.add(key)
        identity_index[key] = action.index
        for node in _action_nodes(action):
            by_node.setdefault(node, []).append(action.index)
    for key in ambiguous:  # a non-unique key cannot anchor a verified image
        del identity_index[key]

    partner: dict[int, tuple[int, str, str]] = {}
    verified_pairs: list[tuple[str, str]] = []
    node_classes: list[SymmetryClass] = []
    for members in candidate_classes:
        rep = members[0]
        verified_members = [rep]
        for other in members[1:]:
            if not _verified_network_transposition(app, network, rep, other):
                continue
            mapping = _verify_pair_actions(
                problem, rep, other, identity_index, by_node
            )
            if mapping is None:
                continue
            verified_pairs.append((rep, other))
            verified_members.append(other)
            for idx, image_idx in sorted(mapping.items()):
                if image_idx < idx and idx not in partner:
                    partner[idx] = (image_idx, rep, other)
        if len(verified_members) >= 2:
            node_classes.append(
                SymmetryClass(kind="node", members=tuple(sorted(verified_members)))
            )

    prop_node: dict[int, str] = {}
    for pid in range(len(problem.props)):
        node = getattr(problem.props[pid], "node", None)
        if node is not None:
            prop_node[pid] = node
    action_nodes = {
        action.index: _action_nodes(action) for action in problem.actions
    }

    return SymmetryResult(
        node_classes=tuple(node_classes),
        component_classes=_component_classes(app),
        verified_pairs=tuple(verified_pairs),
        hints=PruneHints(
            partner=partner, prop_node=prop_node, action_nodes=action_nodes
        ),
    )
