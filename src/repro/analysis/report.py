"""Analysis results, stable diagnostics, and the ``analyze_problem`` entry.

The :class:`AnalysisResult` bundles everything the static pass computed —
envelopes, dead actions with certificates, symmetry classes, prune hints —
and renders it as stable lint diagnostics (reusing the PR-1
:class:`~repro.lint.diagnostics.LintReport` machinery) or as a JSON
artifact.  Diagnostic codes are append-only, like the linter's:

``ENV001`` (info)
    Envelope fixpoint summary (variables tracked / bounded / widened).
``ENV002`` (warning)
    A ground variable lost a bound to widening — its envelope is
    one-sided or unbounded, weakening dead-action detection there.
``DEAD001`` (info)
    A provably unfirable ground action, with its certificate's refuting
    argument in the message.
``SYM001`` (info)
    A verified class of interchangeable network nodes.
``SYM002`` (info)
    A class of structurally identical components.

The result deliberately holds **no references to ground actions or the
compiled problem** — only indices, names, intervals, and plain data — so
a cached copy can be shared across forked problems and serialized safely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..compile import CompiledProblem
from ..lint import LintReport, Severity, SourceLocation
from .certificates import interval_payload
from .deadcode import DeadAction, find_dead_actions
from .envelopes import EnvelopeResult, compute_envelopes
from .symmetry import PruneHints, SymmetryResult, compute_symmetry

__all__ = ["AnalysisResult", "analyze_problem"]


@dataclass
class AnalysisResult:
    """Everything the static analysis derived from one compiled problem."""

    app_name: str
    network_name: str
    total_actions: int
    envelopes: EnvelopeResult
    dead: tuple[DeadAction, ...]
    symmetry: SymmetryResult
    analysis_seconds: float

    @property
    def hints(self) -> PruneHints:
        return self.symmetry.hints

    def dead_indices(self) -> frozenset[int]:
        """Indices of provably unfirable actions, for planner exclusion."""
        return frozenset(d.index for d in self.dead)

    # -- rendering ---------------------------------------------------------

    def to_report(self) -> LintReport:
        """Render the analysis as stable ENV/DEAD/SYM lint diagnostics."""
        report = LintReport(app_name=self.app_name, network_name=self.network_name)
        env = self.envelopes
        report.add(
            "ENV001",
            Severity.INFO,
            (
                f"interval fixpoint: {len(env.envelopes)} variable(s) tracked, "
                f"{env.bounded} bounded, {len(env.widened)} widened, "
                f"{env.iterations} iteration(s)"
            ),
            SourceLocation(kind="app", name=self.app_name, section="envelopes"),
        )
        for gvar in env.widened:
            report.add(
                "ENV002",
                Severity.WARNING,
                (
                    f"envelope of {gvar} was widened to {env.envelopes[gvar]}; "
                    "dead-action detection is weakened for this variable"
                ),
                SourceLocation(kind="variable", name=gvar, section="envelopes"),
            )
        for dead in self.dead:
            cert = dead.certificate
            report.add(
                "DEAD001",
                Severity.INFO,
                f"dead ground action [{cert.kind}]: {cert.detail}",
                SourceLocation(
                    kind="action",
                    name=dead.name,
                    section="actions",
                    index=dead.index,
                ),
            )
        for cls in self.symmetry.node_classes:
            report.add(
                "SYM001",
                Severity.INFO,
                (
                    f"{len(cls.members)} interchangeable node(s): "
                    + ", ".join(cls.members)
                ),
                SourceLocation(
                    kind="network", name=cls.members[0], section="symmetry"
                ),
            )
        for cls in self.symmetry.component_classes:
            report.add(
                "SYM002",
                Severity.INFO,
                (
                    f"{len(cls.members)} structurally identical component(s): "
                    + ", ".join(cls.members)
                ),
                SourceLocation(
                    kind="component", name=cls.members[0], section="symmetry"
                ),
            )
        return report

    def to_payload(self) -> dict[str, object]:
        """JSON-ready artifact: diagnostics plus the full machine data."""
        env = self.envelopes
        return {
            "app": self.app_name,
            "network": self.network_name,
            "analysis_seconds": round(self.analysis_seconds, 6),
            "actions": {
                "total": self.total_actions,
                "dead": len(self.dead),
            },
            "envelopes": {
                "iterations": env.iterations,
                "bounded": env.bounded,
                "widened": list(env.widened),
                "variables": {
                    gvar: interval_payload(iv)
                    for gvar, iv in sorted(env.envelopes.items())
                },
            },
            "dead_actions": [d.certificate.to_dict() for d in self.dead],
            "symmetry": {
                "node_classes": [
                    list(cls.members) for cls in self.symmetry.node_classes
                ],
                "component_classes": [
                    list(cls.members) for cls in self.symmetry.component_classes
                ],
                "verified_pairs": [
                    list(pair) for pair in self.symmetry.verified_pairs
                ],
                "partner_edges": len(self.symmetry.hints.partner),
            },
            "diagnostics": self.to_report().to_payload()["diagnostics"],
        }

    def render_text(self) -> str:
        head = (
            f"analyze {self.app_name!r} on {self.network_name!r}: "
            f"{len(self.dead)}/{self.total_actions} action(s) dead, "
            f"{len(self.symmetry.node_classes)} node class(es), "
            f"{len(self.symmetry.component_classes)} component class(es) "
            f"({self.analysis_seconds * 1000.0:.1f} ms)"
        )
        return head + "\n" + self.to_report().render_text()


def analyze_problem(problem: CompiledProblem) -> AnalysisResult:
    """Run the full static pass over one compiled problem."""
    start = time.perf_counter()
    envelopes = compute_envelopes(problem)
    dead = find_dead_actions(problem, envelopes.envelopes)
    symmetry = compute_symmetry(problem)
    return AnalysisResult(
        app_name=problem.app.name,
        network_name=problem.network.name,
        total_actions=len(problem.actions),
        envelopes=envelopes,
        dead=dead,
        symmetry=symmetry,
        analysis_seconds=time.perf_counter() - start,
    )
