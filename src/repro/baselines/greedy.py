"""The original greedy Sekitei baseline (paper §2.2, Scenario A).

The original planner has no resource levels: every real-valued variable
lives in the single interval ``[0, ∞)``, and feasibility is judged at the
maximum possible utilization (the static property bound).  In the leveled
formulation this is *exactly* the trivial leveling, so the baseline is the
same planner with all level specifications erased — which is also how the
paper frames it ("Scenario A corresponds to the original version of
Sekitei").
"""

from __future__ import annotations

from ..model import AppSpec, Leveling
from ..network import Network
from ..obs import Telemetry
from ..planner import Plan, Planner, PlannerConfig

__all__ = ["GreedySekitei"]


class GreedySekitei:
    """Greedy worst-case planner: finds feasible plans, never optimizes.

    Guarantees of the greedy approach (paper §2.2): if it finds a plan,
    the plan is feasible at *any* utilization up to the maximum.  Its two
    shortcomings are the paper's motivation: it fails in
    resource-constrained situations where a throttled plan exists
    (Scenario 1), and its plan choice ignores cost (Scenario 2) — with
    trivial levels every action's cost lower bound collapses to the
    formula's value at zero bandwidth, so the search effectively minimizes
    the number of actions.
    """

    def __init__(
        self,
        rg_node_budget: int = 500_000,
        telemetry: Telemetry | None = None,
    ):
        self._planner = Planner(
            PlannerConfig(
                leveling=Leveling({}, name="greedy-trivial"),
                rg_node_budget=rg_node_budget,
                telemetry=telemetry,
            )
        )

    def solve(self, app: AppSpec, network: Network) -> Plan:
        """Find any feasible plan under worst-case resource assumptions.

        Raises the same exceptions as :class:`~repro.planner.Planner`;
        :class:`~repro.planner.ResourceInfeasible` signals the Scenario 1
        failure mode.
        """
        return self._planner.solve(app, network)
