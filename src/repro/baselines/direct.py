"""Direct-connection strawman.

The trivial "solution" the paper mentions in §5: connect the client and
server directly along a shortest path, inserting no auxiliary components.
Useful as a sanity baseline — it succeeds exactly when no transformation
is needed, and its failure on the evaluation networks is what motivates
the whole planning machinery.
"""

from __future__ import annotations

from ..compile import CompiledProblem, GroundAction, compile_problem
from ..model import AppSpec, Leveling
from ..network import Network
from ..planner.errors import ExecutionError, ResourceInfeasible
from ..planner.executor import execute_plan
from ..planner.plan import Plan

__all__ = ["DirectConnection"]


class DirectConnection:
    """Cross the goal components' required interfaces along shortest paths."""

    def solve(
        self,
        app: AppSpec,
        network: Network,
        leveling: Leveling | None = None,
    ) -> Plan:
        """Build the no-auxiliary-components plan, validating it exactly.

        Raises :class:`ResourceInfeasible` when the direct plan does not
        execute (insufficient bandwidth — the Fig. 1 situation).
        """
        problem = compile_problem(app, network, leveling or Leveling({}, "direct"))
        source_nodes: dict[str, str] = {}
        for placement in app.initial_placements:
            comp = app.component(placement.component)
            for iface in comp.implements:
                source_nodes[iface] = placement.node

        actions: list[GroundAction] = []
        for placement in app.goal_placements:
            comp = app.component(placement.component)
            for iface in comp.requires:
                src = source_nodes.get(iface)
                if src is None:
                    raise ResourceInfeasible(
                        f"direct connection impossible: no pre-placed source for "
                        f"interface {iface}"
                    )
                path = network.shortest_path(src, placement.node)
                if path is None:
                    raise ResourceInfeasible(f"no path from {src} to {placement.node}")
                for a, b in zip(path, path[1:]):
                    actions.append(self._pick_cross(problem, iface, a, b))
            actions.append(self._pick_place(problem, placement.component, placement.node))

        try:
            execute_plan(problem, actions)
        except ExecutionError as exc:
            raise ResourceInfeasible(f"direct connection infeasible: {exc}") from exc
        plan = Plan(problem=problem, actions=actions, cost_lb=sum(a.cost_lb for a in actions))
        return plan

    @staticmethod
    def _pick_cross(problem: CompiledProblem, iface: str, a: str, b: str) -> GroundAction:
        candidates = [
            act
            for act in problem.actions
            if act.kind == "cross" and act.subject == iface and act.src == a and act.dst == b
        ]
        if not candidates:
            raise ResourceInfeasible(f"no ground crossing of {iface} over {a}->{b}")
        # Highest committed level = maximum utilization (greedy).
        return max(candidates, key=lambda act: act.cost_lb)

    @staticmethod
    def _pick_place(problem: CompiledProblem, component: str, node: str) -> GroundAction:
        candidates = [
            act
            for act in problem.actions
            if act.kind == "place" and act.subject == component and act.node == node
        ]
        if not candidates:
            raise ResourceInfeasible(f"no ground placement of {component} on {node}")
        return max(candidates, key=lambda act: act.cost_lb)
