"""Exhaustive optimal search — a ground-truth oracle for small problems.

Branch-and-bound depth-first search over forward-executable action
sequences of a compiled problem, minimizing *exact* execution cost.  Used
by the test suite to certify that the leveled planner's plans are optimal
(within the level approximation) on instances small enough to enumerate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..compile import CompiledProblem, GroundAction
from ..planner.errors import ExecutionError, PlanningError
from ..planner.executor import execute_plan

__all__ = ["ExhaustiveResult", "exhaustive_optimal"]


@dataclass
class ExhaustiveResult:
    actions: list[GroundAction]
    exact_cost: float
    nodes_visited: int


def exhaustive_optimal(
    problem: CompiledProblem,
    max_depth: int = 10,
    node_limit: int = 2_000_000,
) -> ExhaustiveResult | None:
    """Cheapest exactly-executable plan of length ≤ ``max_depth``.

    Returns ``None`` when no plan exists within the depth bound.

    Raises
    ------
    PlanningError
        When ``node_limit`` states are visited — the instance is too big
        for exhaustive search.
    """
    goal = problem.goal_prop_ids
    actions = problem.actions

    best_cost = math.inf
    best_plan: list[GroundAction] | None = None
    visited = 0
    # memo: (achieved propositions, exact resource-state signature) ->
    # cheapest cost reaching it.  The signature matters: two level
    # variants of the same action yield identical proposition sets but
    # different concrete values, with different futures.
    memo: dict[tuple[frozenset[int], tuple], float] = {}

    def state_signature(values: dict[str, float]) -> tuple:
        return tuple(sorted((k, round(v, 6)) for k, v in values.items()))

    def dfs(
        achieved: frozenset[int],
        prefix: list[GroundAction],
        cost: float,
        values: dict[str, float],
    ) -> None:
        nonlocal best_cost, best_plan, visited
        visited += 1
        if visited > node_limit:
            raise PlanningError(f"exhaustive search exceeded {node_limit} states")
        if cost >= best_cost:
            return
        if goal <= achieved:
            best_cost = cost
            best_plan = list(prefix)
            return
        if len(prefix) >= max_depth:
            return
        key = (achieved, state_signature(values))
        seen = memo.get(key)
        if seen is not None and seen <= cost:
            return
        memo[key] = cost

        used = {a.index for a in prefix}
        for action in actions:
            if action.index in used:
                continue
            if not action.pre_props <= achieved:
                continue
            candidate = prefix + [action]
            try:
                report = execute_plan(problem, candidate)
            except ExecutionError:
                continue
            # Recompute exact cost from the report (costs are bandwidth
            # dependent, so the prefix cost cannot simply be accumulated).
            dfs(
                achieved | action.add_props,
                candidate,
                report.total_cost,
                report.final_values,
            )

    initial_values = execute_plan(problem, []).final_values
    dfs(frozenset(problem.initial_prop_ids), [], 0.0, initial_values)
    if best_plan is None:
        return None
    return ExhaustiveResult(best_plan, best_cost, visited)
