"""Baseline planners: original greedy Sekitei, exhaustive oracle, strawman."""

from .direct import DirectConnection
from .exhaustive import ExhaustiveResult, exhaustive_optimal
from .greedy import GreedySekitei

__all__ = ["GreedySekitei", "DirectConnection", "exhaustive_optimal", "ExhaustiveResult"]
