"""Structured lint findings.

Every check in :mod:`repro.lint` reports a :class:`Diagnostic`: a stable
error code (``MONO001``, ``LVL002``, ...), a severity, a human-readable
message, and a :class:`SourceLocation` naming the spec element the finding
is anchored to (component / interface / section / formula index).  A
:class:`LintReport` collects diagnostics and renders them as text or JSON.

Codes are append-only: a code, once released, keeps its meaning forever so
CI suppressions and documentation stay valid (see ``docs/LINTING.md``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Severity", "SourceLocation", "Diagnostic", "LintReport"]


class Severity(enum.Enum):
    """How bad a finding is.

    ERROR findings make the spec unsound or unplannable; WARNING findings
    are very likely mistakes but have well-defined (if surprising)
    semantics; INFO findings are observations.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """Where in a specification a finding is anchored.

    Specs are built programmatically or parsed from text, so locations are
    structural rather than line-based: the owning element (a component,
    interface, the leveling, the network pairing, or the app itself), the
    section within it, the formula index inside the section, and the
    formula's text when one is implicated.
    """

    kind: str  # "component" | "interface" | "leveling" | "network" | "app"
    name: str  # element name (component/interface name, resource, ...)
    section: str | None = None  # "conditions" | "effects" | "cost" | ...
    index: int | None = None  # formula index within the section
    formula: str | None = None  # unparsed formula text

    def __str__(self) -> str:
        out = f"{self.kind} {self.name}"
        if self.section is not None:
            out += f", {self.section}"
            if self.index is not None:
                out += f"[{self.index}]"
        if self.formula is not None:
            out += f" `{self.formula}`"
        return out

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "name": self.name}
        if self.section is not None:
            out["section"] = self.section
        if self.index is not None:
            out["index"] = self.index
        if self.formula is not None:
            out["formula"] = self.formula
        return out


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One lint finding."""

    code: str
    severity: Severity
    message: str
    location: SourceLocation

    def __str__(self) -> str:
        return f"{self.severity}[{self.code}] {self.location}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "location": self.location.to_dict(),
        }


@dataclass
class LintReport:
    """All findings of one lint run over an (app, network, leveling)."""

    app_name: str = ""
    network_name: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(
        self,
        code: str,
        severity: Severity,
        message: str,
        location: SourceLocation,
    ) -> Diagnostic:
        diag = Diagnostic(code, severity, message, location)
        self.diagnostics.append(diag)
        return diag

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    # -- queries -----------------------------------------------------------

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def is_clean(self) -> bool:
        return not self.diagnostics

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics ordered by severity, then code, then location."""
        return sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.code, str(d.location)),
        )

    # -- rendering ---------------------------------------------------------

    def summary(self) -> str:
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_info = len(self.diagnostics) - n_err - n_warn
        parts = [f"{n_err} error(s)", f"{n_warn} warning(s)"]
        if n_info:
            parts.append(f"{n_info} info(s)")
        return ", ".join(parts)

    def render_text(self) -> str:
        target = f"{self.app_name!r} on {self.network_name!r}"
        if self.is_clean():
            return f"lint {target}: clean"
        lines = [f"lint {target}: {self.summary()}"]
        lines += [f"  {d}" for d in self.sorted()]
        return "\n".join(lines)

    def to_payload(self) -> dict:
        return {
            "app": self.app_name,
            "network": self.network_name,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "total": len(self.diagnostics),
            },
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_payload(), indent=indent)
