"""App/network pairing checks, as structured diagnostics.

The same consistency rules :mod:`repro.model.validation` enforces before
compilation, re-reported with stable codes and locations so they surface
through ``repro lint`` alongside the deeper analyses:

* ``NET001`` — a placement references a node the network does not have;
* ``NET002`` — a pin (outside the placements) references an unknown node;
* ``NET003`` / ``NET004`` — a node/link carries resources the app never
  declared (the planner would silently ignore them);
* ``NET005`` — a declared resource that no node (or no link) provides —
  including the degenerate single-node network with link-scoped
  resources declared;
* ``NET006`` — the network is not connected.
"""

from __future__ import annotations

from ..network import ResourceScope
from .context import LintContext
from .diagnostics import LintReport, Severity, SourceLocation

__all__ = ["run"]


def run(ctx: LintContext, report: LintReport) -> None:
    app, network = ctx.app, ctx.network

    placed = set()
    for placement in app.initial_placements + app.goal_placements:
        placed.add(placement.component)
        if placement.node not in network:
            report.add(
                "NET001",
                Severity.ERROR,
                f"placement of {placement.component} references unknown "
                f"node {placement.node!r}",
                SourceLocation("network", network.name, "placements"),
            )
    for comp, node in sorted(app.pinned.items()):
        if comp not in placed and node not in network:
            report.add(
                "NET002",
                Severity.ERROR,
                f"component {comp} is pinned to unknown node {node!r}",
                SourceLocation("network", network.name, "pins"),
            )

    node_res = {r.name for r in app.node_resources()}
    link_res = {r.name for r in app.link_resources()}
    for node in network.nodes.values():
        unknown = set(node.resources) - node_res
        if unknown:
            report.add(
                "NET003",
                Severity.ERROR,
                f"node {node.id} carries undeclared resources "
                f"{sorted(unknown)}; declare them in the app or drop them",
                SourceLocation("network", network.name, "nodes"),
            )
    for link in network.links.values():
        unknown = set(link.resources) - link_res
        if unknown:
            report.add(
                "NET004",
                Severity.ERROR,
                f"link {link.key} carries undeclared resources "
                f"{sorted(unknown)}; declare them in the app or drop them",
                SourceLocation("network", network.name, "links"),
            )

    for r in app.resources:
        if r.scope is ResourceScope.NODE:
            missing = [n.id for n in network.nodes.values() if r.name not in n.resources]
            if missing and len(missing) == len(network.nodes):
                report.add(
                    "NET005",
                    Severity.ERROR,
                    f"no node provides declared resource {r.name!r}",
                    SourceLocation("network", network.name, "resources"),
                )
        else:
            if not network.links:
                report.add(
                    "NET005",
                    Severity.ERROR,
                    f"link resource {r.name!r} is declared but the network "
                    "has no links at all",
                    SourceLocation("network", network.name, "resources"),
                )
                continue
            missing = [lk.key for lk in network.links.values() if r.name not in lk.resources]
            if missing and len(missing) == len(network.links):
                report.add(
                    "NET005",
                    Severity.ERROR,
                    f"no link provides declared resource {r.name!r}",
                    SourceLocation("network", network.name, "resources"),
                )

    if not network.is_connected():
        report.add(
            "NET006",
            Severity.ERROR,
            "network is not connected; streams cannot reach isolated parts",
            SourceLocation("network", network.name),
        )
