"""Monotonicity and domain verification of specification formulas.

The leveled planner is only sound when every specification function is
monotone in each real-valued variable it reads (the paper's single
restriction on specifications) and total over the reachable value ranges.
This pass proves both syntactically:

* ``MONO001`` — a formula is not provably monotone in some variable
  (e.g. a product of two variable sub-expressions);
* ``MONO002`` — a division whose divisor can be zero somewhere in the
  reachable ranges (interval arithmetic over ``[0, bound]`` envelopes);
* ``MONO003`` — a call to a function with no registered profile table;
* ``MONO004`` — an effect that is *nonincreasing* in a degradable
  property: throttling the input would then raise an output or a
  consumption, breaking the degradable-matching semantics.
"""

from __future__ import annotations

from ..expr import Direction, monotonicity, variables
from ..expr.ast_nodes import And, Assign, BinOp, Call, Compare, Node
from ..expr.evaluator import eval_interval
from ..expr.errors import EvalError
from ..expr.functions import DEFAULT_REGISTRY
from ..intervals import Interval
from .context import LintContext, comp_loc, iface_loc
from .diagnostics import LintReport, Severity, SourceLocation

__all__ = ["run"]


def _is_stream_var(var: str) -> bool:
    return not var.startswith(("Node.", "Link."))


def _comparison_sides(cond: Node):
    """All arithmetic sides of a condition (And-flattened)."""
    if isinstance(cond, And):
        for part in cond.parts:
            yield from _comparison_sides(part)
    elif isinstance(cond, Compare):
        yield cond.left
        yield cond.right


def _domain_problems(
    node: Node, env: dict[str, Interval]
) -> list[tuple[str, str]]:
    """(code, sub-expression) pairs for division/domain hazards."""
    problems: list[tuple[str, str]] = []

    def walk(n: Node) -> None:
        if isinstance(n, BinOp):
            walk(n.left)
            walk(n.right)
            if n.op == "/":
                try:
                    divisor = eval_interval(n.right, env)
                except EvalError:
                    return  # a nested hazard was already recorded
                if 0.0 in divisor:
                    problems.append(("MONO002", n.unparse()))
        elif isinstance(n, Call):
            for a in n.args:
                walk(a)
            if n.fn not in ("min", "max") and n.fn not in DEFAULT_REGISTRY:
                problems.append(("MONO003", n.unparse()))
        elif isinstance(n, Compare):
            walk(n.left)
            walk(n.right)
        elif isinstance(n, And):
            for p in n.parts:
                walk(p)
        elif isinstance(n, Assign):
            walk(n.expr)

    walk(node)
    return problems


def _check_expr_monotone(
    ctx: LintContext,
    report: LintReport,
    expr: Node,
    loc: SourceLocation,
    what: str,
) -> None:
    for var in sorted(variables(expr)):
        if monotonicity(expr, var) is Direction.UNKNOWN:
            report.add(
                "MONO001",
                Severity.ERROR,
                f"{what} is not provably monotone in {var}; the planner "
                "requires every specification function to be monotone in "
                "each variable it reads",
                loc,
            )


def _check_effect_degradable(
    ctx: LintContext,
    report: LintReport,
    assign: Assign,
    loc: SourceLocation,
) -> None:
    for var in sorted(variables(assign.expr)):
        if not _is_stream_var(var) or "." not in var:
            continue
        iface_name, prop_name = var.split(".", 1)
        iface = ctx.app.interfaces.get(iface_name)
        if iface is None:
            continue
        try:
            degradable = iface.is_degradable(prop_name)
        except Exception:
            continue
        if degradable and monotonicity(assign.expr, var) is Direction.NONINCREASING:
            report.add(
                "MONO004",
                Severity.ERROR,
                f"effect is nonincreasing in degradable property {var}: "
                "throttling the input would raise this output/consumption, "
                "so degradable matching becomes unsound (declare the "
                "property non-degradable or rewrite the effect)",
                loc,
            )


def _check_domains(
    ctx: LintContext,
    report: LintReport,
    node: Node,
    env: dict[str, Interval],
    loc: SourceLocation,
) -> None:
    for code, subexpr in _domain_problems(node, env):
        if code == "MONO002":
            msg = (
                f"divisor of `{subexpr}` can be zero over the reachable "
                "value ranges; guard the formula or bound the divisor away "
                "from zero"
            )
        else:
            msg = (
                f"`{subexpr}` calls a function with no registered profile "
                "table; register a TableFunction before planning"
            )
        report.add(code, Severity.ERROR, msg, loc)


def run(ctx: LintContext, report: LintReport) -> None:
    for comp in ctx.app.components.values():
        env = ctx.component_env(comp)
        for i, cond in enumerate(comp.conditions):
            loc = comp_loc(comp, "conditions", i, cond)
            for side in _comparison_sides(cond):
                _check_expr_monotone(ctx, report, side, loc, "condition operand")
            _check_domains(ctx, report, cond, env, loc)
        for i, assign in enumerate(comp.effects):
            loc = comp_loc(comp, "effects", i, assign)
            _check_expr_monotone(ctx, report, assign.expr, loc, "effect")
            _check_effect_degradable(ctx, report, assign, loc)
            _check_domains(ctx, report, assign, env, loc)

    for iface in ctx.app.interfaces.values():
        env = ctx.interface_env(iface)
        for i, cond in enumerate(iface.cross_conditions):
            loc = iface_loc(iface, "cross_conditions", i, cond)
            for side in _comparison_sides(cond):
                _check_expr_monotone(ctx, report, side, loc, "cross-condition operand")
            _check_domains(ctx, report, cond, env, loc)
        for i, assign in enumerate(iface.cross_effects):
            loc = iface_loc(iface, "cross_effects", i, assign)
            _check_expr_monotone(ctx, report, assign.expr, loc, "cross effect")
            _check_effect_degradable(ctx, report, assign, loc)
            _check_domains(ctx, report, assign, env, loc)
