"""Cost-function sanity.

The post-optimizer and the admissible search heuristics assume costs are
defined on every reachable state, never negative, and do not *decrease* as
the processed bandwidth grows (cheapest-level lower bounds would otherwise
overestimate).  This pass verifies each component placement cost and each
interface crossing cost over the reachable value ranges:

* ``COST001`` — the cost image includes negative values;
* ``COST002`` — the cost is nonincreasing or unclassifiable in a stream
  property (the level lower bound may then exceed the exact cost);
* ``COST003`` — the cost is undefined somewhere on the reachable ranges
  (division by zero or an unregistered profile function).
"""

from __future__ import annotations

from ..expr import Direction, monotonicity, variables
from ..expr.ast_nodes import Node
from ..expr.errors import EvalError
from ..expr.evaluator import eval_interval
from ..intervals import Interval
from .context import LintContext, comp_loc, iface_loc
from .diagnostics import LintReport, Severity, SourceLocation

__all__ = ["run"]


def _is_stream_var(var: str) -> bool:
    return not var.startswith(("Node.", "Link."))


def _check_cost(
    ctx: LintContext,
    report: LintReport,
    cost: Node,
    env: dict[str, Interval],
    loc: SourceLocation,
) -> None:
    try:
        image = eval_interval(cost, env)
    except EvalError as exc:
        report.add(
            "COST003",
            Severity.ERROR,
            f"cost cannot be evaluated over the reachable value ranges "
            f"({exc}); the planner would fail mid-search",
            loc,
        )
        return
    if not image.is_empty() and image.lo < -1e-9:
        report.add(
            "COST001",
            Severity.ERROR,
            f"cost image {image} includes negative values; costs must be "
            "non-negative for the admissible search bounds to hold",
            loc,
        )
    for var in sorted(variables(cost)):
        if not _is_stream_var(var):
            continue
        direction = monotonicity(cost, var)
        if direction in (Direction.NONINCREASING, Direction.UNKNOWN):
            report.add(
                "COST002",
                Severity.WARNING,
                f"cost is {direction.name.lower().replace('_', '-')} in "
                f"{var}; the cost optimizer prices committed levels at "
                "their cheapest value and assumes costs do not shrink as "
                "demand grows",
                loc,
            )


def run(ctx: LintContext, report: LintReport) -> None:
    for comp in ctx.app.components.values():
        if comp.cost is None:
            continue
        _check_cost(
            ctx,
            report,
            comp.cost,
            ctx.component_env(comp),
            comp_loc(comp, "cost", None, comp.cost),
        )
    for iface in ctx.app.interfaces.values():
        if iface.cross_cost is None:
            continue
        _check_cost(
            ctx,
            report,
            iface.cross_cost,
            ctx.interface_env(iface),
            iface_loc(iface, "cross_cost", None, iface.cross_cost),
        )
