"""Dead-spec detection: unsatisfiable conditions, unplaceable components,
and interfaces no goal can use.

The pass runs a type-level analogue of the compiler's best-value
reachability (``compile/reachability.py``): starting from the interfaces
the pre-placed sources produce, a component is placeable-in-principle when
all its required interfaces are reachable and its conditions are
satisfiable at the *best achievable* values (the static bounds — resource
sharing and consumption only lower values, so this is an optimistic and
therefore sound filter).  When the spec is otherwise clean, a *deep* check
compiles the full problem and reuses the compiler's ground best-value
propagation to verify the goal survives on the concrete network.

* ``REACH001`` — a required interface that no component implements;
* ``REACH002`` — a condition (or cross condition) unsatisfiable even at
  best-case values;
* ``REACH003`` — a component that can never be placed because a required
  interface is unreachable from the pre-placed sources;
* ``REACH004`` — a goal placement whose component can never be placed;
* ``REACH005`` — an interface that is produced but that no goal can use;
* ``REACH006`` — (deep) the compiled goal has no achieving ground action
  on the concrete network.
"""

from __future__ import annotations

from ..expr import variables
from ..expr.errors import EvalError
from ..expr.evaluator import condition_satisfiable
from .context import LintContext, comp_loc, iface_loc
from .diagnostics import LintReport, Severity, SourceLocation

__all__ = ["run", "run_deep"]


def run(ctx: LintContext, report: LintReport) -> None:
    app = ctx.app
    producers: dict[str, list[str]] = {name: [] for name in app.interfaces}
    for comp in app.components.values():
        for iface in comp.implements:
            producers.setdefault(iface, []).append(comp.name)

    goal_comps = {p.component for p in app.goal_placements}
    initial_comps = {p.component for p in app.initial_placements}

    # REACH001 — requirements nobody can satisfy.
    for comp in app.components.values():
        for i, iface in enumerate(comp.requires):
            if not producers.get(iface):
                report.add(
                    "REACH001",
                    Severity.ERROR,
                    f"required interface {iface!r} is implemented by no "
                    "component; nothing can ever feed this requirement",
                    comp_loc(comp, "requires", i),
                )

    # REACH002 — conditions unsatisfiable at best-case values.
    condition_blocked: set[str] = set()
    for comp in app.components.values():
        env = ctx.component_env(comp)
        for i, cond in enumerate(comp.conditions):
            try:
                sat = condition_satisfiable(cond, env)
            except EvalError:
                continue  # domain problem; the monotonicity pass reports it
            if not sat:
                condition_blocked.add(comp.name)
                severity = (
                    Severity.ERROR if comp.name in goal_comps else Severity.WARNING
                )
                best = ", ".join(
                    f"{v} <= {env[v].hi:g}"
                    for v in sorted(variables(cond))
                    if v in env
                )
                report.add(
                    "REACH002",
                    severity,
                    "condition is unsatisfiable even at the best achievable "
                    f"values ({best}); the component can never be placed",
                    comp_loc(comp, "conditions", i, cond),
                )
    for iface in app.interfaces.values():
        env = ctx.interface_env(iface)
        for i, cond in enumerate(iface.cross_conditions):
            try:
                sat = condition_satisfiable(cond, env)
            except EvalError:
                continue
            if not sat:
                report.add(
                    "REACH002",
                    Severity.WARNING,
                    "cross condition is unsatisfiable on every link of this "
                    "network; the stream can never cross a link",
                    iface_loc(iface, "cross_conditions", i, cond),
                )

    # Type-level placeability fixed point.
    reachable: set[str] = set()
    placeable: set[str] = set()
    for name in initial_comps:
        comp = app.components[name]
        placeable.add(name)
        reachable.update(comp.implements)
    changed = True
    while changed:
        changed = False
        for comp in app.components.values():
            if comp.name in placeable or comp.name in condition_blocked:
                continue
            if all(req in reachable for req in comp.requires):
                placeable.add(comp.name)
                if not set(comp.implements) <= reachable:
                    reachable.update(comp.implements)
                changed = True

    # REACH003 — blocked by unreachable inputs.
    for comp in app.components.values():
        if comp.name in placeable or comp.name in condition_blocked:
            continue
        missing = sorted(set(comp.requires) - reachable)
        severity = Severity.ERROR if comp.name in goal_comps else Severity.WARNING
        report.add(
            "REACH003",
            severity,
            f"component can never be placed: required interface(s) "
            f"{missing} are unreachable from the pre-placed sources",
            comp_loc(comp),
        )

    # REACH004 — goals that can never be deployed.
    for placement in app.goal_placements:
        if placement.component not in placeable:
            report.add(
                "REACH004",
                Severity.ERROR,
                f"goal placement of {placement.component} on "
                f"{placement.node} is unreachable: the component can never "
                "be placed (see the REACH002/REACH003 findings above)",
                SourceLocation("app", app.name, "goal_placements"),
            )

    # REACH005 — interfaces no goal can use (backward demand closure).
    demanded: set[str] = set()
    frontier = [
        iface for name in goal_comps for iface in app.components[name].requires
    ]
    while frontier:
        iface = frontier.pop()
        if iface in demanded:
            continue
        demanded.add(iface)
        for producer in producers.get(iface, ()):
            frontier.extend(app.components[producer].requires)
    for iface in app.interfaces.values():
        if iface.name not in demanded:
            report.add(
                "REACH005",
                Severity.WARNING,
                f"interface {iface.name!r} is declared but no goal component "
                "can (transitively) consume it; it is dead weight in this "
                "deployment problem",
                iface_loc(iface),
            )


def run_deep(ctx: LintContext, report: LintReport) -> None:
    """Ground best-value reachability on the concrete network.

    Only meaningful when the spec-level passes found no errors: compiles
    the problem (which reruns ``compile/reachability.py``'s pruning) and
    reports goals whose placements did not survive.
    """
    from ..compile import compile_problem, diagnose

    try:
        problem = compile_problem(ctx.app, ctx.network, ctx.leveling)
    except Exception as exc:
        report.add(
            "REACH006",
            Severity.ERROR,
            f"the spec does not compile against this network: {exc}",
            SourceLocation("app", ctx.app.name),
        )
        return
    unreachable = [
        pid
        for pid in problem.goal_prop_ids
        if pid not in problem.initial_prop_ids and not problem.achievers.get(pid)
    ]
    if unreachable or not problem.logically_solvable:
        detail = str(diagnose(problem)).strip()
        report.add(
            "REACH006",
            Severity.ERROR,
            "no ground action achieves the goal on this network "
            f"({problem.reachability_pruned} actions pruned by best-value "
            f"propagation); {detail}",
            SourceLocation("app", ctx.app.name, "goal_placements"),
        )
