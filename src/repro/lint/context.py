"""Shared state for one lint run.

All passes look at the same derived facts: the static per-property upper
bounds (``compile/bounds.py``'s fixed point), the maximum node/link
resource capacities, and interval environments assigning every variable
its full reachable range ``[0, bound]``.  Building them once here keeps
the passes cheap and consistent with the compiler's own view of the spec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..compile.bounds import compute_property_bounds
from ..intervals import Interval
from ..model import AppSpec, Leveling, SpecError
from ..model.component import ComponentSpec
from ..model.interface import InterfaceType
from ..network import Network
from .diagnostics import SourceLocation

__all__ = ["LintContext", "comp_loc", "iface_loc"]


def comp_loc(
    comp: ComponentSpec,
    section: str | None = None,
    index: int | None = None,
    formula=None,
) -> SourceLocation:
    text = formula.unparse() if formula is not None else None
    return SourceLocation("component", comp.name, section, index, text)


def iface_loc(
    iface: InterfaceType,
    section: str | None = None,
    index: int | None = None,
    formula=None,
) -> SourceLocation:
    text = formula.unparse() if formula is not None else None
    return SourceLocation("interface", iface.name, section, index, text)


@dataclass
class LintContext:
    """Derived facts shared by every lint pass."""

    app: AppSpec
    network: Network
    leveling: Leveling
    bounds: dict[str, float] | None = None
    bound_failure: str | None = None
    node_caps: dict[str, float] = field(default_factory=dict)
    link_caps: dict[str, float] = field(default_factory=dict)

    @staticmethod
    def build(app: AppSpec, network: Network, leveling: Leveling | None) -> "LintContext":
        if leveling is None:
            leveling = app.default_leveling()
        ctx = LintContext(app=app, network=network, leveling=leveling)
        ctx.node_caps = {
            r.name: max((n.capacity(r.name) for n in network.nodes.values()), default=0.0)
            for r in app.node_resources()
        }
        ctx.link_caps = {
            r.name: max((lk.capacity(r.name) for lk in network.links.values()), default=0.0)
            for r in app.link_resources()
        }
        try:
            ctx.bounds = compute_property_bounds(app, network)
        except SpecError as exc:
            # A spec the bounds fixed point cannot handle still deserves the
            # syntactic passes; range-based checks fall back to [0, inf).
            ctx.bound_failure = str(exc)
        return ctx

    # -- variable ranges ---------------------------------------------------

    def bound(self, var: str) -> float:
        """Static upper bound of an interface-property spec variable."""
        if self.bounds is None:
            return math.inf
        return self.bounds.get(var, math.inf)

    def var_range(self, var: str) -> Interval:
        """Full reachable range of any spec variable, ``[0, bound]``."""
        if var.startswith("Node."):
            cap = self.node_caps.get(var.split(".", 1)[1], 0.0)
            return Interval.closed(0.0, cap)
        if var.startswith("Link."):
            cap = self.link_caps.get(var.split(".", 1)[1], 0.0)
            return Interval.closed(0.0, cap)
        hi = self.bound(var)
        if math.isinf(hi):
            return Interval.nonnegative()
        return Interval.closed(0.0, hi)

    # -- interval environments --------------------------------------------

    def component_env(self, comp: ComponentSpec) -> dict[str, Interval]:
        """Ranges for every variable in scope of a component's formulas.

        A pinned component sees its own node's capacities; a floating one
        sees the network-wide maximum (the optimistic choice — lint must
        not reject a spec some node could satisfy).
        """
        env: dict[str, Interval] = {}
        for iface_name in comp.requires + comp.implements:
            iface = self.app.interface(iface_name)
            for prop in iface.properties:
                var = iface.spec_var(prop.name)
                env[var] = self.var_range(var)
        pin = self.app.pinned.get(comp.name)
        pinned_node = self.network.nodes.get(pin) if pin is not None else None
        for decl in self.app.node_resources():
            if pinned_node is not None:
                cap = pinned_node.capacity(decl.name)
            else:
                cap = self.node_caps.get(decl.name, 0.0)
            env[f"Node.{decl.name}"] = Interval.closed(0.0, cap)
        return env

    def interface_env(self, iface: InterfaceType) -> dict[str, Interval]:
        """Ranges in scope of an interface's cross formulas."""
        env: dict[str, Interval] = {}
        for prop in iface.properties:
            var = iface.spec_var(prop.name)
            env[var] = self.var_range(var)
        for decl in self.app.link_resources():
            env[f"Link.{decl.name}"] = Interval.closed(
                0.0, self.link_caps.get(decl.name, 0.0)
            )
        return env

    # -- spec vocabulary ---------------------------------------------------

    def known_spec_vars(self) -> set[str]:
        """Every variable a leveling may legitimately map."""
        out: set[str] = set()
        for iface in self.app.interfaces.values():
            for prop in iface.properties:
                out.add(iface.spec_var(prop.name))
        for decl in self.app.node_resources():
            out.add(f"Node.{decl.name}")
        for decl in self.app.link_resources():
            out.add(f"Link.{decl.name}")
        return out
