"""The spec linter: static verification of a CPP instance before planning.

:func:`lint_app` runs every pass over an ``(AppSpec, Network[, Leveling])``
triple and returns a :class:`~repro.lint.diagnostics.LintReport`; a bad
spec thus surfaces as a handful of located findings instead of a mystery
planner failure or a silently wrong plan.  :func:`require_lint_clean` is
the strict-mode gate used by :class:`repro.planner.Planner` and
:func:`repro.compile.compile_problem` when ``strict=True``.

Pass order: app/network pairing (``NET``), monotonicity and formula
domains (``MONO``), level soundness (``LVL``), cost sanity (``COST``),
dead-spec reachability (``REACH``) — plus a ground best-value reachability
check (``REACH006``) compiled on the concrete network when everything else
is clean.  ``docs/LINTING.md`` catalogues every code.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model import AppSpec, Leveling, SpecError
from ..network import Network
from . import cost, levels, monotone, pairing, reach
from .context import LintContext
from .diagnostics import LintReport, Severity, SourceLocation

__all__ = ["LintOptions", "lint_app", "require_lint_clean"]


@dataclass(frozen=True)
class LintOptions:
    """Knobs for one lint run.

    Attributes
    ----------
    deep:
        When true (default) and the spec-level passes report no errors,
        compile the problem against the concrete network and verify the
        goal survives ground best-value reachability (``REACH006``).
        Strict pre-checks inside the compiler disable this to avoid
        recursing into compilation.
    """

    deep: bool = True


def lint_app(
    app: AppSpec,
    network: Network,
    leveling: Leveling | None = None,
    options: LintOptions | None = None,
) -> LintReport:
    """Statically verify a CPP instance; returns all findings."""
    options = options or LintOptions()
    report = LintReport(app_name=app.name, network_name=network.name)
    ctx = LintContext.build(app, network, leveling)
    if ctx.bound_failure is not None:
        report.add(
            "BND001",
            Severity.ERROR,
            f"static property bounds could not be computed "
            f"({ctx.bound_failure}); range-dependent checks assume [0, ∞)",
            SourceLocation("app", app.name),
        )

    pairing.run(ctx, report)
    monotone.run(ctx, report)
    levels.run(ctx, report)
    cost.run(ctx, report)
    reach.run(ctx, report)

    if options.deep and not report.has_errors():
        reach.run_deep(ctx, report)
    return report


def require_lint_clean(
    app: AppSpec,
    network: Network,
    leveling: Leveling | None = None,
    options: LintOptions | None = None,
) -> LintReport:
    """Lint and raise :class:`SpecError` when any error-severity finding
    exists; returns the (possibly warning-bearing) report otherwise."""
    report = lint_app(app, network, leveling, options)
    if report.has_errors():
        details = "\n  ".join(str(d) for d in report.errors)
        raise SpecError(
            f"spec {app.name!r} failed lint against network "
            f"{network.name!r}:\n  {details}"
        )
    return report
