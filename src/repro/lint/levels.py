"""Level-soundness verification.

Level cutpoints partition ``[0, ∞)``, so a :class:`LevelSpec` can never
have literal gaps or overlaps — what *can* go wrong is the pairing of
cutpoints with the values effects actually produce.  Using the compiler's
static bounds (``compile/bounds.py``) this pass checks:

* ``LVL001`` — the leveling maps a variable the spec does not define
  (almost always a typo; the cutpoints would be silently ignored);
* ``LVL002`` — a cutpoint above the variable's static upper bound: the
  levels above it can never be occupied, leaving a dead gap between the
  declared partition and the attainable values;
* ``LVL003`` — an effect whose image includes negative values, which fall
  below every level (levels cover ``[0, ∞)`` only);
* ``LVL004`` — cutpoint misalignment: an effect maps a cutpoint of a
  leveled input strictly between two cutpoints of its leveled output, so
  level-boundary inputs land mid-level and the committed intervals lose
  precision (the paper keeps downstream cutpoints proportional to
  upstream ones for exactly this reason).
"""

from __future__ import annotations

import math

from ..expr import variables
from ..expr.ast_nodes import Assign
from ..expr.errors import EvalError
from ..expr.evaluator import eval_interval
from ..intervals import Interval
from .context import LintContext, comp_loc, iface_loc
from .diagnostics import LintReport, Severity, SourceLocation

__all__ = ["run"]

_REL_TOL = 1e-6


def _is_stream_var(var: str) -> bool:
    return not var.startswith(("Node.", "Link."))


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _REL_TOL * max(1.0, abs(a), abs(b))


def _check_leveling(ctx: LintContext, report: LintReport) -> None:
    known = ctx.known_spec_vars()
    for var, spec in sorted(ctx.leveling.specs.items()):
        loc = SourceLocation("leveling", var)
        if var not in known:
            report.add(
                "LVL001",
                Severity.WARNING,
                f"leveling maps unknown variable {var!r}; the spec declares "
                "no such interface property or resource, so these cutpoints "
                "are ignored",
                loc,
            )
            continue
        rng = ctx.var_range(var)
        bound = rng.hi
        if not math.isfinite(bound):
            continue
        dead = [c for c in spec.cutpoints if c > bound * (1 + _REL_TOL)]
        if dead:
            report.add(
                "LVL002",
                Severity.WARNING,
                f"cutpoint(s) {dead} of {var} exceed its static upper bound "
                f"{bound:g}: the levels above the bound can never be "
                "occupied (dead gap between declared levels and attainable "
                "values)",
                loc,
            )


def _check_effect_image(
    ctx: LintContext,
    report: LintReport,
    assign: Assign,
    env: dict[str, Interval],
    loc: SourceLocation,
) -> None:
    target = assign.target.name
    if not _is_stream_var(target) or assign.op != ":=":
        return
    try:
        image = eval_interval(assign.expr, env)
    except EvalError:
        return  # the monotonicity pass reports the domain problem
    if image.is_empty():
        return
    if image.lo < -1e-9:
        report.add(
            "LVL003",
            Severity.ERROR,
            f"effect image {image} includes negative values, which fall "
            f"below every level of {target} (levels cover [0, ∞) only)",
            loc,
        )

    out_spec = ctx.leveling.for_var(target)
    if out_spec.is_trivial():
        return
    for var in sorted(variables(assign.expr)):
        in_spec = ctx.leveling.for_var(var)
        if in_spec.is_trivial():
            continue
        in_bound = ctx.var_range(var).hi
        for cut in in_spec.cutpoints:
            if cut > in_bound * (1 + _REL_TOL):
                continue  # dead cutpoint, reported by LVL002
            point_env = dict(env)
            point_env[var] = Interval.point(cut)
            try:
                img = eval_interval(assign.expr, point_env)
            except EvalError:
                continue
            if not img.is_point():
                continue  # image depends on other variables too
            value = img.lo
            if value <= 1e-9:
                continue
            if not any(_close(value, c) for c in out_spec.cutpoints):
                report.add(
                    "LVL004",
                    Severity.WARNING,
                    f"effect maps the {var} cutpoint {cut:g} to {value:g}, "
                    f"which is not a cutpoint of {target} "
                    f"{out_spec.cutpoints}: level-boundary inputs land "
                    "mid-level and the committed intervals lose precision "
                    "(keep downstream cutpoints proportional)",
                    loc,
                )


def run(ctx: LintContext, report: LintReport) -> None:
    _check_leveling(ctx, report)

    for comp in ctx.app.components.values():
        env = ctx.component_env(comp)
        for i, assign in enumerate(comp.effects):
            _check_effect_image(
                ctx, report, assign, env, comp_loc(comp, "effects", i, assign)
            )
    for iface in ctx.app.interfaces.values():
        env = ctx.interface_env(iface)
        for i, assign in enumerate(iface.cross_effects):
            _check_effect_image(
                ctx, report, assign, env, iface_loc(iface, "cross_effects", i, assign)
            )
