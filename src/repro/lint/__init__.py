"""Static analysis of CPP specifications (`repro lint`).

Verifies, before any planning, that a ``(AppSpec, Network)`` pair keeps
the promises the leveled planner relies on: monotone formulas with total
domains, sound level cutpoints, a live goal, and sane cost functions.
Findings are structured :class:`Diagnostic` records with stable codes —
see ``docs/LINTING.md`` for the full catalogue.
"""

from .diagnostics import Diagnostic, LintReport, Severity, SourceLocation
from .linter import LintOptions, lint_app, require_lint_clean

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "SourceLocation",
    "LintOptions",
    "lint_app",
    "require_lint_clean",
]
