"""Reporting and export: Graphviz DOT renderings and plan summaries.

Deployment plans are easiest to review as pictures: the network graph
with the data path and placed components overlaid (the style of the
paper's Figs. 1, 3, 9, 10).  This module emits Graphviz DOT text — no
graphviz dependency is required to *generate* it, only to render.
"""

from __future__ import annotations

from .network import Network
from .planner.plan import Plan

__all__ = ["network_to_dot", "plan_to_dot", "plan_summary_table"]


def _quote(s: str) -> str:
    return '"' + s.replace('"', r"\"") + '"'


def network_to_dot(
    net: Network,
    highlight_nodes: dict[str, str] | None = None,
    highlight_links: dict[tuple[str, str], str] | None = None,
    label_resources: bool = True,
) -> str:
    """Graphviz DOT for a topology.

    ``highlight_nodes`` / ``highlight_links`` map elements to extra label
    text (placed components, crossing streams).
    """
    highlight_nodes = highlight_nodes or {}
    highlight_links = highlight_links or {}
    lines = [f"graph {_quote(net.name)} {{", "  node [shape=box, fontsize=10];"]
    for node in net.nodes.values():
        label = node.id
        if label_resources and node.resources:
            res = ", ".join(f"{k}={v:g}" for k, v in sorted(node.resources.items()))
            label += f"\\n{res}"
        extra = highlight_nodes.get(node.id)
        if extra:
            label += "\\n" + extra
        attrs = [f"label={_quote(label)}"]
        if extra:
            attrs.append("style=filled")
            attrs.append('fillcolor="lightblue"')
        elif "transit" in node.labels:
            attrs.append('fillcolor="gray90"')
            attrs.append("style=filled")
        lines.append(f"  {_quote(node.id)} [{', '.join(attrs)}];")
    for link in net.links.values():
        label_parts = []
        if label_resources and link.resources:
            label_parts.append(
                ", ".join(f"{k}={v:g}" for k, v in sorted(link.resources.items()))
            )
        extra = highlight_links.get(link.key)
        attrs = []
        if extra:
            label_parts.append(extra)
            attrs.append("penwidth=2.5")
            attrs.append('color="blue"')
        if label_parts:
            joined = "\\n".join(label_parts)  # literal backslash-n for DOT
            attrs.append(f"label={_quote(joined)}")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {_quote(link.a)} -- {_quote(link.b)}{suffix};")
    lines.append("}")
    return "\n".join(lines)


def plan_to_dot(plan: Plan) -> str:
    """The plan's network with placements and crossings overlaid."""
    placements: dict[str, str] = {}
    for comp, node in plan.placements():
        placements[node] = (
            placements.get(node, "") + ("+" if node in placements else "") + comp
        )
    for placement in plan.problem.app.initial_placements:
        placements.setdefault(placement.node, placement.component)
    crossings: dict[tuple[str, str], str] = {}
    for iface, src, dst in plan.crossings():
        key = (src, dst) if src <= dst else (dst, src)
        crossings[key] = crossings.get(key, "")
        crossings[key] = (crossings[key] + "," if crossings[key] else "") + iface
    return network_to_dot(
        plan.problem.network,
        highlight_nodes=placements,
        highlight_links=crossings,
    )


def plan_summary_table(plan: Plan) -> str:
    """A per-action table: action, cost bound, exact cost, key values."""
    from .experiments.reporting import format_table

    report = plan.execute()
    rows = []
    for step in report.steps:
        inputs = ", ".join(
            f"{var.split('.', 1)[0]}={val:g}" for var, val in sorted(step.inputs.items())
        )
        rows.append(
            [
                step.action.name,
                f"{step.action.cost_lb:g}",
                f"{step.cost:g}",
                inputs or "-",
            ]
        )
    rows.append(["TOTAL", f"{plan.cost_lb:g}", f"{report.total_cost:g}", ""])
    return format_table(["action", "cost lb", "exact", "processed"], rows)
