"""Deployment repair and adaptation (paper §6, future work).

The paper closes by proposing to "use our planner for repairing and
adapting existing deployments by introducing operators for migrating and
reconnecting components", noting that "separate operators are necessary,
because the cost of migration differs from that of the initial
deployment".  This module implements that extension:

1. A finished plan (plus its problem) defines a :class:`Deployment`.
2. When the environment changes (links degrade, nodes lose CPU), the old
   plan is *re-executed step by step* against the new network; the longest
   exactly-executing prefix survives, and its placements and streams
   become part of the repair problem's initial state.
3. The repair problem is compiled against the new network.  Components
   that were running in the surviving prefix get **migration-discounted**
   placement actions elsewhere (the component image is already staged, so
   redeployment costs ``migration_cost_factor`` times the normal cost),
   while brand-new components pay full price.
4. The ordinary leveled planner then completes the deployment; the repair
   plan contains only the delta actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compile import CompiledProblem, GroundAction, compile_problem
from ..model import AppSpec, Leveling
from ..network import Network
from .errors import ExecutionError
from .executor import execute_plan
from .plan import Plan
from .planner import Planner, PlannerConfig

__all__ = ["Deployment", "RepairResult", "surviving_prefix", "repair_deployment"]


@dataclass
class Deployment:
    """A running deployment: the plan that created it and its problem."""

    problem: CompiledProblem
    actions: list[GroundAction]

    @staticmethod
    def from_plan(plan: Plan) -> "Deployment":
        return Deployment(problem=plan.problem, actions=list(plan.actions))

    def placements(self) -> list[tuple[str, str]]:
        return [(a.subject, a.node) for a in self.actions if a.kind == "place"]


@dataclass
class RepairResult:
    """Outcome of a repair: the surviving prefix and the delta plan."""

    surviving_actions: list[GroundAction]
    repair_plan: Plan
    migrated_components: list[str] = field(default_factory=list)

    def combined_actions(self) -> list[GroundAction]:
        """Surviving prefix followed by the repair delta."""
        return self.surviving_actions + list(self.repair_plan.actions)

    def describe(self) -> str:
        lines = [f"surviving prefix: {len(self.surviving_actions)} actions"]
        for a in self.surviving_actions:
            lines.append(f"  (kept) {a.name}")
        lines.append(self.repair_plan.describe())
        return "\n".join(lines)


def surviving_prefix(
    deployment: Deployment, new_problem: CompiledProblem
) -> list[GroundAction]:
    """Longest prefix of the old plan that still executes exactly.

    Each old action is re-resolved by name in the new compiled problem (the
    same (subject, location, levels) may compile to different bounds under
    the changed network); an action that no longer exists or whose
    execution now fails truncates the prefix.
    """
    by_name = {a.name: a for a in new_problem.actions}
    prefix: list[GroundAction] = []
    for old_action in deployment.actions:
        new_action = by_name.get(old_action.name)
        if new_action is None:
            break
        candidate = prefix + [new_action]
        try:
            execute_plan(new_problem, candidate)
        except ExecutionError:
            break
        prefix.append(new_action)
    return prefix


def repair_deployment(
    app: AppSpec,
    new_network: Network,
    deployment: Deployment,
    leveling: Leveling | None = None,
    migration_cost_factor: float = 0.5,
    planner_config: PlannerConfig | None = None,
    compile_cache=None,
) -> RepairResult:
    """Repair ``deployment`` against a changed network.

    Parameters
    ----------
    migration_cost_factor:
        Multiplier on the placement-cost lower bound for components that
        were already running in the surviving prefix (their images are
        staged; re-placing them elsewhere is a migration, not a fresh
        deployment).  ``1.0`` disables the discount; ``0.0`` makes
        migrations logically free (their cost formula still applies at
        execution time).
    compile_cache:
        Optional :class:`repro.parallel.CompileCache`.  A repair compiles
        the same (app, network, leveling) key *twice* — the repair
        problem (then mutated with the surviving prefix) and the fresh
        problem validating the stitched deployment — so even a cold cache
        saves one full compilation per call, and repeated repairs against
        a recurring network state save both.

    Returns
    -------
    RepairResult
        With the surviving prefix and a delta plan that completes the
        deployment.  The combined action sequence is re-validated exactly.
    """
    if not 0.0 <= migration_cost_factor:
        raise ValueError("migration_cost_factor must be nonnegative")

    config = planner_config or PlannerConfig(leveling=leveling)
    if leveling is not None:
        config.leveling = leveling

    def _compile() -> CompiledProblem:
        if compile_cache is None:
            return compile_problem(app, new_network, config.leveling)
        return compile_cache.compile(
            app,
            new_network,
            config.leveling,
            metrics=(
                config.telemetry.metrics if config.telemetry is not None else None
            ),
        )

    new_problem = _compile()

    prefix = surviving_prefix(deployment, new_problem)

    # Fold the surviving prefix into the initial state: achieved
    # propositions join the initial set, and exact post-prefix values
    # replace the initial resource values.
    report = execute_plan(new_problem, prefix)
    achieved = set(new_problem.initial_prop_ids)
    for action in prefix:
        achieved |= action.add_props
    new_problem.initial_prop_ids = frozenset(achieved)
    new_problem.initial_values = {
        k: v
        for k, v in report.final_values.items()
        if k in new_problem.initial_values
    }
    # Stream values produced by the prefix become initial streams.
    extra_streams = []
    for gvar, value in report.final_values.items():
        if gvar in new_problem.initial_values or ":" not in gvar:
            continue
        prop_part, rest = gvar.split(":", 1)
        iface_name, node_id = rest.split("@", 1)
        iface = app.interface(iface_name)
        extra_streams.append(
            (
                iface_name,
                node_id,
                value,
                iface.is_degradable(prop_part),
                iface.property_spec(prop_part).upgradable,
                prop_part,
            )
        )
    new_problem._initial_streams = list(new_problem._initial_streams) + extra_streams
    new_problem._initial_map_cache = None

    # Migration discount: components already running somewhere get cheaper
    # placement actions elsewhere.
    running = {comp for comp, _node in (
        (a.subject, a.node) for a in prefix if a.kind == "place"
    )}
    migrated = sorted(running)
    if migration_cost_factor != 1.0:
        for action in new_problem.actions:
            if action.kind == "place" and action.subject in running:
                action.cost_lb *= migration_cost_factor

    planner = Planner(config)
    repair_plan = planner.solve(problem=new_problem)

    # Final validation of the stitched deployment on a fresh compilation
    # (a cache hit here — the repair problem above has the same key).
    fresh = _compile()
    by_name = {a.name: a for a in fresh.actions}
    stitched = [by_name[a.name] for a in prefix + list(repair_plan.actions)]
    execute_plan(fresh, stitched)

    return RepairResult(
        surviving_actions=prefix,
        repair_plan=repair_plan,
        migrated_components=migrated,
    )
