"""Deployment repair and adaptation (paper §6, future work).

The paper closes by proposing to "use our planner for repairing and
adapting existing deployments by introducing operators for migrating and
reconnecting components", noting that "separate operators are necessary,
because the cost of migration differs from that of the initial
deployment".  This module implements that extension:

1. A finished plan (plus its problem) defines a :class:`Deployment`.
2. When the environment changes (links degrade, nodes lose CPU), the old
   plan is re-executed forward against the new network in a *single*
   checkpointed pass (:class:`~repro.planner.executor.PlanExecutor`); the
   longest exactly-executing prefix survives, and its placements and
   streams are folded into the repair problem's initial state
   (:func:`~repro.planner.delta.fold_prefix`).
3. The repair problem is compiled against the new network — or, with
   ``use_delta=True`` and a compile cache, *patched* from the cached
   previous network state (:meth:`repro.parallel.CompileCache.compile_delta`)
   so only ground actions touching changed elements are re-grounded.
   Components that were running in the surviving prefix get
   **migration-discounted** placement actions elsewhere (the component
   image is already staged, so redeployment costs
   ``migration_cost_factor`` times the normal cost), while brand-new
   components pay full price.
4. The ordinary leveled planner then completes the deployment; the repair
   plan contains only the delta actions.  The stitched deployment
   (prefix + delta) is re-validated exactly on an undiscounted
   compilation, and its exact total cost is reported as
   :attr:`RepairResult.total_cost`.

The repair core is **name-based** (:func:`repair_by_names`): a deployment
is identified by its ground-action names, which serialize and ship to
worker processes, so the fleet controller
(:mod:`repro.simulate.controller`) fans repairs out without pickling
compiled problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..compile import CompiledProblem, GroundAction, compile_problem
from ..model import AppSpec, Leveling
from ..network import Network
from .delta import fold_prefix, placements_of_names, stitch_plan
from .executor import PlanExecutor
from .plan import Plan
from .planner import Planner, PlannerConfig

__all__ = [
    "Deployment",
    "RepairResult",
    "surviving_prefix",
    "repair_deployment",
    "repair_by_names",
]


@dataclass
class Deployment:
    """A running deployment: the plan that created it and its problem."""

    problem: CompiledProblem
    actions: list[GroundAction]

    @staticmethod
    def from_plan(plan: Plan) -> "Deployment":
        return Deployment(problem=plan.problem, actions=list(plan.actions))

    def placements(self) -> list[tuple[str, str]]:
        return [(a.subject, a.node) for a in self.actions if a.kind == "place"]

    def action_names(self) -> list[str]:
        """The serializable identity of this deployment (ground-action
        names are unique within a compiled problem and stable across
        recompilations of the same triple)."""
        return [a.name for a in self.actions]


@dataclass
class RepairResult:
    """Outcome of a repair: the surviving prefix and the delta plan."""

    surviving_actions: list[GroundAction]
    repair_plan: Plan
    migrated_components: list[str] = field(default_factory=list)
    """Components the repair actually moved: placed by the repair plan on
    a *different* node than they occupied in the broken deployment."""
    discounted_components: list[str] = field(default_factory=list)
    """Components whose placement actions were migration-discounted —
    everything still running in the surviving prefix (their images are
    staged, so re-placing them anywhere is cheap), whether or not the
    planner ended up moving them."""
    total_cost: float = 0.0
    """Exact cost of the stitched deployment (surviving prefix + repair
    delta), measured by re-executing the combined sequence on an
    undiscounted compilation.  This is what the deployment actually
    costs; ``repair_plan.exact_cost`` alone is the delta under the
    migration discount."""
    compile_source: str = "fresh"
    """How the repair problem was obtained: ``"fresh"`` (full
    compilation), ``"cache"`` (warm-start hit), or ``"delta"``
    (patched across a network diff)."""

    def combined_actions(self) -> list[GroundAction]:
        """Surviving prefix followed by the repair delta."""
        return self.surviving_actions + list(self.repair_plan.actions)

    def to_dict(self) -> dict:
        """JSON-ready record of the repair outcome.

        Deliberately excludes ``compile_source``: the record captures
        *what* was deployed at what cost, which is identical whether the
        problem was compiled fresh, from cache, or by delta patching —
        the determinism audits diff exactly this.
        """
        return {
            "surviving": [a.name for a in self.surviving_actions],
            "repair": [a.name for a in self.repair_plan.actions],
            "migrated_components": list(self.migrated_components),
            "discounted_components": list(self.discounted_components),
            "repair_cost": self.repair_plan.exact_cost,
            "total_cost": self.total_cost,
        }

    def describe(self) -> str:
        lines = [f"surviving prefix: {len(self.surviving_actions)} actions"]
        for a in self.surviving_actions:
            lines.append(f"  (kept) {a.name}")
        lines.append(self.repair_plan.describe())
        return "\n".join(lines)


def surviving_prefix(
    deployment: Deployment, new_problem: CompiledProblem
) -> list[GroundAction]:
    """Longest prefix of the old plan that still executes exactly.

    Each old action is re-resolved by name in the new compiled problem (the
    same (subject, location, levels) may compile to different bounds under
    the changed network); an action that no longer exists or whose
    execution now fails truncates the prefix.  One incremental forward
    pass (:class:`PlanExecutor`) — the n-th probe extends the checkpointed
    state of the first n-1 rather than re-executing them.
    """
    prefix, _executor = _surviving_prefix(
        [a.name for a in deployment.actions], new_problem
    )
    return prefix


def _surviving_prefix(
    names: Sequence[str], new_problem: CompiledProblem
) -> tuple[list[GroundAction], PlanExecutor]:
    """The prefix plus the executor holding its exact post-state."""
    by_name = {a.name: a for a in new_problem.actions}
    executor = PlanExecutor(new_problem)
    prefix: list[GroundAction] = []
    for name in names:
        new_action = by_name.get(name)
        if new_action is None or not executor.try_step(new_action):
            break
        prefix.append(new_action)
    return prefix, executor


def repair_deployment(
    app: AppSpec,
    new_network: Network,
    deployment: Deployment,
    leveling: Leveling | None = None,
    migration_cost_factor: float = 0.5,
    planner_config: PlannerConfig | None = None,
    compile_cache=None,
    use_delta: bool = False,
) -> RepairResult:
    """Repair ``deployment`` against a changed network.

    Parameters
    ----------
    migration_cost_factor:
        Multiplier on the placement-cost lower bound for components that
        were already running in the surviving prefix (their images are
        staged; re-placing them elsewhere is a migration, not a fresh
        deployment).  ``1.0`` disables the discount; ``0.0`` makes
        migrations logically free (their cost formula still applies at
        execution time).
    compile_cache:
        Optional :class:`repro.parallel.CompileCache`.  A repair compiles
        the same (app, network, leveling) key *twice* — the repair
        problem (then mutated with the surviving prefix) and the fresh
        problem validating the stitched deployment — so even a cold cache
        saves one full compilation per call, and repeated repairs against
        a recurring network state save both.
    use_delta:
        With a ``compile_cache``, compile the repair problem via
        :meth:`~repro.parallel.CompileCache.compile_delta`: when the
        cache holds the *previous* network state of this app, only the
        ground actions touching changed elements are re-ground and the
        rest are spliced from the cached base.  Semantically transparent
        (the patched problem is equivalent to a fresh compilation);
        ignored without a cache.

    Returns
    -------
    RepairResult
        With the surviving prefix and a delta plan that completes the
        deployment.  The combined action sequence is re-validated exactly
        and its exact cost reported as ``total_cost``.
    """
    return repair_by_names(
        app,
        new_network,
        [a.name for a in deployment.actions],
        leveling=leveling,
        migration_cost_factor=migration_cost_factor,
        planner_config=planner_config,
        compile_cache=compile_cache,
        use_delta=use_delta,
    )


def repair_by_names(
    app: AppSpec,
    new_network: Network,
    deployment_names: Sequence[str],
    leveling: Leveling | None = None,
    migration_cost_factor: float = 0.5,
    planner_config: PlannerConfig | None = None,
    compile_cache=None,
    use_delta: bool = False,
) -> RepairResult:
    """:func:`repair_deployment` with the deployment given by action names.

    The name-based core: ground-action names are unique and stable
    across recompilations of the same triple, so a deployment serializes
    as its name sequence — this is what worker processes receive.
    """
    if not 0.0 <= migration_cost_factor:
        raise ValueError("migration_cost_factor must be nonnegative")

    config = planner_config or PlannerConfig(leveling=leveling)
    if leveling is not None:
        config.leveling = leveling
    metrics = config.telemetry.metrics if config.telemetry is not None else None

    def _compile() -> CompiledProblem:
        if compile_cache is None:
            return compile_problem(app, new_network, config.leveling)
        if use_delta:
            return compile_cache.compile_delta(
                app, new_network, config.leveling, metrics=metrics
            )
        return compile_cache.compile(
            app, new_network, config.leveling, metrics=metrics
        )

    new_problem = _compile()
    compile_source = new_problem.compile_source

    # One checkpointed forward pass discovers the surviving prefix; its
    # exact post-state report seeds the fold (no re-execution).
    prefix, executor = _surviving_prefix(deployment_names, new_problem)
    fold_prefix(new_problem, app, prefix, executor.report())

    # Migration discount: components already running somewhere get cheaper
    # placement actions elsewhere.
    running = {a.subject for a in prefix if a.kind == "place"}
    discounted = sorted(running)
    if migration_cost_factor != 1.0:
        for action in new_problem.actions:
            if action.kind == "place" and action.subject in running:
                action.cost_lb *= migration_cost_factor

    planner = Planner(config)
    repair_plan = planner.solve(problem=new_problem)

    # A component migrated iff the repair re-placed it on a different node
    # than it occupied in the broken deployment (last placement wins on
    # both sides).  Components placed for the first time, or re-placed on
    # their old node, did not migrate.
    old_placements = placements_of_names(list(deployment_names))
    new_placed = {
        a.subject: a.node for a in repair_plan.actions if a.kind == "place"
    }
    migrated = sorted(
        comp
        for comp, node in new_placed.items()
        if old_placements.get(comp) not in (None, node)
    )

    # Final validation of the stitched deployment on an undiscounted
    # compilation (a cache hit here — the repair problem above stored the
    # same key), yielding the exact total cost including the prefix.
    fresh = _compile()
    stitched = stitch_plan(
        fresh,
        [a.name for a in prefix],
        [a.name for a in repair_plan.actions],
    )

    return RepairResult(
        surviving_actions=prefix,
        repair_plan=repair_plan,
        migrated_components=migrated,
        discounted_components=discounted,
        total_cost=stitched.total_cost,
        compile_source=compile_source,
    )
