"""Wall-clock deadlines for the search phases.

A :class:`Deadline` is an absolute ``time.perf_counter`` target plus the
limit it was derived from (for error messages).  The search loops poll it
with a stride — :meth:`Deadline.poll` only reads the clock every
``stride`` calls — so a deadline-enabled run costs one integer decrement
per loop iteration and one clock read per stride.

Deadlines compose with :meth:`Deadline.tightest`: the planner combines a
total ``time_limit_s`` with a per-phase ``phase_time_limit_s`` by handing
each phase whichever target comes first.
"""

from __future__ import annotations

import time

__all__ = ["Deadline"]


class Deadline:
    """An absolute wall-clock target with strided polling."""

    __slots__ = ("at", "time_limit_s", "started", "_countdown", "_stride")

    def __init__(self, at: float, time_limit_s: float, started: float | None = None,
                 stride: int = 64):
        self.at = at
        self.time_limit_s = time_limit_s
        self.started = time.perf_counter() if started is None else started
        self._stride = stride
        self._countdown = stride

    @staticmethod
    def after(seconds: float, stride: int = 64) -> "Deadline":
        """A deadline ``seconds`` from now."""
        now = time.perf_counter()
        return Deadline(now + seconds, seconds, started=now, stride=stride)

    def expired(self) -> bool:
        """Exact check (one clock read)."""
        return time.perf_counter() >= self.at

    def poll(self) -> bool:
        """Strided check: reads the clock only every ``stride`` calls.

        Returns ``True`` at most once per stride when the deadline has
        passed; hot loops call this once per iteration.
        """
        self._countdown -= 1
        if self._countdown > 0:
            return False
        self._countdown = self._stride
        return time.perf_counter() >= self.at

    def elapsed_s(self) -> float:
        """Seconds since this deadline was created."""
        return time.perf_counter() - self.started

    def remaining_s(self) -> float:
        """Seconds left before the target (negative when expired)."""
        return self.at - time.perf_counter()

    def tightest(self, other: "Deadline | None") -> "Deadline":
        """Whichever of the two deadlines fires first (``None`` = this one)."""
        if other is None or self.at <= other.at:
            return self
        return other
