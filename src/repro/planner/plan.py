"""Plan representation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..compile import CompiledProblem, GroundAction
from .executor import ExecutionReport, execute_plan
from .stats import PlannerStats
from .trace import SearchTrace

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["Plan"]


@dataclass
class Plan:
    """A deployment plan: an ordered action sequence plus metadata.

    ``cost_lb`` is the optimized lower bound (Table 2, column 2);
    :meth:`execute` yields the exact cost and resource usage under greedy
    within-level concretization.
    """

    problem: CompiledProblem
    actions: list[GroundAction]
    cost_lb: float
    stats: PlannerStats = field(default_factory=PlannerStats)
    trace: SearchTrace | None = field(default=None, repr=False)
    incumbent: bool = False
    """Anytime result: the search was cut short (deadline or node budget)
    and this is the best complete plan found, not the proven optimum.
    ``cost_lb`` is then an upper bound on the optimal lower bound."""
    stop_reason: str = "optimal"
    """Why the search ended: ``"optimal"``, ``"deadline"``, or
    ``"node_budget"``."""
    _report: ExecutionReport | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.actions)

    def execute(self) -> ExecutionReport:
        """Exact forward execution (cached)."""
        if self._report is None:
            self._report = execute_plan(self.problem, self.actions)
        return self._report

    @property
    def exact_cost(self) -> float:
        return self.execute().total_cost

    def action_names(self) -> list[str]:
        return [a.name for a in self.actions]

    def placements(self) -> list[tuple[str, str]]:
        """The (component, node) placements the plan performs."""
        return [(a.subject, a.node) for a in self.actions if a.kind == "place"]

    def crossings(self) -> list[tuple[str, str, str]]:
        """The (interface, src, dst) link crossings the plan performs."""
        return [(a.subject, a.src, a.dst) for a in self.actions if a.kind == "cross"]

    def to_dict(self) -> dict:
        """JSON-ready representation (re-loadable via :meth:`from_dict`).

        Actions are stored by their unique ground names; reconstruction
        therefore needs the same compiled problem (same app, network, and
        leveling), which keeps the payload small and tamper-evident.
        """
        return {
            "format": 1,
            "app": self.problem.app.name,
            "network": self.problem.network.name,
            "leveling": self.problem.leveling.name,
            "actions": self.action_names(),
            "cost_lower_bound": self.cost_lb,
            "incumbent": self.incumbent,
            "stop_reason": self.stop_reason,
        }

    @staticmethod
    def from_dict(data: dict, problem: CompiledProblem) -> "Plan":
        """Rebuild a plan against a compiled problem.

        Raises
        ------
        KeyError
            If an action name does not exist in ``problem`` (different
            network, leveling, or library version).
        """
        if data.get("format") != 1:
            raise ValueError(f"unsupported plan format {data.get('format')!r}")
        by_name = {a.name: a for a in problem.actions}
        try:
            actions = [by_name[name] for name in data["actions"]]
        except KeyError as exc:
            raise KeyError(
                f"plan action {exc.args[0]!r} not present in this compiled "
                "problem (was it compiled with the same network and leveling?)"
            ) from None
        return Plan(
            problem=problem,
            actions=actions,
            cost_lb=float(data.get("cost_lower_bound", 0.0)),
            incumbent=bool(data.get("incumbent", False)),
            stop_reason=str(data.get("stop_reason", "optimal")),
        )

    def describe(self) -> str:
        """Human-readable multi-line description (Fig. 4 style)."""
        tag = " [incumbent]" if self.incumbent else ""
        lines = [f"plan ({len(self.actions)} actions, cost lower bound {self.cost_lb:g}){tag}:"]
        for a in self.actions:
            if a.kind == "place":
                lines.append(f"  place {a.subject} on node {a.node}")
            else:
                lines.append(f"  cross with {a.subject} stream from {a.src} to {a.dst}")
        return "\n".join(lines)
