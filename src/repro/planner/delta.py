"""Plan stitching and prefix folding for delta replanning.

Deployment repair (:mod:`repro.planner.adaptation`) keeps the surviving
prefix of a broken deployment *structurally*: instead of rediscovering
the old placements, the prefix's exact post-execution state is folded
into the repair problem's initial state and the planner only completes
the delta.  This module holds the shared machinery:

* :func:`parse_stream_var` — the hardened inverse of
  :func:`~repro.compile.iface_prop_var` (a malformed ground variable
  raises a structured :class:`~repro.planner.errors.ExecutionError`
  naming the offender instead of a bare ``ValueError`` mid-repair);
* :func:`fold_prefix` — rewrite a compiled problem's initial state to
  start *after* an executed prefix;
* :func:`stitch_plan` / :class:`StitchedDeployment` — resolve
  ``prefix + delta`` in one problem, execute it exactly, and expose the
  stitched deployment's total cost (what
  ``SimulationStep.total_plan_cost`` reports).

The equivalence guarantee (docs/ROBUSTNESS.md): folding is exact — the
post-prefix values come from the executor, not from bounds — so a delta
plan for the folded problem extends the prefix into a deployment that
re-executes cleanly from the *unfolded* initial state.  ``stitch_plan``
verifies exactly that on a fresh compilation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compile import CompiledProblem, GroundAction
from ..model import AppSpec
from .errors import ExecutionError
from .executor import ExecutionReport, execute_plan

__all__ = [
    "parse_stream_var",
    "fold_prefix",
    "StitchedDeployment",
    "stitch_plan",
    "placements_of_names",
]


def parse_stream_var(gvar: str) -> tuple[str, str, str] | None:
    """Parse a ground stream variable ``prop:iface@node``.

    Returns ``(prop, iface, node)``, or ``None`` for variables that are
    not stream-shaped at all (no ``:`` — node/link resource variables).
    A variable that *looks* like a stream but is missing the ``@node``
    part raises :class:`ExecutionError` naming it — surfacing a
    malformed resource name at the fold site instead of a bare
    ``ValueError`` deep inside repair.
    """
    prop, sep, rest = gvar.partition(":")
    if not sep:
        return None
    iface, sep, node = rest.partition("@")
    if not sep or not prop or not iface or not node:
        raise ExecutionError(
            f"cannot fold stream variable {gvar!r} into the repair state: "
            "expected the form 'prop:iface@node'"
        )
    return prop, iface, node


def fold_prefix(
    problem: CompiledProblem,
    app: AppSpec,
    prefix: list[GroundAction],
    report: ExecutionReport,
) -> None:
    """Fold an executed prefix into ``problem``'s initial state (in place).

    ``report`` must be the exact execution report of ``prefix`` against
    ``problem``'s (unfolded) initial state.  Achieved propositions join
    the initial set, post-prefix resource values replace the initial
    values, and streams produced by the prefix become initial streams.

    Raises
    ------
    ExecutionError
        If a post-prefix ground variable cannot be interpreted — a
        stream variable without a node part, or one naming an interface
        the app does not declare.
    """
    achieved = set(problem.initial_prop_ids)
    for action in prefix:
        achieved |= action.add_props
    problem.initial_prop_ids = frozenset(achieved)
    problem.initial_values = {
        k: v for k, v in report.final_values.items() if k in problem.initial_values
    }
    extra_streams = []
    for gvar, value in report.final_values.items():
        if gvar in problem.initial_values:
            continue
        parsed = parse_stream_var(gvar)
        if parsed is None:
            continue
        prop_part, iface_name, node_id = parsed
        if iface_name not in app.interfaces:
            raise ExecutionError(
                f"cannot fold stream variable {gvar!r}: app {app.name!r} "
                f"declares no interface {iface_name!r}"
            )
        iface = app.interface(iface_name)
        extra_streams.append(
            (
                iface_name,
                node_id,
                value,
                iface.is_degradable(prop_part),
                iface.property_spec(prop_part).upgradable,
                prop_part,
            )
        )
    problem._initial_streams = list(problem._initial_streams) + extra_streams
    problem._initial_map_cache = None


@dataclass
class StitchedDeployment:
    """``prefix + delta`` resolved and exactly executed in one problem."""

    problem: CompiledProblem
    actions: list[GroundAction]
    prefix_len: int
    report: ExecutionReport

    @property
    def total_cost(self) -> float:
        """Exact cost of the whole stitched deployment (prefix included)."""
        return self.report.total_cost

    @property
    def prefix_actions(self) -> list[GroundAction]:
        return self.actions[: self.prefix_len]

    @property
    def delta_actions(self) -> list[GroundAction]:
        return self.actions[self.prefix_len :]


def stitch_plan(
    problem: CompiledProblem,
    prefix_names: list[str],
    delta_names: list[str],
) -> StitchedDeployment:
    """Resolve and validate a stitched deployment against ``problem``.

    Every name must exist in ``problem`` and the combined sequence must
    execute exactly from its initial state; a missing action raises
    :class:`ExecutionError` naming it (the prefix was discovered against
    a problem compiled from the same triple, so a miss means the caller
    stitched across incompatible networks).
    """
    by_name = {a.name: a for a in problem.actions}
    actions: list[GroundAction] = []
    for name in list(prefix_names) + list(delta_names):
        action = by_name.get(name)
        if action is None:
            raise ExecutionError(
                f"stitched action {name!r} does not exist in the compiled "
                "problem (different network or leveling?)"
            )
        actions.append(action)
    report = execute_plan(problem, actions)
    return StitchedDeployment(
        problem=problem,
        actions=actions,
        prefix_len=len(prefix_names),
        report=report,
    )


def placements_of_names(names: list[str]) -> dict[str, str]:
    """Component → node placements encoded in ground ``place(...)`` names.

    The last placement of a component wins, matching execution order (a
    component re-placed later in a deployment runs at its final node).
    """
    out: dict[str, str] = {}
    for name in names:
        if not name.startswith("place("):
            continue
        inner = name[len("place(") :].split(")", 1)[0]
        comp, sep, node = inner.partition(",")
        if sep:
            out[comp] = node
    return out
