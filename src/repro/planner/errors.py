"""Planner exception types."""

from __future__ import annotations

__all__ = [
    "PlanningError",
    "Unsolvable",
    "ResourceInfeasible",
    "SearchBudgetExceeded",
    "DeadlineExceeded",
    "ExecutionError",
]


class PlanningError(Exception):
    """Base class for planner failures."""


class Unsolvable(PlanningError):
    """The goal is logically unreachable (PLRG expansion exhausted)."""


class ResourceInfeasible(PlanningError):
    """Logically reachable, but no plan survives resource replay.

    This is the failure mode of the greedy planner in the paper's
    Scenario 1: the RG search space empties without a terminal node.
    """


class SearchBudgetExceeded(PlanningError):
    """A search phase exceeded its configured node budget.

    Carries structured attributes so harnesses and the CLI can act on the
    failure without parsing the message:

    ``phase``
        Which phase gave up (``"plrg"``, ``"slrg"``, or ``"rg"``).
    ``nodes_expanded`` / ``nodes_created``
        Work done before exhaustion (``0`` when unknown for the phase).
    ``budget``
        The configured node budget that was exceeded.
    ``elapsed_s``
        Wall-clock seconds spent in the phase before giving up.  Kept out
        of the auto-composed *message*: a node-budget failure is
        deterministic for a given instance, and seeded fault campaigns
        diff recorded failure strings across runs.
    """

    def __init__(
        self,
        message: str | None = None,
        *,
        phase: str = "rg",
        nodes_expanded: int = 0,
        nodes_created: int = 0,
        budget: int = 0,
        elapsed_s: float = 0.0,
    ):
        self.phase = phase
        self.nodes_expanded = nodes_expanded
        self.nodes_created = nodes_created
        self.budget = budget
        self.elapsed_s = elapsed_s
        if message is None:
            message = (
                f"{phase.upper()} exceeded its node budget of {budget} "
                f"({nodes_created} nodes created, {nodes_expanded} expanded)"
            )
        super().__init__(message)


class DeadlineExceeded(SearchBudgetExceeded):
    """A wall-clock deadline expired before the search finished.

    Subclasses :class:`SearchBudgetExceeded` — a deadline is a budget in
    seconds rather than nodes — so existing ``except SearchBudgetExceeded``
    handlers keep working.  ``time_limit_s`` holds the limit that expired;
    the inherited ``phase`` / ``nodes_expanded`` / ``nodes_created`` /
    ``elapsed_s`` attributes say where and after how much work.
    """

    def __init__(
        self,
        message: str | None = None,
        *,
        phase: str = "rg",
        time_limit_s: float = 0.0,
        nodes_expanded: int = 0,
        nodes_created: int = 0,
        elapsed_s: float = 0.0,
    ):
        self.time_limit_s = time_limit_s
        if message is None:
            message = (
                f"{phase.upper()} deadline of {time_limit_s:.3f}s exceeded after "
                f"{elapsed_s:.3f}s ({nodes_created} nodes created, "
                f"{nodes_expanded} expanded) without a complete plan"
            )
        super().__init__(
            message,
            phase=phase,
            nodes_expanded=nodes_expanded,
            nodes_created=nodes_created,
            budget=0,
            elapsed_s=elapsed_s,
        )


class ExecutionError(PlanningError):
    """Exact forward execution of a plan failed (plan is invalid)."""
