"""Planner exception types."""

from __future__ import annotations

__all__ = ["PlanningError", "Unsolvable", "ResourceInfeasible", "SearchBudgetExceeded", "ExecutionError"]


class PlanningError(Exception):
    """Base class for planner failures."""


class Unsolvable(PlanningError):
    """The goal is logically unreachable (PLRG expansion exhausted)."""


class ResourceInfeasible(PlanningError):
    """Logically reachable, but no plan survives resource replay.

    This is the failure mode of the greedy planner in the paper's
    Scenario 1: the RG search space empties without a terminal node.
    """


class SearchBudgetExceeded(PlanningError):
    """A search phase exceeded its configured node budget."""


class ExecutionError(PlanningError):
    """Exact forward execution of a plan failed (plan is invalid)."""
