"""Planner statistics — the "work done by the planner" half of Table 2.

:class:`PlannerStats` is a thin, typed view over the observability
subsystem's metric names: every field maps 1:1 onto a ``planner.<field>``
gauge in a :class:`~repro.obs.MetricsRegistry` (:meth:`PlannerStats.publish`
writes them, :meth:`PlannerStats.from_metrics` reads them back), so an
exported trace file carries the full Table 2 row without a parallel
serialization path.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..obs import MetricsRegistry

__all__ = ["PlannerStats"]


@dataclass
class PlannerStats:
    """Everything Table 2 reports about one planner run.

    Attributes mirror the paper's columns: total ground actions after
    leveling/pruning (col. 5), PLRG proposition/action node counts
    (col. 6), total SLRG set nodes (col. 7), RG nodes created and nodes
    left in the A* queue at solution time (col. 8), and total vs
    search-only time in milliseconds (col. 9).
    """

    total_actions: int = 0
    plrg_prop_nodes: int = 0
    plrg_action_nodes: int = 0
    slrg_set_nodes: int = 0
    rg_nodes: int = 0
    rg_queue_left: int = 0
    rg_expanded: int = 0
    rg_replays: int = 0
    """Whole-tail replays run by the RG (one per candidate child node)."""
    rg_actions_replayed: int = 0
    """Individual action executions performed inside those replays."""
    rg_conditions_checked: int = 0
    """Condition satisfiability checks evaluated during replay."""
    incumbent: int = 0
    """1 when the returned plan is an anytime incumbent (the search was
    cut short by a deadline or node budget), 0 for a proven optimum."""
    deadline_hits: int = 0
    """1 when a wall-clock deadline ended the run (docs/ROBUSTNESS.md)."""
    static_pruned: int = 0
    """Ground actions excluded up front by certified dead-action analysis
    (``PlannerConfig.static_prune``, docs/ANALYSIS.md)."""
    rg_sym_pruned: int = 0
    """RG children skipped by the verified symmetry sibling prune."""
    analysis_ms: float = 0.0
    """Static-analysis wall clock (0 when ``static_prune`` is off).  Cached
    analyses report the original computation time, not the (free) hit."""
    compile_ms: float = 0.0
    plrg_ms: float = 0.0
    slrg_ms: float = 0.0
    rg_ms: float = 0.0
    total_ms: float = 0.0
    """Search-phase wall clock: PLRG + SLRG + RG plus negligible glue.

    Compilation time is *never* included — it is reported separately as
    ``compile_ms`` regardless of whether :meth:`Planner.solve` compiled
    internally or was handed a pre-compiled problem.
    """

    # -- the metrics-registry view (docs/OBSERVABILITY.md) ---------------------

    def publish(self, metrics: MetricsRegistry) -> None:
        """Write every field as a ``planner.<field>`` gauge.

        Gauges are last-write-wins, so re-running a planner against the
        same :class:`~repro.obs.Telemetry` leaves the registry describing
        the most recent run (spans and counters keep accumulating).
        """
        for f in fields(self):
            metrics.set_gauge(f"planner.{f.name}", getattr(self, f.name))

    @classmethod
    def from_metrics(cls, metrics: MetricsRegistry) -> "PlannerStats":
        """Rebuild a stats row from the ``planner.*`` gauges.

        Missing gauges keep their field defaults, so a registry from an
        older export still loads.
        """
        kwargs = {}
        for f in fields(cls):
            gauge = metrics.get(f"planner.{f.name}")
            if gauge is not None:
                cast = int if isinstance(f.default, int) else float
                kwargs[f.name] = cast(gauge.value)
        return cls(**kwargs)

    @property
    def search_ms(self) -> float:
        """Search-and-graph-construction time (the second number of col. 9)."""
        return self.plrg_ms + self.slrg_ms + self.rg_ms

    def replay_summary(self) -> str:
        """One-line account of RG replay work (shown by ``repro plan``)."""
        return (
            f"{self.rg_replays} replays, {self.rg_actions_replayed} actions "
            f"replayed, {self.rg_conditions_checked} conditions checked"
        )

    def row(self) -> dict[str, float | int | str]:
        """A flat dict suitable for table rendering."""
        return {
            "total_actions": self.total_actions,
            "plrg": f"{self.plrg_prop_nodes} / {self.plrg_action_nodes}",
            "slrg": self.slrg_set_nodes,
            "rg": f"{self.rg_nodes} / {self.rg_queue_left}",
            "time_ms": f"{self.total_ms:.0f} / {self.search_ms:.0f}",
        }
