"""Compatibility shim: the search trace moved to :mod:`repro.obs`.

The bounded RG :class:`SearchTrace` is now part of the unified
observability subsystem (spans + metrics + traces) in ``repro.obs``;
import it from there.  This module remains so existing imports of
``repro.planner.trace`` (and the ``repro.planner`` re-exports) keep
working.
"""

from __future__ import annotations

from ..obs.trace import SearchTrace, TraceEvent

__all__ = ["TraceEvent", "SearchTrace"]
