"""The graceful-degradation ladder (docs/ROBUSTNESS.md).

:func:`solve_robust` keeps producing deployment plans when the planner is
under time pressure or its search budgets are too small, by walking a
ladder of progressively cheaper configurations:

1. **full** — the leveled planner, run to optimality.
2. **anytime** — the same run's best-so-far *incumbent* complete plan,
   returned when the deadline or node budget cuts the search short
   (rungs 1 and 2 share one search; see ``PlannerConfig.anytime``).
3. **coarsened** — a retry with every level spec halved
   (:func:`coarsen_leveling`): fewer levels mean fewer ground actions,
   so compilation and search both shrink, at the price of plan quality.
4. **greedy** — the original greedy Sekitei (trivial leveling), the
   paper's Scenario A baseline: fast, worst-case-feasible, never optimal.

Every rung validates its plan with the exact executor (the planner's
``validate`` default), so whatever the ladder returns is a *correct*
deployment — only optimality degrades.  Failures that a lower rung cannot
fix stop the walk early: :class:`Unsolvable` is a logical gap and
:class:`ResourceInfeasible` only gets worse as levels coarsen (coarser
intervals raise worst-case consumption), so neither is retried.

The returned :class:`SolveOutcome` names the rung that produced the plan
and records why every earlier rung failed.  With telemetry attached, the
walk increments ``robust.attempt.<rung>`` per attempt,
``robust.fallback.<rung>`` for the winning rung, and ``robust.failed``
when no rung succeeds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from ..model import AppSpec, Leveling, LevelSpec
from ..network import Network
from ..obs import Telemetry
from .errors import ResourceInfeasible, SearchBudgetExceeded, Unsolvable
from .plan import Plan
from .planner import Planner, PlannerConfig

__all__ = [
    "RUNGS",
    "RungAttempt",
    "SolveOutcome",
    "coarsen_leveling",
    "solve_robust",
]

RUNGS = ("full", "anytime", "coarsened", "greedy")
"""Ladder rungs, best to worst (``full``/``anytime`` share one search)."""

# Share of the time budget the first (full/anytime) attempt may spend; the
# coarsened retry gets this share of whatever remains, and the greedy rung
# everything left.  Unused time rolls down the ladder automatically.
_FIRST_SHARE = 0.5
_COARSE_SHARE = 0.6
_MIN_SLICE_S = 1e-3


@dataclass
class RungAttempt:
    """One rung of the ladder: what was tried and how it went."""

    rung: str
    succeeded: bool
    detail: str = ""
    error_type: str = ""
    elapsed_s: float = 0.0

    def describe(self) -> str:
        status = "ok" if self.succeeded else f"failed ({self.error_type})"
        line = f"{self.rung}: {status} in {self.elapsed_s:.3f}s"
        if self.detail:
            line += f" — {self.detail}"
        return line


@dataclass
class SolveOutcome:
    """Result of a ladder walk: the plan (if any) and the full history."""

    plan: Plan | None
    rung: str = ""
    attempts: list[RungAttempt] = field(default_factory=list)

    @property
    def solved(self) -> bool:
        return self.plan is not None

    @property
    def degraded(self) -> bool:
        """True when a rung below ``full`` produced the plan."""
        return self.solved and self.rung != "full"

    def describe(self) -> str:
        lines = [a.describe() for a in self.attempts]
        if self.solved:
            lines.append(
                f"=> plan from rung '{self.rung}': {len(self.plan)} actions, "
                f"cost lower bound {self.plan.cost_lb:g}"
            )
        else:
            lines.append("=> no plan from any rung")
        return "\n".join(lines)


def coarsen_leveling(leveling: Leveling) -> Leveling | None:
    """A cheaper leveling: every spec keeps every other cutpoint.

    The highest cutpoint always survives (it caps utilization, which is
    what keeps resource-constrained instances feasible at all); specs with
    a single cutpoint are unchanged.  Returns ``None`` when nothing can be
    coarsened — the caller should skip the rung rather than re-solve an
    identical problem.
    """
    specs: dict[str, LevelSpec] = {}
    changed = False
    for var, spec in leveling.specs.items():
        cuts = spec.cutpoints
        if len(cuts) <= 1:
            specs[var] = spec
            continue
        kept = tuple(reversed(cuts[::-1][::2]))
        specs[var] = LevelSpec(kept)
        changed = True
    if not changed:
        return None
    return Leveling(specs, name=f"{leveling.name}-coarse")


def solve_robust(
    app: AppSpec,
    network: Network,
    leveling: Leveling | None = None,
    *,
    config: PlannerConfig | None = None,
    time_limit_s: float | None = None,
    telemetry: Telemetry | None = None,
    workers: int = 1,
) -> SolveOutcome:
    """Walk the degradation ladder until some rung produces a valid plan.

    Parameters
    ----------
    config:
        Base planner configuration; the ladder overrides ``leveling``,
        ``time_limit_s``, ``anytime``, and ``telemetry`` per rung and
        leaves everything else (budgets, heuristic, validation) alone.
    time_limit_s:
        Total wall-clock budget for the *whole walk* (overrides
        ``config.time_limit_s``).  The first attempt gets half, the
        coarsened retry most of the remainder, the greedy rung the rest;
        a rung that finishes early donates its leftover time down the
        ladder.  ``None`` means no deadline — lower rungs then only fire
        on node-budget exhaustion.
    telemetry:
        Metrics sink for the ``robust.*`` counters (overrides
        ``config.telemetry``).
    workers:
        ``1`` (the default) walks the ladder sequentially exactly as
        before.  ``> 1`` races the rungs in that many processes instead
        (:mod:`repro.parallel.race`): every rung gets the *whole* time
        budget, the best rung that succeeds wins, and the losers are
        cancelled.  Same acceptance semantics — a lower rung's plan is
        only taken once every higher rung has failed — so the two modes
        differ only in wall clock and, under deadline pressure, in which
        rung wins (always recorded in ``SolveOutcome.rung``).

    Never raises :class:`~repro.planner.PlanningError` — an unsolvable
    walk is reported via ``SolveOutcome.plan is None``.  Configuration
    errors (:class:`~repro.model.SpecError`, ``ValueError``) and executor
    bugs (:class:`~repro.planner.ExecutionError`) still propagate.
    """
    base = config or PlannerConfig()
    leveling = leveling if leveling is not None else base.leveling
    telemetry = telemetry if telemetry is not None else base.telemetry
    if time_limit_s is None:
        time_limit_s = base.time_limit_s
    if workers > 1:
        return _solve_robust_racing(
            app, network, leveling, base, time_limit_s, telemetry, workers
        )
    t_walk = time.perf_counter()
    walk_end = t_walk + time_limit_s if time_limit_s is not None else None
    metrics = telemetry.metrics if telemetry is not None else None

    def remaining_s() -> float | None:
        if walk_end is None:
            return None
        return max(walk_end - time.perf_counter(), _MIN_SLICE_S)

    def slice_s(share: float) -> float | None:
        rem = remaining_s()
        if rem is None:
            return None
        return max(rem * share, _MIN_SLICE_S)

    outcome = SolveOutcome(plan=None)

    def attempt(rung: str, lev: Leveling | None, limit: float | None) -> Plan | None:
        """Run one rung; record the attempt; return its plan or None."""
        if metrics is not None:
            metrics.inc(f"robust.attempt.{rung}")
        cfg = replace(
            base,
            leveling=lev,
            time_limit_s=limit,
            anytime=True,
            telemetry=telemetry,
        )
        t0 = time.perf_counter()
        try:
            plan = Planner(cfg).solve(app, network)
        except (SearchBudgetExceeded, Unsolvable, ResourceInfeasible) as exc:
            outcome.attempts.append(
                RungAttempt(
                    rung=rung,
                    succeeded=False,
                    detail=str(exc).splitlines()[0],
                    error_type=type(exc).__name__,
                    elapsed_s=time.perf_counter() - t0,
                )
            )
            # A lower rung cannot repair a logical gap, and coarser levels
            # only raise worst-case consumption — stop the walk for both.
            if isinstance(exc, (Unsolvable, ResourceInfeasible)):
                raise _LadderStop from exc
            return None
        outcome.attempts.append(
            RungAttempt(
                rung=rung,
                succeeded=True,
                detail=f"{len(plan)} actions, cost lower bound {plan.cost_lb:g}"
                + (" (incumbent)" if plan.incumbent else ""),
                elapsed_s=time.perf_counter() - t0,
            )
        )
        return plan

    def finish(rung: str, plan: Plan) -> SolveOutcome:
        outcome.plan = plan
        outcome.rung = rung
        if metrics is not None:
            metrics.inc(f"robust.fallback.{rung}")
        return outcome

    try:
        # Rungs 1+2 — one search: optimal if it finishes, incumbent if cut.
        plan = attempt("full", leveling, slice_s(_FIRST_SHARE))
        if plan is not None:
            return finish("anytime" if plan.incumbent else "full", plan)

        # Rung 3 — coarsened leveling (skipped when nothing to coarsen).
        coarse = coarsen_leveling(leveling) if leveling is not None else None
        if coarse is not None:
            plan = attempt("coarsened", coarse, slice_s(_COARSE_SHARE))
            if plan is not None:
                return finish("coarsened", plan)

        # Rung 4 — the original greedy Sekitei (trivial leveling).
        plan = attempt("greedy", Leveling({}, name="greedy-trivial"), remaining_s())
        if plan is not None:
            return finish("greedy", plan)
    except _LadderStop:
        pass

    if metrics is not None:
        metrics.inc("robust.failed")
    return outcome


class _LadderStop(Exception):
    """Internal: a rung failed in a way no lower rung can fix."""


def _solve_robust_racing(
    app: AppSpec,
    network: Network,
    leveling: Leveling | None,
    base: PlannerConfig,
    time_limit_s: float | None,
    telemetry: Telemetry | None,
    workers: int,
) -> SolveOutcome:
    """Race the ladder rungs across processes (``solve_robust(workers>1)``).

    Each rung runs in its own process with the whole time budget; the
    race accepts the best rung that succeeds (see
    :func:`repro.parallel.race.race_rungs` for the acceptance policy).
    The winner's plan travels home as a :class:`~repro.parallel.PlanEnvelope`
    and is rebound to a problem compiled in the parent through the
    warm-start cache; only the winner's worker metrics are merged (the
    losers' work was cancelled, so counting it would misstate the cost
    of the returned plan).
    """
    from ..parallel.cache import default_compile_cache
    from ..parallel.race import RungJob, race_rungs

    metrics = telemetry.metrics if telemetry is not None else None
    # Each racing rung gets the whole budget and runs in anytime mode, so
    # the full rung degrades to its own incumbent exactly as rung 2 does.
    child_config = replace(
        base, time_limit_s=time_limit_s, anytime=True, telemetry=None
    )
    jobs = [
        RungJob(
            rung="full",
            app=app,
            network=network,
            leveling=leveling,
            config=child_config,
            with_metrics=metrics is not None,
        )
    ]
    coarse = coarsen_leveling(leveling) if leveling is not None else None
    if coarse is not None:
        jobs.append(
            RungJob(
                rung="coarsened",
                app=app,
                network=network,
                leveling=coarse,
                config=child_config,
                with_metrics=metrics is not None,
            )
        )
    jobs.append(
        RungJob(
            rung="greedy",
            app=app,
            network=network,
            leveling=Leveling({}, name="greedy-trivial"),
            config=child_config,
            with_metrics=metrics is not None,
        )
    )
    leveling_of = {job.rung: job.leveling for job in jobs}

    if telemetry is not None:
        # Dispatch span: racing rungs inherit its context, so the
        # winner's remote spans stitch under it in the merged trace.
        with telemetry.span("robust.race", workers=workers, rungs=len(jobs)):
            ctx = telemetry.current_context()
            jobs = [replace(job, trace=ctx) for job in jobs]
            winner, raced = race_rungs(jobs, workers=workers, time_limit_s=time_limit_s)
    else:
        winner, raced = race_rungs(jobs, workers=workers, time_limit_s=time_limit_s)

    outcome = SolveOutcome(plan=None)
    for res in raced:
        if res.status == "ok":
            attempt = RungAttempt(
                rung=res.rung, succeeded=True, detail=res.detail,
                elapsed_s=res.elapsed_s,
            )
        elif res.status == "error":
            attempt = RungAttempt(
                rung=res.rung, succeeded=False, detail=res.detail,
                error_type=res.error_type, elapsed_s=res.elapsed_s,
            )
        elif res.status == "crashed":
            attempt = RungAttempt(
                rung=res.rung, succeeded=False, detail=res.detail,
                error_type="WorkerCrashed", elapsed_s=res.elapsed_s,
            )
        else:  # cancelled (race lost / aborted / never started)
            attempt = RungAttempt(
                rung=res.rung, succeeded=False, detail=res.detail,
                error_type="Cancelled", elapsed_s=res.elapsed_s,
            )
        outcome.attempts.append(attempt)
        if metrics is not None:
            if res.status in ("ok", "error"):
                metrics.inc(f"robust.attempt.{res.rung}")
            elif res.status == "cancelled":
                metrics.inc(f"robust.cancelled.{res.rung}")

    if winner is None or winner.plan is None:
        if metrics is not None:
            metrics.inc("robust.failed")
        return outcome

    problem = default_compile_cache().compile(
        app, network, leveling_of[winner.rung], metrics=metrics
    )
    plan = winner.plan.restore(problem)
    outcome.plan = plan
    outcome.rung = (
        "anytime" if winner.rung == "full" and plan.incumbent else winner.rung
    )
    if metrics is not None:
        metrics.inc(f"robust.fallback.{outcome.rung}")
        if winner.metrics is not None:
            telemetry.stitch_snapshot(winner.metrics)
            winner.metrics.merge_into(metrics)
    return outcome
