"""Phase 3 — the main regression graph (paper §3.2.3).

The RG performs A* regression from the goal set.  Each node carries a
proposition set and a totally ordered *plan tail* (the actions regressed
over so far, which form the suffix of any plan through this node).  On
node creation the tail is replayed inside the optimistic resource map —
contradictions, unsatisfiable conditions, or worst-case overdraws prune
the node immediately (early detection of quality-of-service violations).

A node is terminal when its propositions all hold in the initial state
and its tail replays successfully against the initial state's resource
map.  Because resource failures depend on the whole tail, nodes are not
reused; the RG is a tree (the paper's observation).  We do apply one safe
transposition prune: two nodes with the same proposition set and the same
*multiset* of tail actions are interchangeable, so the later/costlier one
is dropped.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Callable

from typing import TYPE_CHECKING

from ..compile import CompiledProblem, GroundAction, ReplayCounters, ReplayFailure
from ..obs import MetricsRegistry
from .deadline import Deadline
from .errors import DeadlineExceeded, ResourceInfeasible, SearchBudgetExceeded
from .trace import SearchTrace

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids a hard analysis dep
    from ..analysis.symmetry import PruneHints

__all__ = ["RGResult", "regression_search"]

_INF = math.inf

# Fixed histogram bounds for the RG work distributions (docs/OBSERVABILITY.md).
_TAIL_BOUNDS = (1, 2, 4, 8, 16, 32, 64)
_BRANCH_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256)
_US_BOUNDS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


@dataclass(slots=True)
class _Node:
    """One RG search node.

    ``tail_ids`` (the indices of the actions on the path back to the
    root) and ``depth`` (the tail length) are computed incrementally at
    construction — O(1) amortized bookkeeping per node instead of
    re-walking the parent chain for every candidate child.
    """

    props: frozenset[int]
    g: float
    action: GroundAction | None
    parent: "_Node | None"
    depth: int
    tail_ids: frozenset[int] = frozenset()

    def tail(self) -> list[GroundAction]:
        """Plan tail in execution order (this node's action first)."""
        out: list[GroundAction] = []
        node: _Node | None = self
        while node is not None and node.action is not None:
            out.append(node.action)
            node = node.parent
        return out


@dataclass
class RGResult:
    """Outcome of the RG search.

    ``incumbent`` marks an *anytime* result: the search was cut short (by
    deadline or node budget) and returned its best complete plan found so
    far instead of the proven optimum.  ``stop_reason`` says why the
    search ended: ``"optimal"``, ``"deadline"``, or ``"node_budget"``.
    """

    plan_actions: list[GroundAction]
    cost_lb: float
    nodes_created: int  # Table 2, column 8 (first number)
    nodes_left_in_queue: int  # Table 2, column 8 (second number)
    nodes_expanded: int
    replay: ReplayCounters = field(default_factory=ReplayCounters)
    incumbent: bool = False
    stop_reason: str = "optimal"
    symmetry_pruned: int = 0
    """Children skipped by the verified symmetry sibling prune."""


def regression_search(
    problem: CompiledProblem,
    heuristic: Callable[[frozenset[int]], float],
    usable_actions: tuple[int, ...],
    node_budget: int = 500_000,
    branch_all_props: bool = True,
    prop_rank: Callable[[int], float] | None = None,
    trace: SearchTrace | None = None,
    metrics: MetricsRegistry | None = None,
    deadline: Deadline | None = None,
    allow_incumbent: bool = False,
    probe_budget: int = 4096,
    symmetry: "PruneHints | None" = None,
) -> RGResult:
    """A* regression with plan-tail replay.

    Parameters
    ----------
    heuristic:
        Maps a proposition set to an admissible cost-to-initial-state
        bound (SLRG query or PLRG hmax, per configuration).
    usable_actions:
        Indices of actions that survived PLRG relevance/reachability.
    branch_all_props:
        When true (the paper's rule, and the planner default), children
        regress over achievers of *any* open proposition.  When false,
        only the hardest open proposition is regressed — cheaper, but a
        multi-output action covering several open subgoals may be missed,
        losing optimality (and, in corner cases, feasibility).
    prop_rank:
        Ranking used to pick the hardest proposition (defaults to the
        heuristic of singleton sets; the planner passes PLRG costs).
    trace / metrics:
        Optional observability channels (see :mod:`repro.obs`): a bounded
        event trace, and a registry receiving the RG work distributions
        (branching factors, replay tail lengths, f-values, per-action
        replay microseconds) plus per-reason prune counters.  Both default
        to off; the hot loop then runs exactly as before.
    deadline:
        Optional wall-clock deadline, polled once per expansion with a
        strided clock read (docs/ROBUSTNESS.md).
    allow_incumbent:
        Anytime mode.  Every complete node created during the search (its
        propositions all hold initially and its tail replayed cleanly) is
        remembered as the *incumbent*; when the deadline or node budget
        trips, the best incumbent is returned — flagged via
        ``RGResult.incumbent`` — instead of raising.  With no incumbent
        yet, exhaustion still raises.  Because an accurate heuristic makes
        A* create its first terminal node only near the optimum, anytime
        mode first runs a bounded *greedy probe* (best-first on ``h``
        alone, up to ``probe_budget`` nodes) to establish an initial
        incumbent quickly; the probe's plan is feasible (replay-checked)
        but usually suboptimal.
    probe_budget:
        Node cap for the greedy incumbent probe (anytime mode only;
        ``0`` disables the probe).
    symmetry:
        Optional verified prune hints from the static analysis
        (:func:`repro.analysis.compute_symmetry`).  When a candidate
        action is the verified swap image of a cheaper-indexed sibling
        candidate under a node transposition ``rep ~ other``, and neither
        swapped node is mentioned by the current node's propositions or
        plan tail, the candidate is skipped: the sibling's subtree
        explores the swap image of everything under it at identical cost,
        so optimal plan cost is preserved (reason ``"symmetry"``).

    Raises
    ------
    ResourceInfeasible
        When the search space empties without a terminal node — the
        greedy failure mode of Scenario 1.
    SearchBudgetExceeded
        When ``node_budget`` nodes have been created without a solution
        (and no incumbent was available to return).
    DeadlineExceeded
        When ``deadline`` expired without a solution (and no incumbent
        was available to return).
    """
    initial = problem.initial_prop_ids
    actions = problem.actions
    usable = set(usable_actions)
    achievers: dict[int, list[int]] = {
        pid: [a for a in acts if a in usable] for pid, acts in problem.achievers.items()
    }
    if prop_rank is None:
        prop_rank = lambda pid: heuristic(frozenset((pid,)))  # noqa: E731

    root = _Node(props=frozenset(problem.goal_prop_ids), g=0.0, action=None, parent=None, depth=0)
    counters = ReplayCounters()

    # Metric instruments are resolved once, outside the loop; when metrics
    # are off the per-iteration cost is a single None check per site.
    if metrics is not None:
        branch_hist = metrics.histogram("rg.branching_factor", _BRANCH_BOUNDS)
        tail_hist = metrics.histogram("rg.replay.tail_length", _TAIL_BOUNDS)
        f_hist = metrics.histogram("rg.f_value")
        us_hist = metrics.histogram("rg.replay.us_per_action", _US_BOUNDS)
        prune_counters = {
            reason: metrics.counter(f"rg.prune.{reason}")
            for reason in ("replay", "transposition", "heuristic", "symmetry")
        }

    counter = itertools.count()
    h0 = heuristic(root.props)
    if h0 == _INF:
        raise ResourceInfeasible("goal set has no logical support")
    # Ties on f are broken toward smaller h (deeper progress), which walks
    # a uniform-cost plateau depth-first instead of flooding it.
    heap: list[tuple[float, float, int, _Node]] = [(h0, h0, next(counter), root)]
    nodes_created = 1
    nodes_expanded = 0
    # Transposition pruning: (props, tail action multiset) -> best g.
    seen: dict[tuple[frozenset[int], frozenset[int]], float] = {}
    # Anytime state: cheapest complete node created so far.  A node whose
    # propositions all hold initially is a valid plan the moment it is
    # created (its replay base *is* the initial map), so it can stand in
    # for the optimum when the search is cut short.
    incumbent: _Node | None = None
    symmetry_pruned = 0
    t_phase = time.perf_counter()

    def _weighted_probe(cap: int, weight: float = 2.0) -> tuple[_Node | None, int]:
        """Weighted A* (``f' = g + weight·h``): find *some* complete plan fast.

        Returns ``(terminal_node_or_None, nodes_created)``.  Children are
        generated and replay-validated exactly like the main loop, so a
        returned node is a feasible plan; its cost is within ``weight``
        times the optimum.  Pure h-greedy descent drowns in this space —
        feasible complete tails are rare off the cost-ordered frontier —
        but inflating h by 2 keeps enough g-ordering to reach a terminal
        in a few thousand nodes on the Fig. 10 instances.
        """
        pheap: list[tuple[tuple[float, float], int, _Node]] = [
            ((weight * h0, h0), next(counter), root)
        ]
        pseen: dict[tuple[frozenset[int], frozenset[int]], float] = {}
        created = 0
        while pheap:
            if deadline is not None and deadline.poll():
                return None, created
            _pf, _pt, pnode = heapq.heappop(pheap)
            p_open = pnode.props - initial
            if not p_open:
                return pnode, created
            cands: set[int] = set()
            if branch_all_props:
                for pid in p_open:
                    cands.update(achievers.get(pid, ()))
            else:
                cands.update(achievers.get(max(p_open, key=prop_rank), ()))
            for a_idx in cands:
                if a_idx in pnode.tail_ids:
                    continue
                action = actions[a_idx]
                new_props = frozenset((pnode.props - action.add_props) | action.pre_props)
                child_tail_ids = pnode.tail_ids | {a_idx}
                key = (new_props, child_tail_ids)
                ng = pnode.g + action.cost_lb
                prev = pseen.get(key)
                if prev is not None and prev <= ng:
                    continue
                child = _Node(
                    props=new_props,
                    g=ng,
                    action=action,
                    parent=pnode,
                    depth=pnode.depth + 1,
                    tail_ids=child_tail_ids,
                )
                rmap = problem.initial_map()
                counters.replays += 1
                try:
                    step: _Node | None = child
                    while step is not None and step.action is not None:
                        step.action.replay(rmap, counters)
                        step = step.parent
                except ReplayFailure:
                    continue
                if not (new_props - initial):
                    return child, created + 1
                nh = heuristic(new_props)
                if nh == _INF:
                    continue
                pseen[key] = ng
                created += 1
                if created > cap:
                    return None, created
                heapq.heappush(pheap, ((ng + weight * nh, nh), next(counter), child))
        return None, created

    if allow_incumbent and probe_budget > 0:
        incumbent, probe_created = _weighted_probe(probe_budget)
        nodes_created += probe_created
        if metrics is not None and incumbent is not None:
            metrics.inc("rg.incumbent.improved")

    def _interrupted(reason: str) -> RGResult:
        """Return the incumbent on early stop, or raise the structured error."""
        if allow_incumbent and incumbent is not None:
            if trace is not None:
                trace.terminal(incumbent.g, incumbent.depth)
            if metrics is not None:
                metrics.inc("rg.incumbent.returned")
            return RGResult(
                plan_actions=incumbent.tail(),
                cost_lb=incumbent.g,
                nodes_created=nodes_created,
                nodes_left_in_queue=len(heap),
                nodes_expanded=nodes_expanded,
                replay=counters,
                incumbent=True,
                stop_reason=reason,
                symmetry_pruned=symmetry_pruned,
            )
        elapsed = time.perf_counter() - t_phase
        if reason == "deadline":
            raise DeadlineExceeded(
                phase="rg",
                time_limit_s=deadline.time_limit_s if deadline is not None else 0.0,
                nodes_expanded=nodes_expanded,
                nodes_created=nodes_created,
                elapsed_s=elapsed,
            )
        raise SearchBudgetExceeded(
            phase="rg",
            nodes_expanded=nodes_expanded,
            nodes_created=nodes_created,
            budget=node_budget,
            elapsed_s=elapsed,
        )

    while heap:
        if deadline is not None and deadline.poll():
            return _interrupted("deadline")
        f, _h, _tie, node = heapq.heappop(heap)
        open_props = node.props - initial

        if not open_props:
            # Logically satisfied; final validation replays against the
            # exact initial map (already done at creation — the node's
            # replay base *is* the initial map — so this is terminal).
            if trace is not None:
                trace.terminal(node.g, node.depth)
            return RGResult(
                plan_actions=node.tail(),
                cost_lb=node.g,
                nodes_created=nodes_created,
                nodes_left_in_queue=len(heap),
                nodes_expanded=nodes_expanded,
                replay=counters,
                symmetry_pruned=symmetry_pruned,
            )

        nodes_expanded += 1
        if trace is not None:
            trace.expanded(len(open_props), f, node.depth)

        # Child actions must achieve at least one open proposition (the
        # paper's rule).  By default we fix the hardest open proposition
        # and branch over its achievers only; branch_all_props restores
        # the literal any-proposition branching.
        candidate_actions: set[int] = set()
        if branch_all_props:
            for pid in open_props:
                candidate_actions.update(achievers.get(pid, ()))
        else:
            target = max(open_props, key=prop_rank)
            candidate_actions.update(achievers.get(target, ()))
        if metrics is not None:
            branch_hist.observe(len(candidate_actions))

        tail_ids = node.tail_ids
        mentioned: set[str] | None = None  # nodes touched by props/tail, lazy
        for a_idx in candidate_actions:
            if a_idx in tail_ids:
                continue  # add-only logic never needs a repeated action
            if symmetry is not None:
                edge = symmetry.partner.get(a_idx)
                if (
                    edge is not None
                    and edge[0] in candidate_actions
                    and edge[0] not in tail_ids
                ):
                    if mentioned is None:
                        prop_node = symmetry.prop_node
                        mentioned = {
                            prop_node[pid] for pid in node.props if pid in prop_node
                        }
                        for t_idx in tail_ids:
                            mentioned.update(symmetry.action_nodes.get(t_idx, ()))
                    _a1, rep, other = edge
                    if rep not in mentioned and other not in mentioned:
                        # This child is the rep~other swap image of the
                        # sibling through edge[0]; that sibling's subtree
                        # covers the image of this one at identical cost.
                        symmetry_pruned += 1
                        if trace is not None:
                            trace.pruned(
                                actions[a_idx].name,
                                "symmetry",
                                node.depth + 1,
                                f"swap image under {rep}~{other}",
                            )
                        if metrics is not None:
                            prune_counters["symmetry"].inc()
                        continue
            action = actions[a_idx]
            new_props = frozenset((node.props - action.add_props) | action.pre_props)
            ng = node.g + action.cost_lb
            child_tail_ids = tail_ids | {a_idx}
            key = (new_props, child_tail_ids)
            prev = seen.get(key)
            if prev is not None and prev <= ng:
                if trace is not None:
                    trace.pruned(action.name, "transposition", node.depth + 1, "duplicate tail set")
                if metrics is not None:
                    prune_counters["transposition"].inc()
                continue

            child = _Node(
                props=new_props,
                g=ng,
                action=action,
                parent=node,
                depth=node.depth + 1,
                tail_ids=child_tail_ids,
            )

            # Replay the tail (child's action first, walking up the parent
            # chain) in the optimistic map seeded from the initial state.
            rmap = problem.initial_map()
            counters.replays += 1
            t_replay = time.perf_counter() if metrics is not None else 0.0
            try:
                step: _Node | None = child
                while step is not None and step.action is not None:
                    step.action.replay(rmap, counters)
                    step = step.parent
            except ReplayFailure as exc:
                if trace is not None:
                    trace.pruned(action.name, "replay", child.depth, exc.reason)
                if metrics is not None:
                    prune_counters["replay"].inc()
                continue
            if metrics is not None:
                tail_hist.observe(child.depth)
                us_hist.observe((time.perf_counter() - t_replay) * 1e6 / child.depth)

            nh = heuristic(new_props)
            if nh == _INF:
                if trace is not None:
                    trace.pruned(action.name, "heuristic", child.depth, "infinite cost-to-go")
                if metrics is not None:
                    prune_counters["heuristic"].inc()
                continue
            if allow_incumbent and not (new_props - initial):
                # Complete plan: remember the cheapest one seen so far.
                if incumbent is None or ng < incumbent.g:
                    incumbent = child
                    if metrics is not None:
                        metrics.inc("rg.incumbent.improved")
            seen[key] = ng
            nodes_created += 1
            if nodes_created > node_budget:
                return _interrupted("node_budget")
            if trace is not None:
                trace.created(action.name, ng + nh, child.depth)
            if metrics is not None:
                f_hist.observe(ng + nh)
            heapq.heappush(heap, (ng + nh, nh, next(counter), child))

    raise ResourceInfeasible(
        "no deployment plan survives resource replay (the goal is logically "
        "reachable but every candidate plan violates resource constraints)"
    )
