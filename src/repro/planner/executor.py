"""Exact forward execution of plans.

The planner reasons in levels and intervals; this module is the ground
truth.  It executes a plan with concrete float values under the greedy
within-level concretization (DESIGN.md rule 2): each action processes
``min(available, level cap)`` units of its input streams.  Conditions are
checked exactly; resources are debited exactly.  A plan that fails here is
invalid — the planner's soundness invariant (tested property-style) is
that every plan it returns executes cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..expr import (
    EvalError,
    check_condition_float,
    compile_condition_float,
    compile_float,
    eval_float,
)
from ..compile import CompiledProblem, EffectKind, GroundAction, replay_backend
from ..obs import Telemetry, maybe_span
from .errors import ExecutionError

__all__ = ["ExecutionStep", "ExecutionReport", "PlanExecutor", "execute_plan"]

_EPS = 1e-6


@dataclass
class ExecutionStep:
    """One executed action with its concrete values."""

    action: GroundAction
    inputs: dict[str, float]  # spec var -> processed value
    outputs: dict[str, float]  # ground var -> produced/updated value
    cost: float


@dataclass
class ExecutionReport:
    """Result of executing a full plan."""

    steps: list[ExecutionStep] = field(default_factory=list)
    total_cost: float = 0.0
    final_values: dict[str, float] = field(default_factory=dict)
    consumed: dict[str, float] = field(default_factory=dict)  # ground var -> used

    def consumed_matching(self, prefix: str, keys: set[str] | None = None) -> dict[str, float]:
        """Consumption filtered to ground variables with a prefix (e.g. ``lbw@``)."""
        out = {}
        for gvar, used in self.consumed.items():
            if gvar.startswith(prefix) and used > _EPS:
                if keys is None or gvar in keys:
                    out[gvar] = used
        return out

    def max_consumed(self, gvars: set[str]) -> float:
        """Largest consumption over a set of resource variables."""
        return max((self.consumed.get(g, 0.0) for g in gvars), default=0.0)

    def value(self, gvar: str) -> float:
        return self.final_values.get(gvar, 0.0)


def execute_plan(
    problem: CompiledProblem,
    actions: list[GroundAction],
    telemetry: Telemetry | None = None,
) -> ExecutionReport:
    """Execute ``actions`` in order from the initial state.

    Raises :class:`ExecutionError` with a precise reason on any violation:
    missing input stream, failed condition, or resource overdraw.  With
    ``telemetry``, the execution is wrapped in an ``execute`` span and
    counted under ``executor.plans`` / ``executor.actions``.
    """
    with maybe_span(telemetry, "execute", actions=len(actions)):
        if telemetry is not None:
            telemetry.metrics.inc("executor.plans")
            telemetry.metrics.inc("executor.actions", len(actions))
        return _execute(problem, actions)


class PlanExecutor:
    """Stateful, checkpointed forward execution — one atomic step at a time.

    The incremental counterpart of :func:`execute_plan`: state (the exact
    ground-variable values) persists across :meth:`step` calls, so
    executing an n-action plan costs n action evaluations total instead
    of O(n²) re-executions when a caller probes one action at a time
    (deployment repair's surviving-prefix scan does exactly that).

    Steps are **atomic**: every read, condition, and staged write of an
    action is validated against the current state before anything is
    applied, so a failing :meth:`step`/:meth:`try_step` leaves the
    executor exactly where it was — the caller can go on probing other
    candidates or finalize the report of the successful prefix.
    """

    def __init__(self, problem: CompiledProblem):
        values: dict[str, float] = dict(problem.initial_values)
        for iface, node, value, _deg, _upg, prop in problem._initial_streams:
            from ..compile import iface_prop_var

            values[iface_prop_var(prop, iface, node)] = value
        self._values = values
        self._baseline = dict(values)
        self._report = ExecutionReport()
        self._compiled = replay_backend() == "compiled"

    @property
    def steps(self) -> list[ExecutionStep]:
        return self._report.steps

    def step(self, action: GroundAction) -> ExecutionStep:
        """Execute one action; raises :class:`ExecutionError` on any
        violation, leaving the state unchanged."""
        env, inputs = self._read_inputs(action)
        self._check_conditions(action, env)
        outputs, writes = self._stage_effects(action, env)
        cost = self._action_cost(action, env)
        # All validation passed: apply the staged writes atomically.
        self._values.update(writes)
        step = ExecutionStep(action, inputs, outputs, cost)
        self._report.steps.append(step)
        self._report.total_cost += cost
        return step

    def try_step(self, action: GroundAction) -> bool:
        """Like :meth:`step` but returns ``False`` instead of raising."""
        try:
            self.step(action)
        except ExecutionError:
            return False
        return True

    def report(self) -> ExecutionReport:
        """The report of everything executed so far.

        Snapshots ``final_values`` and ``consumed`` from the current
        state; safe to call repeatedly (e.g. once per probed prefix
        length) — further steps simply extend the same report.
        """
        self._report.final_values = dict(self._values)
        consumed: dict[str, float] = {}
        for gvar, before in self._baseline.items():
            after = self._values.get(gvar, before)
            if after < before - _EPS:
                consumed[gvar] = before - after
        self._report.consumed = consumed
        return self._report

    # -- one action, in validate-then-apply stages ---------------------------

    def _read_inputs(
        self, action: GroundAction
    ) -> tuple[dict[str, float], dict[str, float]]:
        values = self._values
        env: dict[str, float] = {}
        inputs: dict[str, float] = {}
        for spec_var, gvar in action.var_map.items():
            raw = values.get(gvar)
            committed = action.committed.get(spec_var)
            if committed is None:
                continue  # output-only mapping: written by effects below
            if _is_resource_var(spec_var):
                if raw is None:
                    raise ExecutionError(f"{action.name}: resource {gvar} has no value")
                env[spec_var] = raw
                continue
            if raw is None:
                raise ExecutionError(
                    f"{action.name}: input stream {gvar} is not available"
                )
            cap = committed.hi
            lo = committed.lo
            u = min(raw, cap)
            if u + _EPS < lo:
                raise ExecutionError(
                    f"{action.name}: only {u:g} of {gvar} available but the "
                    f"committed level requires at least {lo:g}"
                )
            env[spec_var] = u
            inputs[spec_var] = u
        return env, inputs

    def _check_conditions(self, action: GroundAction, env: dict[str, float]) -> None:
        try:
            for cond in action.conditions:
                holds = (
                    compile_condition_float(cond)(env)
                    if self._compiled
                    else check_condition_float(cond, env)
                )
                if not holds:
                    raise ExecutionError(
                        f"{action.name}: condition {cond.unparse()} fails with "
                        + ", ".join(f"{k}={v:g}" for k, v in sorted(env.items()))
                    )
        except EvalError as exc:
            raise ExecutionError(f"{action.name}: {exc}") from exc

    def _stage_effects(
        self, action: GroundAction, env: dict[str, float]
    ) -> tuple[dict[str, float], dict[str, float]]:
        """Validate and stage all effect writes without touching state.

        Right-hand sides all read the pre-state (simultaneous-effect
        semantics); sequential writes to a shared target accumulate in
        the ``writes`` overlay, so a CONSUME overdraw is detected before
        any write lands.
        """
        values = self._values
        staged: list[tuple[str, EffectKind, float, str]] = []
        for assign, (gvar, kind) in zip(action.effects, action.effect_targets):
            try:
                rhs = (
                    compile_float(assign.expr)(env)
                    if self._compiled
                    else eval_float(assign.expr, env)
                )
            except EvalError as exc:
                raise ExecutionError(f"{action.name}: {exc}") from exc
            staged.append((gvar, kind, rhs, assign.op))

        outputs: dict[str, float] = {}
        writes: dict[str, float] = {}
        for gvar, kind, rhs, op in staged:
            current = writes.get(gvar, values.get(gvar, 0.0))
            if kind is EffectKind.CONSUME:
                new = current - rhs
                if new < -_EPS:
                    raise ExecutionError(
                        f"{action.name}: overdraws {gvar} by {-new:g}"
                    )
                writes[gvar] = max(new, 0.0)
            elif kind is EffectKind.SET_RESOURCE:
                if op == ":=":
                    writes[gvar] = rhs
                elif op == "+=":
                    writes[gvar] = current + rhs
                else:
                    writes[gvar] = current - rhs
            else:
                writes[gvar] = rhs
            outputs[gvar] = writes[gvar]
        return outputs, writes

    def _action_cost(self, action: GroundAction, env: dict[str, float]) -> float:
        try:
            if action.cost_ast is None:
                return 1.0
            if self._compiled:
                return compile_float(action.cost_ast)(env)
            return eval_float(action.cost_ast, env)
        except EvalError as exc:
            raise ExecutionError(f"{action.name}: cost formula: {exc}") from exc


def _execute(problem: CompiledProblem, actions: list[GroundAction]) -> ExecutionReport:
    executor = PlanExecutor(problem)
    for action in actions:
        executor.step(action)
    return executor.report()


def _is_resource_var(spec_var: str) -> bool:
    return spec_var.startswith("Node.") or spec_var.startswith("Link.")
