"""Exact forward execution of plans.

The planner reasons in levels and intervals; this module is the ground
truth.  It executes a plan with concrete float values under the greedy
within-level concretization (DESIGN.md rule 2): each action processes
``min(available, level cap)`` units of its input streams.  Conditions are
checked exactly; resources are debited exactly.  A plan that fails here is
invalid — the planner's soundness invariant (tested property-style) is
that every plan it returns executes cleanly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..expr import (
    EvalError,
    check_condition_float,
    compile_condition_float,
    compile_float,
    eval_float,
)
from ..compile import CompiledProblem, EffectKind, GroundAction, replay_backend
from ..obs import Telemetry, maybe_span
from .errors import ExecutionError

__all__ = ["ExecutionStep", "ExecutionReport", "execute_plan"]

_EPS = 1e-6


@dataclass
class ExecutionStep:
    """One executed action with its concrete values."""

    action: GroundAction
    inputs: dict[str, float]  # spec var -> processed value
    outputs: dict[str, float]  # ground var -> produced/updated value
    cost: float


@dataclass
class ExecutionReport:
    """Result of executing a full plan."""

    steps: list[ExecutionStep] = field(default_factory=list)
    total_cost: float = 0.0
    final_values: dict[str, float] = field(default_factory=dict)
    consumed: dict[str, float] = field(default_factory=dict)  # ground var -> used

    def consumed_matching(self, prefix: str, keys: set[str] | None = None) -> dict[str, float]:
        """Consumption filtered to ground variables with a prefix (e.g. ``lbw@``)."""
        out = {}
        for gvar, used in self.consumed.items():
            if gvar.startswith(prefix) and used > _EPS:
                if keys is None or gvar in keys:
                    out[gvar] = used
        return out

    def max_consumed(self, gvars: set[str]) -> float:
        """Largest consumption over a set of resource variables."""
        return max((self.consumed.get(g, 0.0) for g in gvars), default=0.0)

    def value(self, gvar: str) -> float:
        return self.final_values.get(gvar, 0.0)


def execute_plan(
    problem: CompiledProblem,
    actions: list[GroundAction],
    telemetry: Telemetry | None = None,
) -> ExecutionReport:
    """Execute ``actions`` in order from the initial state.

    Raises :class:`ExecutionError` with a precise reason on any violation:
    missing input stream, failed condition, or resource overdraw.  With
    ``telemetry``, the execution is wrapped in an ``execute`` span and
    counted under ``executor.plans`` / ``executor.actions``.
    """
    with maybe_span(telemetry, "execute", actions=len(actions)):
        if telemetry is not None:
            telemetry.metrics.inc("executor.plans")
            telemetry.metrics.inc("executor.actions", len(actions))
        return _execute(problem, actions)


def _execute(problem: CompiledProblem, actions: list[GroundAction]) -> ExecutionReport:
    values: dict[str, float] = dict(problem.initial_values)
    for iface, node, value, _deg, _upg, prop in problem._initial_streams:
        from ..compile import iface_prop_var

        values[iface_prop_var(prop, iface, node)] = value

    report = ExecutionReport()
    baseline = dict(values)
    compiled = replay_backend() == "compiled"

    for action in actions:
        env: dict[str, float] = {}
        inputs: dict[str, float] = {}
        for spec_var, gvar in action.var_map.items():
            raw = values.get(gvar)
            committed = action.committed.get(spec_var)
            if committed is None:
                continue  # output-only mapping: written by effects below
            if _is_resource_var(spec_var):
                if raw is None:
                    raise ExecutionError(f"{action.name}: resource {gvar} has no value")
                env[spec_var] = raw
                continue
            if raw is None:
                raise ExecutionError(
                    f"{action.name}: input stream {gvar} is not available"
                )
            cap = math.inf
            lo = 0.0
            if committed is not None:
                cap = committed.hi
                lo = committed.lo
            u = min(raw, cap)
            if u + _EPS < lo:
                raise ExecutionError(
                    f"{action.name}: only {u:g} of {gvar} available but the "
                    f"committed level requires at least {lo:g}"
                )
            env[spec_var] = u
            inputs[spec_var] = u

        try:
            for cond in action.conditions:
                holds = (
                    compile_condition_float(cond)(env)
                    if compiled
                    else check_condition_float(cond, env)
                )
                if not holds:
                    raise ExecutionError(
                        f"{action.name}: condition {cond.unparse()} fails with "
                        + ", ".join(f"{k}={v:g}" for k, v in sorted(env.items()))
                    )
        except EvalError as exc:
            raise ExecutionError(f"{action.name}: {exc}") from exc

        # Simultaneous effects: stage all right-hand sides, then write.
        staged: list[tuple[str, EffectKind, float, str]] = []
        for assign, (gvar, kind) in zip(action.effects, action.effect_targets):
            try:
                rhs = (
                    compile_float(assign.expr)(env)
                    if compiled
                    else eval_float(assign.expr, env)
                )
            except EvalError as exc:
                raise ExecutionError(f"{action.name}: {exc}") from exc
            staged.append((gvar, kind, rhs, assign.op))

        outputs: dict[str, float] = {}
        for gvar, kind, rhs, op in staged:
            if kind is EffectKind.CONSUME:
                values[gvar] = values.get(gvar, 0.0) - rhs
                if values[gvar] < -_EPS:
                    raise ExecutionError(
                        f"{action.name}: overdraws {gvar} by {-values[gvar]:g}"
                    )
                values[gvar] = max(values[gvar], 0.0)
            elif kind is EffectKind.SET_RESOURCE:
                current = values.get(gvar, 0.0)
                if op == ":=":
                    values[gvar] = rhs
                elif op == "+=":
                    values[gvar] = current + rhs
                else:
                    values[gvar] = current - rhs
            else:
                values[gvar] = rhs
            outputs[gvar] = values[gvar]

        try:
            if action.cost_ast is None:
                cost = 1.0
            elif compiled:
                cost = compile_float(action.cost_ast)(env)
            else:
                cost = eval_float(action.cost_ast, env)
        except EvalError as exc:
            raise ExecutionError(f"{action.name}: cost formula: {exc}") from exc
        report.steps.append(ExecutionStep(action, inputs, outputs, cost))
        report.total_cost += cost

    report.final_values = values
    for gvar, before in baseline.items():
        after = values.get(gvar, before)
        if after < before - _EPS:
            report.consumed[gvar] = before - after
    return report


def _is_resource_var(spec_var: str) -> bool:
    return spec_var.startswith("Node.") or spec_var.startswith("Link.")
