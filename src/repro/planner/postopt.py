"""Post-processing utilization optimizer (paper §2.3).

The original Sekitei "attempted to achieve [resource minimization] with a
post-processing step, but this is not enough" — it can shrink how much
data a fixed plan pushes, but it cannot change the plan's *structure*
(which components, which routes), which is where the real savings are.
This module implements that post-processor so the paper's argument can be
measured: given a feasible plan, find the smallest source-throttle factor
that still satisfies every goal condition, by bisection over exact
re-executions.

Throttling works by capping each action's committed input intervals at a
fraction of their original caps; because all specification functions are
monotone and the streams are degradable, scaling down never breaks
resource feasibility — only goal conditions (minimum bandwidth) bound the
shrink from below.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..compile import CompiledProblem, GroundAction
from ..intervals import Interval
from ..obs import Telemetry, maybe_span
from .errors import ExecutionError
from .executor import ExecutionReport, execute_plan

__all__ = ["PostOptResult", "post_optimize"]


@dataclass
class PostOptResult:
    """Outcome of post-optimization."""

    throttle: float  # chosen utilization factor in (0, 1]
    original_cost: float
    optimized_cost: float
    original_report: ExecutionReport
    optimized_report: ExecutionReport
    optimized_actions: list[GroundAction]

    @property
    def saving(self) -> float:
        return self.original_cost - self.optimized_cost


def _throttled_actions(actions: list[GroundAction], factor: float) -> list[GroundAction]:
    """Copies of ``actions`` with stream-input caps scaled by ``factor``.

    Only the committed upper ends move; resource entries and lower ends
    are left alone (a lower end above the scaled cap simply clamps to it —
    the executor's level-floor check uses the committed interval, so we
    rebuild it as ``[0, factor * hi]`` to express pure throttling).
    """
    out = []
    for action in actions:
        committed = {}
        for spec_var, iv in action.committed.items():
            if spec_var.startswith(("Node.", "Link.")) or math.isinf(iv.hi):
                committed[spec_var] = iv
            else:
                committed[spec_var] = Interval.closed(0.0, iv.hi * factor)
        clone = replace_action(action, committed)
        out.append(clone)
    return out


def replace_action(action: GroundAction, committed: dict[str, Interval]) -> GroundAction:
    """A shallow copy of a ground action with different committed intervals."""
    return GroundAction(
        index=action.index,
        name=action.name,
        kind=action.kind,
        subject=action.subject,
        node=action.node,
        src=action.src,
        dst=action.dst,
        pre_props=action.pre_props,
        add_props=action.add_props,
        primary_adds=action.primary_adds,
        cost_lb=action.cost_lb,
        cost_ast=action.cost_ast,
        var_map=action.var_map,
        seeds=action.seeds,
        conditions=action.conditions,
        effects=action.effects,
        effect_targets=action.effect_targets,
        committed=committed,
    )


def post_optimize(
    problem: CompiledProblem,
    actions: list[GroundAction],
    tolerance: float = 1e-3,
    max_iterations: int = 40,
    telemetry: Telemetry | None = None,
) -> PostOptResult:
    """Shrink a plan's utilization to the cheapest feasible throttle.

    Bisects the throttle factor in ``(0, 1]``: a factor is feasible when
    the throttled plan still executes exactly (all goal conditions hold).
    Costs are monotone in pushed bandwidth, so the minimal feasible factor
    is the cheapest.  With ``telemetry``, the bisection is wrapped in a
    ``postopt`` span and each re-execution counts under
    ``postopt.attempts``.

    Raises
    ------
    ExecutionError
        If the *unthrottled* plan does not execute — post-optimization
        only makes sense for feasible plans.
    """
    with maybe_span(telemetry, "postopt", actions=len(actions)) as span:
        original_report = execute_plan(problem, actions)

        def attempt(factor: float):
            if telemetry is not None:
                telemetry.metrics.inc("postopt.attempts")
            try:
                throttled = _throttled_actions(actions, factor)
                return throttled, execute_plan(problem, throttled)
            except ExecutionError:
                return None

        lo, hi = 0.0, 1.0
        best_actions, best_report = actions, original_report
        best_factor = 1.0
        for _ in range(max_iterations):
            if hi - lo <= tolerance:
                break
            mid = (lo + hi) / 2
            result = attempt(mid)
            if result is None:
                lo = mid
            else:
                hi = mid
                best_actions, best_report = result
                best_factor = mid

        if span is not None:
            span.attrs.update(
                throttle=round(best_factor, 6),
                original_cost=original_report.total_cost,
                optimized_cost=best_report.total_cost,
            )
        return PostOptResult(
            throttle=best_factor,
            original_cost=original_report.total_cost,
            optimized_cost=best_report.total_cost,
            original_report=original_report,
            optimized_report=best_report,
            optimized_actions=list(best_actions),
        )
