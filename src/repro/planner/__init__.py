"""The leveled Sekitei planner: PLRG, SLRG, RG phases and the facade."""

from .adaptation import (
    Deployment,
    RepairResult,
    repair_by_names,
    repair_deployment,
    surviving_prefix,
)
from .deadline import Deadline
from .delta import (
    StitchedDeployment,
    fold_prefix,
    parse_stream_var,
    placements_of_names,
    stitch_plan,
)
from .errors import (
    DeadlineExceeded,
    ExecutionError,
    PlanningError,
    ResourceInfeasible,
    SearchBudgetExceeded,
    Unsolvable,
)
from .executor import ExecutionReport, ExecutionStep, PlanExecutor, execute_plan
from .plan import Plan
from .planner import Heuristic, Planner, PlannerConfig, solve
from .plrg import PLRG, build_plrg
from .postopt import PostOptResult, post_optimize
from .rg import RGResult, regression_search
from .robust import RUNGS, RungAttempt, SolveOutcome, coarsen_leveling, solve_robust
from .slrg import SLRG
from .stats import PlannerStats
from .trace import SearchTrace, TraceEvent

__all__ = [
    "PlanningError",
    "Unsolvable",
    "ResourceInfeasible",
    "SearchBudgetExceeded",
    "DeadlineExceeded",
    "Deadline",
    "ExecutionError",
    "ExecutionReport",
    "ExecutionStep",
    "PlanExecutor",
    "execute_plan",
    "Plan",
    "Planner",
    "PlannerConfig",
    "Heuristic",
    "solve",
    "PLRG",
    "build_plrg",
    "SLRG",
    "RGResult",
    "regression_search",
    "PlannerStats",
    "Deployment",
    "RepairResult",
    "repair_deployment",
    "repair_by_names",
    "surviving_prefix",
    "StitchedDeployment",
    "stitch_plan",
    "fold_prefix",
    "parse_stream_var",
    "placements_of_names",
    "PostOptResult",
    "post_optimize",
    "RUNGS",
    "RungAttempt",
    "SolveOutcome",
    "coarsen_leveling",
    "solve_robust",
    "SearchTrace",
    "TraceEvent",
    "HierarchyConfig",
    "HierarchyOutcome",
    "solve_hierarchical",
]

_HIERARCHY_EXPORTS = ("HierarchyConfig", "HierarchyOutcome", "solve_hierarchical")


def __getattr__(name: str):
    # Lazy re-export: repro.hierarchy imports repro.planner, so importing
    # it eagerly here would be a cycle.
    if name in _HIERARCHY_EXPORTS:
        from .. import hierarchy

        return getattr(hierarchy, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
