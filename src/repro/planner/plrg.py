"""Phase 1 — the per-proposition logical regression graph (paper §3.2.1).

The PLRG estimates the minimum logical cost of achieving each proposition
from the initial state, ignoring resource restrictions and most action
interactions (level pruning has already happened at compile time).  Its
estimates are admissible lower bounds and seed the later phases.

Construction is split into the two passes the paper describes:

* a **backward relevance pass** from the goal identifies the proposition
  and action nodes that can appear in any plan (the PLRG's node sets —
  Table 2 reports their counts);
* a **forward cost pass** (a Dijkstra-flavoured fixpoint over the relevant
  actions) computes each proposition's cost as
  ``min over achievers of [action cost + max over preconditions]`` —
  exactly the paper's "cost of a proposition node is the minimum of the
  costs of supporting actions, and the cost of an action node the maximum
  cost of its preconditions".
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from ..compile import CompiledProblem
from ..obs import Telemetry, maybe_span
from .deadline import Deadline
from .errors import DeadlineExceeded, Unsolvable

__all__ = ["PLRG", "build_plrg"]

_INF = math.inf


@dataclass
class PLRG:
    """Result of phase 1."""

    prop_cost: dict[int, float]  # proposition id -> admissible cost bound
    relevant_props: frozenset[int]
    relevant_actions: frozenset[int]  # action indices
    usable_actions: tuple[int, ...]  # relevant AND forward-reachable
    prop_nodes: int  # graph-size statistics (Table 2, column 6)
    action_nodes: int

    def cost(self, pid: int) -> float:
        return self.prop_cost.get(pid, _INF)

    def set_cost(self, props) -> float:
        """hmax over a set of propositions (admissible)."""
        best = 0.0
        for pid in props:
            c = self.prop_cost.get(pid, _INF)
            if c > best:
                best = c
                if c == _INF:
                    break
        return best


def build_plrg(
    problem: CompiledProblem,
    telemetry: Telemetry | None = None,
    deadline: Deadline | None = None,
    exclude_actions: frozenset[int] = frozenset(),
) -> PLRG:
    """Build the PLRG; raises :class:`Unsolvable` if the goal is logically
    unreachable from the initial state.  With ``telemetry``, the build is
    wrapped in a ``plrg`` span and the graph sizes become gauges.  With a
    ``deadline``, both passes poll it and raise :class:`DeadlineExceeded`
    (phase ``"plrg"``) on expiry — the PLRG has no meaningful partial
    result, so there is no anytime mode here.  ``exclude_actions`` removes
    statically refuted actions (:mod:`repro.analysis`) before relevance:
    they can never fire, so no plan — and no admissible bound — loses
    support."""
    with maybe_span(telemetry, "plrg") as span:
        relevant_props, relevant_actions = _relevance(problem, deadline, exclude_actions)
        prop_cost = _forward_costs(problem, relevant_actions, deadline)

        unreachable = [pid for pid in problem.goal_prop_ids if prop_cost.get(pid, _INF) == _INF]
        if unreachable:
            names = ", ".join(problem.prop_str(p) for p in unreachable)
            raise Unsolvable(f"goal propositions logically unreachable: {names}")

        usable = tuple(
            a_idx
            for a_idx in sorted(relevant_actions)
            if all(prop_cost.get(p, _INF) < _INF for p in problem.actions[a_idx].pre_props)
        )
        if span is not None:
            span.attrs.update(
                prop_nodes=len(relevant_props),
                action_nodes=len(relevant_actions),
                usable_actions=len(usable),
            )
            telemetry.metrics.set_gauge("plrg.prop_nodes", len(relevant_props))
            telemetry.metrics.set_gauge("plrg.action_nodes", len(relevant_actions))
        return PLRG(
            prop_cost=prop_cost,
            relevant_props=frozenset(relevant_props),
            relevant_actions=frozenset(relevant_actions),
            usable_actions=usable,
            prop_nodes=len(relevant_props),
            action_nodes=len(relevant_actions),
        )


def _check(deadline: Deadline | None, expanded: int) -> None:
    if deadline is not None and deadline.poll():
        raise DeadlineExceeded(
            phase="plrg",
            time_limit_s=deadline.time_limit_s,
            nodes_expanded=expanded,
            elapsed_s=deadline.elapsed_s(),
        )


def _relevance(
    problem: CompiledProblem,
    deadline: Deadline | None = None,
    exclude_actions: frozenset[int] = frozenset(),
) -> tuple[set[int], set[int]]:
    """Backward pass: props/actions reachable (in regression) from the goal."""
    relevant_props: set[int] = set()
    relevant_actions: set[int] = set()
    stack = list(problem.goal_prop_ids)
    while stack:
        _check(deadline, len(relevant_props))
        pid = stack.pop()
        if pid in relevant_props:
            continue
        relevant_props.add(pid)
        if pid in problem.initial_prop_ids:
            continue
        for a_idx in problem.achievers.get(pid, ()):
            if a_idx in relevant_actions or a_idx in exclude_actions:
                continue
            relevant_actions.add(a_idx)
            for pre in problem.actions[a_idx].pre_props:
                if pre not in relevant_props:
                    stack.append(pre)
    return relevant_props, relevant_actions


def _forward_costs(
    problem: CompiledProblem,
    relevant_actions: set[int],
    deadline: Deadline | None = None,
) -> dict[int, float]:
    """Dijkstra over propositions with hmax action aggregation."""
    prop_cost: dict[int, float] = {pid: 0.0 for pid in problem.initial_prop_ids}

    # For each action, count of preconditions not yet priced; actions with
    # all preconditions priced become applicable at cost lb + max(pre).
    waiting: dict[int, int] = {}
    watchers: dict[int, list[int]] = {}
    for a_idx in relevant_actions:
        action = problem.actions[a_idx]
        missing = 0
        for pre in action.pre_props:
            if pre not in prop_cost:
                missing += 1
                watchers.setdefault(pre, []).append(a_idx)
        waiting[a_idx] = missing

    heap: list[tuple[float, int]] = [(0.0, pid) for pid in problem.initial_prop_ids]
    heapq.heapify(heap)
    settled: set[int] = set()

    def fire(a_idx: int) -> None:
        action = problem.actions[a_idx]
        base = 0.0
        for pre in action.pre_props:
            c = prop_cost[pre]
            if c > base:
                base = c
        total = base + action.cost_lb
        for add in action.add_props:
            old = prop_cost.get(add, _INF)
            if total < old:
                prop_cost[add] = total
                heapq.heappush(heap, (total, add))

    for a_idx in relevant_actions:
        if waiting[a_idx] == 0:
            fire(a_idx)

    while heap:
        _check(deadline, len(settled))
        cost, pid = heapq.heappop(heap)
        if pid in settled or cost > prop_cost.get(pid, _INF):
            continue
        settled.add(pid)
        for a_idx in watchers.get(pid, ()):
            waiting[a_idx] -= 1
            if waiting[a_idx] == 0:
                fire(a_idx)

    return prop_cost
