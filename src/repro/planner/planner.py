"""The leveled Sekitei planner facade.

Runs the three phases of §3.2 — PLRG (per-proposition costs), SLRG (set
costs), RG (resource-aware regression A*) — over a compiled problem and
returns a validated, cost-optimized :class:`Plan`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..hierarchy import HierarchyConfig

from ..compile import CompiledProblem, compile_problem
from ..model import AppSpec, Leveling
from ..network import Network
from ..obs import Telemetry, maybe_span
from .deadline import Deadline
from .errors import DeadlineExceeded, ExecutionError, ResourceInfeasible, Unsolvable
from .executor import execute_plan
from .plan import Plan
from .plrg import build_plrg
from .rg import regression_search
from .slrg import SLRG
from .stats import PlannerStats
from .trace import SearchTrace

__all__ = ["Heuristic", "PlannerConfig", "Planner"]


class Heuristic(Enum):
    """RG heuristic choice (the paper uses SLRG; the rest are ablations)."""

    SLRG = "slrg"
    PLRG_MAX = "plrg-max"
    BLIND = "blind"


@dataclass
class PlannerConfig:
    """Knobs for one planner run.

    Attributes
    ----------
    leveling:
        The resource-level assignment (Table 1 scenario).  ``None`` uses
        the application's inline level declarations (Fig. 6 style); an
        empty leveling reproduces the original greedy Sekitei.
    heuristic:
        RG guidance: the paper's SLRG, the PLRG ``hmax`` bound, or blind
        (uniform-cost) search.
    slrg_node_budget / rg_node_budget:
        Safety bounds on the search phases.
    time_limit_s / phase_time_limit_s:
        Wall-clock deadlines (docs/ROBUSTNESS.md).  ``time_limit_s``
        bounds the whole :meth:`Planner.solve` call (measured from entry,
        so internal compilation counts against it); ``phase_time_limit_s``
        additionally bounds each search phase.  The PLRG/SLRG/RG loops
        poll the deadline with strided clock reads; on expiry the planner
        returns the anytime incumbent (see ``anytime``) or raises
        :class:`DeadlineExceeded`.
    anytime:
        Whether exhaustion (deadline or RG node budget) may return the
        best-so-far *incumbent* complete plan — flagged via
        ``Plan.incumbent`` — instead of raising.  ``None`` (default)
        enables anytime mode exactly when a time limit is set, keeping
        budget-only runs strict; ``True``/``False`` force it.
    validate:
        When true (default), the returned plan has been executed exactly
        and a failure raises :class:`ExecutionError` instead of returning
        an invalid plan.
    bound_overrides:
        Optional static property-bound overrides for non-converging apps.
    strict:
        Run the spec linter (:mod:`repro.lint`) before compiling and
        refuse — with a :class:`~repro.model.SpecError` listing every
        finding — when it reports errors.
    """

    leveling: Leveling | None = None
    heuristic: Heuristic = Heuristic.SLRG
    slrg_node_budget: int = 50_000
    rg_node_budget: int = 500_000
    time_limit_s: float | None = None
    phase_time_limit_s: float | None = None
    anytime: bool | None = None
    validate: bool = True
    strict: bool = False
    bound_overrides: dict[str, float] = field(default_factory=dict)
    trace: bool = False
    """Record a bounded RG search trace on the returned plan
    (``plan.trace``): node creations, expansions, prunes with reasons."""
    telemetry: Telemetry | None = None
    """Full observability (see :mod:`repro.obs` and docs/OBSERVABILITY.md):
    phase spans, the metrics registry, and a per-run search trace.  ``None``
    (the default) disables every hook; the guarded hot paths then cost
    nothing beyond a handful of ``is not None`` checks."""
    branch_all_props: bool = True
    """RG branching rule: True (default) regresses achievers of every open
    proposition — the paper's rule, required for optimality when one action
    (e.g. the Splitter) must cover several open subgoals at once.  False
    regresses only the hardest open proposition: faster, complete for
    feasibility on chain-structured problems, but may return suboptimal
    plans when multi-output components feed parallel branches."""
    hierarchy: "HierarchyConfig | None" = None
    """Hierarchical domain decomposition (:mod:`repro.hierarchy`,
    docs/ALGORITHM.md): when set and :meth:`Planner.solve` is given an
    ``app`` and a transit-stub ``network``, the solve partitions the
    network into stub domains, plans the backbone over an abstracted
    network, fans the per-domain subproblems out, and stitches — falling
    back to flat planning whenever any stage misses.  ``None`` (default)
    always plans flat.  Ignored when a pre-compiled ``problem`` is
    passed (the compiled problem already fixed its scope)."""
    static_prune: str | None = None
    """Certified static pruning (:mod:`repro.analysis`, docs/ANALYSIS.md):
    ``None``/``"off"`` disables it; ``"dead"`` excludes provably unfirable
    ground actions before the PLRG; ``"symmetry"`` enables the RG's
    verified symmetry sibling prune; ``"full"`` enables both.  Plan cost
    is preserved exactly in every mode (the differential audit asserts
    this over all bundled domains).  Reuses ``problem.analysis`` when the
    problem was compiled with ``analyze=True`` (e.g. via the warm-start
    compile cache); otherwise the analysis runs inline and is counted in
    ``stats.analysis_ms``, never in search time."""


class Planner:
    """Resource-aware, cost-optimizing CPP planner (leveled Sekitei)."""

    def __init__(self, config: PlannerConfig | None = None):
        self.config = config or PlannerConfig()

    def compile(self, app: AppSpec, network: Network) -> CompiledProblem:
        """Compile only (exposed for inspection and benchmarks)."""
        return compile_problem(
            app,
            network,
            self.config.leveling,
            self.config.bound_overrides or None,
            strict=self.config.strict,
        )

    def solve(
        self,
        app: AppSpec | None = None,
        network: Network | None = None,
        problem: CompiledProblem | None = None,
    ) -> Plan:
        """Find a cost-optimal (w.r.t. level lower bounds) deployment plan.

        Either pass ``app`` and ``network``, or a pre-compiled ``problem``.

        Raises
        ------
        Unsolvable
            The goal is logically unreachable.
        ResourceInfeasible
            Logically reachable but no plan survives resource constraints
            (the greedy planner's Scenario 1 failure).
        SearchBudgetExceeded
            A phase exceeded its node budget (and anytime mode had no
            incumbent to return).
        DeadlineExceeded
            A wall-clock limit expired (and anytime mode had no incumbent
            to return); carries the phase, elapsed time, and node counts.
        ExecutionError
            Validation of the found plan failed (indicates a planner bug;
            never expected).
        """
        tele = self.config.telemetry
        if self.config.hierarchy is not None and problem is None:
            if app is None or network is None:
                raise ValueError("pass either problem= or both app= and network=")
            # Lazy import: repro.hierarchy imports repro.planner.
            from ..hierarchy import solve_hierarchical

            outcome = solve_hierarchical(
                app,
                network,
                config=self.config.hierarchy,
                planner_config=self.config,
                telemetry=tele,
            )
            assert outcome.plan is not None  # the flat rung raised otherwise
            return outcome.plan
        # The total deadline is anchored at entry, so internal compilation
        # counts against time_limit_s even though only the search loops
        # poll the clock (docs/ROBUSTNESS.md).
        total_deadline = (
            Deadline.after(self.config.time_limit_s)
            if self.config.time_limit_s is not None
            else None
        )
        allow_incumbent = (
            self.config.anytime
            if self.config.anytime is not None
            else total_deadline is not None or self.config.phase_time_limit_s is not None
        )

        def phase_deadline() -> Deadline | None:
            """Tightest of the total and a fresh per-phase deadline."""
            if self.config.phase_time_limit_s is None:
                return total_deadline
            return Deadline.after(self.config.phase_time_limit_s).tightest(total_deadline)

        # Per-run observability state is reset up front, so reusing one
        # Planner (or one Telemetry) across solve() calls never leaks a
        # previous run's trace events or stat gauges into this one.
        if tele is not None:
            search_trace = tele.begin_run()
            if search_trace is None and self.config.trace:
                search_trace = SearchTrace()
        else:
            search_trace = SearchTrace() if self.config.trace else None

        if problem is None:
            if app is None or network is None:
                raise ValueError("pass either problem= or both app= and network=")
            with maybe_span(tele, "compile", app=app.name, network=network.name) as sp:
                problem = self.compile(app, network)
                if sp is not None:
                    sp.attrs["actions"] = len(problem.actions)

        with maybe_span(
            tele,
            "plan.solve",
            app=problem.app.name,
            network=problem.network.name,
            leveling=problem.leveling.name,
        ) as solve_span:
            # The clock starts *after* compilation so total_ms is search-only
            # on both call paths; compile time is reported once, as compile_ms.
            t_start = time.perf_counter()
            stats = PlannerStats(
                total_actions=len(problem.actions),
                compile_ms=problem.compile_seconds * 1e3,
            )

            mode = self.config.static_prune
            if mode not in (None, "off", "dead", "symmetry", "full"):
                raise ValueError(
                    f"static_prune must be one of off/dead/symmetry/full, got {mode!r}"
                )
            dead_actions: frozenset[int] = frozenset()
            sym_hints = None
            if mode in ("dead", "symmetry", "full"):
                analysis = problem.analysis
                if analysis is None:
                    # Lazy import: repro.analysis imports repro.compile.
                    from ..analysis import analyze_problem

                    with maybe_span(tele, "analysis"):
                        analysis = analyze_problem(problem)
                    problem.analysis = analysis
                if mode in ("dead", "full"):
                    dead_actions = analysis.dead_indices()
                if mode in ("symmetry", "full"):
                    sym_hints = analysis.hints
                stats.static_pruned = len(dead_actions)
                stats.analysis_ms = analysis.analysis_seconds * 1e3
                if tele is not None:
                    m = tele.metrics
                    m.counter("analysis.dead_actions").inc(len(dead_actions))
                    m.set_gauge(
                        "analysis.sym.classes", len(analysis.symmetry.node_classes)
                    )
                    m.set_gauge(
                        "analysis.envelope.tightened", analysis.envelopes.bounded
                    )
                    m.set_gauge("analysis.ms", analysis.analysis_seconds * 1e3)
                    class_hist = m.histogram("analysis.sym.class_size")
                    for cls in analysis.symmetry.node_classes:
                        class_hist.observe(len(cls.members))

            try:
                t0 = time.perf_counter()
                try:
                    plrg = build_plrg(
                        problem,
                        telemetry=tele,
                        deadline=phase_deadline(),
                        exclude_actions=dead_actions,
                    )
                except Unsolvable:
                    if problem.logically_solvable:
                        # The goal has logical support, but best-value reachability
                        # pruning removed it: a resource conflict, not a modelling
                        # gap (the greedy Scenario 1 failure, detected statically).
                        from ..compile import diagnose

                        detail = str(diagnose(problem))
                        raise ResourceInfeasible(
                            "goal unreachable under best-case resource propagation "
                            f"({problem.reachability_pruned} actions pruned)\n{detail}"
                        ) from None
                    raise
                stats.plrg_ms = (time.perf_counter() - t0) * 1e3
                stats.plrg_prop_nodes = plrg.prop_nodes
                stats.plrg_action_nodes = plrg.action_nodes

                slrg = SLRG(
                    problem,
                    plrg,
                    node_budget=self.config.slrg_node_budget,
                    telemetry=tele,
                    deadline=phase_deadline(),
                )
                t0 = time.perf_counter()
                with maybe_span(tele, "slrg", heuristic=self.config.heuristic.value):
                    if self.config.heuristic is Heuristic.SLRG:
                        # Phase 2 proper: price the goal set, warming the cache.
                        slrg.query(frozenset(problem.goal_prop_ids))
                        heuristic = slrg.query
                    elif self.config.heuristic is Heuristic.PLRG_MAX:
                        heuristic = plrg.set_cost
                    else:
                        heuristic = lambda props: 0.0  # noqa: E731 - blind search
                stats.slrg_ms = (time.perf_counter() - t0) * 1e3

                t0 = time.perf_counter()
                # SLRG queries issued from inside the RG loop observe the
                # RG phase's deadline, not the (already spent) SLRG one.
                rg_deadline = phase_deadline()
                slrg.deadline = rg_deadline
                with maybe_span(tele, "rg", node_budget=self.config.rg_node_budget) as rg_span:
                    result = regression_search(
                        problem,
                        heuristic,
                        plrg.usable_actions,
                        node_budget=self.config.rg_node_budget,
                        branch_all_props=self.config.branch_all_props,
                        prop_rank=plrg.cost,
                        trace=search_trace,
                        metrics=tele.metrics if tele is not None else None,
                        deadline=rg_deadline,
                        allow_incumbent=allow_incumbent,
                        symmetry=sym_hints,
                    )
                    if rg_span is not None:
                        rg_span.attrs.update(
                            nodes_created=result.nodes_created,
                            nodes_expanded=result.nodes_expanded,
                            queue_left=result.nodes_left_in_queue,
                        )
            except DeadlineExceeded as exc:
                if tele is not None:
                    tele.metrics.inc("planner.deadline.hit")
                    tele.metrics.inc(f"planner.deadline.{exc.phase}")
                raise
            stats.rg_ms = (time.perf_counter() - t0) * 1e3
            stats.slrg_set_nodes = slrg.nodes_created
            stats.rg_nodes = result.nodes_created
            stats.rg_queue_left = result.nodes_left_in_queue
            stats.rg_expanded = result.nodes_expanded
            stats.rg_replays = result.replay.replays
            stats.rg_actions_replayed = result.replay.actions_replayed
            stats.rg_conditions_checked = result.replay.conditions_checked
            stats.rg_sym_pruned = result.symmetry_pruned
            stats.incumbent = 1 if result.incumbent else 0
            stats.deadline_hits = 1 if result.stop_reason == "deadline" else 0
            stats.total_ms = (time.perf_counter() - t_start) * 1e3
            if result.incumbent and tele is not None:
                tele.metrics.inc("planner.incumbent.returned")
                if result.stop_reason == "deadline":
                    tele.metrics.inc("planner.deadline.hit")
                    tele.metrics.inc("planner.deadline.rg")

            plan = Plan(
                problem=problem,
                actions=result.plan_actions,
                cost_lb=result.cost_lb,
                stats=stats,
                trace=search_trace,
                incumbent=result.incumbent,
                stop_reason=result.stop_reason,
            )
            if tele is not None:
                stats.publish(tele.metrics)
                tele.metrics.set_gauge("slrg.nodes_created", slrg.nodes_created)
                if solve_span is not None:
                    solve_span.attrs.update(
                        cost_lb=result.cost_lb, plan_actions=len(plan.actions)
                    )
            if self.config.validate:
                try:
                    execute_plan(problem, plan.actions, telemetry=tele)
                except ExecutionError as exc:
                    raise ExecutionError(
                        f"planner produced an invalid plan ({exc}); this is a bug"
                    ) from exc
            return plan


def solve(
    app: AppSpec,
    network: Network,
    leveling: Leveling | None = None,
    **config_kwargs,
) -> Plan:
    """One-call convenience wrapper around :class:`Planner`."""
    return Planner(PlannerConfig(leveling=leveling, **config_kwargs)).solve(app, network)


__all__.append("solve")
