"""Ground leveled planning actions.

A :class:`GroundAction` is one fully instantiated ``place`` or ``cross``
action with a committed level choice for every leveled variable it
mentions (paper §3.1 "leveled actions").  Besides the logical precondition
/ add-effect sets (interned proposition ids), each action carries its
*replay program*: the optimistic-interval seeds, conditions, and effect
assignments needed to re-execute a plan tail inside a resource map
(paper §3.2.3, Fig. 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from ..expr import Assign, Node, apply_assign_interval, condition_satisfiable
from ..intervals import Interval, MapContradiction, ResourceMap

__all__ = ["EffectKind", "GroundAction", "ReplayFailure", "iface_prop_var", "node_res_var", "link_res_var"]

_EPS = 1e-9


def iface_prop_var(prop: str, iface: str, node: str) -> str:
    """Ground variable for an interface property at a node."""
    return f"{prop}:{iface}@{node}"


def node_res_var(res: str, node: str) -> str:
    """Ground variable for a node resource."""
    return f"{res}@{node}"


def link_res_var(res: str, a: str, b: str) -> str:
    """Ground variable for a link resource (canonical endpoint order)."""
    lo, hi = (a, b) if a <= b else (b, a)
    return f"{res}@{lo}~{hi}"


class EffectKind(Enum):
    """How an effect assignment's result is written into a resource map."""

    PRODUCE = "produce"                      # plain interface property
    PRODUCE_DEGRADABLE = "produce_degradable"  # store the down-closure [0, hi]
    PRODUCE_UPGRADABLE = "produce_upgradable"  # store the up-closure [lo, inf)
    CONSUME = "consume"                      # ``-=`` on a consumable resource
    SET_RESOURCE = "set_resource"            # ``:=``/``+=`` on a resource


class ReplayFailure(Exception):
    """A plan tail failed to execute in the optimistic resource map."""

    def __init__(self, action: "GroundAction", reason: str):
        super().__init__(f"replay of {action.name} failed: {reason}")
        self.action = action
        self.reason = reason


@dataclass(slots=True)
class GroundAction:
    """One leveled, grounded planning action."""

    index: int
    name: str
    kind: str  # 'place' | 'cross'
    subject: str  # component name (place) or interface name (cross)
    node: str | None = None  # placement node
    src: str | None = None  # crossing source
    dst: str | None = None  # crossing destination
    # -- logical layer (interned proposition ids) --
    pre_props: frozenset[int] = frozenset()
    add_props: frozenset[int] = frozenset()
    primary_adds: tuple[int, ...] = ()
    # -- cost --
    cost_lb: float = 0.0
    cost_ast: Node | None = None
    # -- replay program --
    var_map: dict[str, str] = field(default_factory=dict)  # spec var -> ground var
    seeds: tuple[tuple[str, Interval], ...] = ()
    conditions: tuple[Node, ...] = ()
    effects: tuple[Assign, ...] = ()
    effect_targets: tuple[tuple[str, EffectKind], ...] = ()
    committed: dict[str, Interval] = field(default_factory=dict)  # spec var -> level interval

    def __str__(self) -> str:
        return self.name

    # -- replay ---------------------------------------------------------------

    def replay(self, rmap: ResourceMap) -> None:
        """Execute this action inside ``rmap`` (mutating it).

        Raises :class:`ReplayFailure` when an optimistic-interval
        intersection empties, a condition becomes unsatisfiable, or a
        consumable resource is overdrawn in the worst case.
        """
        try:
            for var, iv in self.seeds:
                rmap.constrain(var, iv)
        except MapContradiction as exc:
            raise ReplayFailure(self, str(exc)) from None

        env: dict[str, Interval] = {}
        for spec_var, ground_var in self.var_map.items():
            got = rmap.get(ground_var)
            if got is not None:
                env[spec_var] = got

        for cond in self.conditions:
            if not condition_satisfiable(cond, env):
                raise ReplayFailure(self, f"condition {cond.unparse()} unsatisfiable")

        # Simultaneous effect semantics: all right-hand sides read the
        # pre-state env, then targets are written.
        staged: list[tuple[str, EffectKind, Interval]] = []
        for assign, (gvar, ekind) in zip(self.effects, self.effect_targets):
            iv = apply_assign_interval(assign, env)
            staged.append((gvar, ekind, iv))

        for gvar, ekind, iv in staged:
            if ekind is EffectKind.CONSUME:
                if iv.lo < -_EPS:
                    raise ReplayFailure(
                        self, f"worst-case overdraw of {gvar}: remaining {iv}"
                    )
                rmap.set(gvar, Interval(max(iv.lo, 0.0), iv.hi, False, iv.hi_open))
            elif ekind is EffectKind.PRODUCE_DEGRADABLE:
                rmap.set(gvar, Interval(0.0, iv.hi, False, iv.hi_open))
            elif ekind is EffectKind.PRODUCE_UPGRADABLE:
                rmap.set(gvar, Interval(iv.lo, math.inf, iv.lo_open, True))
            else:
                if iv.is_empty():
                    raise ReplayFailure(self, f"effect on {gvar} produced empty interval")
                rmap.set(gvar, iv)
