"""Ground leveled planning actions.

A :class:`GroundAction` is one fully instantiated ``place`` or ``cross``
action with a committed level choice for every leveled variable it
mentions (paper §3.1 "leveled actions").  Besides the logical precondition
/ add-effect sets (interned proposition ids), each action carries its
*replay program*: the optimistic-interval seeds, conditions, and effect
assignments needed to re-execute a plan tail inside a resource map
(paper §3.2.3, Fig. 8).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from ..expr import (
    Assign,
    Node,
    apply_assign_interval,
    compile_assign_interval,
    compile_condition_satisfiable,
    condition_satisfiable,
    substitute,
    variables,
)
from ..intervals import Interval, MapContradiction, ResourceMap

__all__ = [
    "EffectKind",
    "GroundAction",
    "ReplayFailure",
    "ReplayCounters",
    "replay_backend",
    "set_replay_backend",
    "use_replay_backend",
    "iface_prop_var",
    "node_res_var",
    "link_res_var",
]

_EPS = 1e-9

_BACKENDS = ("compiled", "interpreted")
_backend = "compiled"


def replay_backend() -> str:
    """The active replay evaluation backend (``compiled`` | ``interpreted``)."""
    return _backend


def set_replay_backend(mode: str) -> str:
    """Select how replay and execution evaluate formulas; returns the
    previous mode.

    ``compiled`` (the default) uses the closures built at grounding time;
    ``interpreted`` walks the ASTs through :mod:`repro.expr.evaluator` —
    the reference semantics, kept selectable for differential testing and
    benchmarking.
    """
    global _backend
    if mode not in _BACKENDS:
        raise ValueError(f"unknown replay backend {mode!r}; choose from {_BACKENDS}")
    previous = _backend
    _backend = mode
    return previous


@contextmanager
def use_replay_backend(mode: str):
    """Context manager form of :func:`set_replay_backend`."""
    previous = set_replay_backend(mode)
    try:
        yield
    finally:
        set_replay_backend(previous)


@dataclass(slots=True)
class ReplayCounters:
    """Replay work accounting for one search (surfaced in PlannerStats).

    ``replays`` counts whole-tail replays (one per candidate RG node),
    ``actions_replayed`` counts individual action executions inside them,
    and ``conditions_checked`` counts condition satisfiability tests.
    """

    replays: int = 0
    actions_replayed: int = 0
    conditions_checked: int = 0


def iface_prop_var(prop: str, iface: str, node: str) -> str:
    """Ground variable for an interface property at a node."""
    return f"{prop}:{iface}@{node}"


def node_res_var(res: str, node: str) -> str:
    """Ground variable for a node resource."""
    return f"{res}@{node}"


def link_res_var(res: str, a: str, b: str) -> str:
    """Ground variable for a link resource (canonical endpoint order)."""
    lo, hi = (a, b) if a <= b else (b, a)
    return f"{res}@{lo}~{hi}"


class EffectKind(Enum):
    """How an effect assignment's result is written into a resource map."""

    PRODUCE = "produce"                      # plain interface property
    PRODUCE_DEGRADABLE = "produce_degradable"  # store the down-closure [0, hi]
    PRODUCE_UPGRADABLE = "produce_upgradable"  # store the up-closure [lo, inf)
    CONSUME = "consume"                      # ``-=`` on a consumable resource
    SET_RESOURCE = "set_resource"            # ``:=``/``+=`` on a resource


class ReplayFailure(Exception):
    """A plan tail failed to execute in the optimistic resource map."""

    def __init__(self, action: "GroundAction", reason: str):
        super().__init__(f"replay of {action.name} failed: {reason}")
        self.action = action
        self.reason = reason


@dataclass(slots=True)
class GroundAction:
    """One leveled, grounded planning action."""

    index: int
    name: str
    kind: str  # 'place' | 'cross'
    subject: str  # component name (place) or interface name (cross)
    node: str | None = None  # placement node
    src: str | None = None  # crossing source
    dst: str | None = None  # crossing destination
    # -- logical layer (interned proposition ids) --
    pre_props: frozenset[int] = frozenset()
    add_props: frozenset[int] = frozenset()
    primary_adds: tuple[int, ...] = ()
    # -- cost --
    cost_lb: float = 0.0
    cost_ast: Node | None = None
    # -- replay program --
    var_map: dict[str, str] = field(default_factory=dict)  # spec var -> ground var
    seeds: tuple[tuple[str, Interval], ...] = ()
    conditions: tuple[Node, ...] = ()
    effects: tuple[Assign, ...] = ()
    effect_targets: tuple[tuple[str, EffectKind], ...] = ()
    committed: dict[str, Interval] = field(default_factory=dict)  # spec var -> level interval
    # Replay program precomputed at grounding time: closures compiled once
    # (expr.compile memoizes per distinct formula, so structurally equal
    # actions share them) and zipped with their AST/target so the replay
    # loop iterates one flat tuple instead of re-zipping per call.
    _cond_prog: tuple[tuple[Node, Callable], ...] = field(default=(), repr=False)
    _effect_prog: tuple[tuple[Callable, str, "EffectKind"], ...] = field(
        default=(), repr=False
    )
    _var_items: tuple[tuple[str, str], ...] = field(default=(), repr=False)

    def __post_init__(self) -> None:
        # Compiled closures are built over *ground*-substituted copies of
        # the formulas, so replay can hand them the resource map's backing
        # dict as the environment directly — no per-action spec-var env to
        # assemble.  The original ASTs are kept alongside for failure
        # messages (spec-var text) and the interpreted reference backend.
        # expr.compile memoizes per distinct AST, so actions sharing a
        # formula *and* a variable mapping share one closure.
        sub = self.var_map
        self._cond_prog = tuple(
            (c, compile_condition_satisfiable(substitute(c, sub)))
            for c in self.conditions
        )
        self._effect_prog = tuple(
            (compile_assign_interval(substitute(a, sub)), gvar, ekind)
            for a, (gvar, ekind) in zip(self.effects, self.effect_targets)
        )
        # The interpreted backend still evaluates spec-named ASTs; only
        # variables some replay formula actually *reads* need to enter its
        # environment (``var_map`` also carries output-only mappings).
        read_vars: set[str] = set()
        for c in self.conditions:
            read_vars |= variables(c)
        for a in self.effects:
            read_vars |= variables(a.expr)
            if a.op != ":=":
                read_vars.add(a.target.name)
        self._var_items = tuple(
            (sv, gv) for sv, gv in self.var_map.items() if sv in read_vars
        )

    def __str__(self) -> str:
        return self.name

    # -- pickling / cloning ---------------------------------------------------

    _DERIVED_SLOTS = ("_cond_prog", "_effect_prog", "_var_items")

    def __getstate__(self):
        """Pickle without the compiled closures (they are rebuilt on load).

        The replay program's closures close over ground-substituted ASTs
        and are not picklable; everything needed to rebuild them travels in
        the declarative fields, so a worker process can receive a compiled
        problem and :meth:`__setstate__` restores full replay capability.
        """
        state = {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in self._DERIVED_SLOTS
        }
        return state

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)
        self.__post_init__()

    def clone(self) -> "GroundAction":
        """A mutable copy sharing the (immutable) replay program.

        Unlike ``copy.copy`` — which round-trips through
        :meth:`__getstate__` and re-derives the compiled closures — this
        copies every slot directly, so forking a compiled problem with
        thousands of actions costs microseconds per action, not a formula
        recompilation.  The closure tuples are immutable and safely shared;
        mutable containers that callers overwrite in place (``var_map``,
        ``committed``) are copied.
        """
        dup = object.__new__(GroundAction)
        for slot in self.__slots__:
            object.__setattr__(dup, slot, getattr(self, slot))
        dup.var_map = dict(self.var_map)
        dup.committed = dict(self.committed)
        return dup

    # -- replay ---------------------------------------------------------------

    def replay(self, rmap: ResourceMap, counters: ReplayCounters | None = None) -> None:
        """Execute this action inside ``rmap`` (mutating it).

        Raises :class:`ReplayFailure` when an optimistic-interval
        intersection empties, a condition becomes unsatisfiable, or a
        consumable resource is overdrawn in the worst case.
        """
        try:
            for var, iv in self.seeds:
                rmap.constrain(var, iv)
        except MapContradiction as exc:
            raise ReplayFailure(self, str(exc)) from None

        if counters is not None:
            counters.actions_replayed += 1
            counters.conditions_checked += len(self.conditions)

        # Simultaneous effect semantics: all right-hand sides read the
        # pre-state, then targets are written.
        staged: list[tuple[str, EffectKind, Interval]]
        if _backend == "compiled":
            # Ground-substituted closures read the map's backing dict
            # directly; staging keeps every read ahead of the write-back.
            env = rmap._vars
            for cond, cond_fn in self._cond_prog:
                if not cond_fn(env):
                    raise ReplayFailure(self, f"condition {cond.unparse()} unsatisfiable")
            staged = [
                (gvar, ekind, effect_fn(env))
                for effect_fn, gvar, ekind in self._effect_prog
            ]
        else:
            env = {}
            rmap_get = rmap._vars.get
            for spec_var, ground_var in self._var_items:
                got = rmap_get(ground_var)
                if got is not None:
                    env[spec_var] = got
            for cond in self.conditions:
                if not condition_satisfiable(cond, env):
                    raise ReplayFailure(self, f"condition {cond.unparse()} unsatisfiable")
            staged = [
                (gvar, ekind, apply_assign_interval(assign, env))
                for assign, (gvar, ekind) in zip(self.effects, self.effect_targets)
            ]

        for gvar, ekind, iv in staged:
            # Each closure/consume branch rebuilds the interval only when a
            # bound actually changes; reusing ``iv`` is exact (Interval is
            # immutable) and skips the dominant allocation of the replay loop.
            if ekind is EffectKind.CONSUME:
                if iv.lo < -_EPS:
                    raise ReplayFailure(
                        self, f"worst-case overdraw of {gvar}: remaining {iv}"
                    )
                if iv.lo >= 0.0 and not iv.lo_open:
                    rmap.set(gvar, iv)
                else:
                    rmap.set(gvar, Interval(max(iv.lo, 0.0), iv.hi, False, iv.hi_open))
            elif ekind is EffectKind.PRODUCE_DEGRADABLE:
                if iv.lo == 0.0 and not iv.lo_open:
                    rmap.set(gvar, iv)
                else:
                    rmap.set(gvar, Interval(0.0, iv.hi, False, iv.hi_open))
            elif ekind is EffectKind.PRODUCE_UPGRADABLE:
                if iv.hi == math.inf:
                    rmap.set(gvar, iv)
                else:
                    rmap.set(gvar, Interval(iv.lo, math.inf, iv.lo_open, True))
            else:
                if iv.is_empty():
                    raise ReplayFailure(self, f"effect on {gvar} produced empty interval")
                rmap.set(gvar, iv)
