"""Best-value reachability pruning.

A cheap static analysis run after grounding: propagate, per ground
interface-property variable, the *best value optimistically achievable*
from the pre-placed sources — ignoring resource sharing and consumption,
which only lower values.  An action whose committed input intervals or
conditions cannot be satisfied even at these best values can never appear
in a plan and is pruned.

This is what lets the planner *prove* greedy (scenario A) infeasibility
instantly instead of exhausting the regression space: with the trivial
leveling, the Client's ``M.ibw >= 90`` condition is unsatisfiable once the
best deliverable value at its node is capped at 70 by the WAN links, so
the Client has no ground placements at all and the goal is unreachable.
The paper attributes exactly this effect to leveling — "identification of
some resource conflicts at earlier (and cheaper) phases of the search" —
and the analysis strengthens it to the unleveled case.

The analysis is sound (never prunes an action that some valid plan uses):
values are upper bounds, and all specification functions are monotone.
"""

from __future__ import annotations

import math

from ..expr import EvalError, condition_satisfiable, eval_interval
from ..intervals import Interval
from .actions import EffectKind, GroundAction

__all__ = ["prune_unreachable_actions", "logically_reachable"]

_MAX_PASSES = 50


def _input_vars(action: GroundAction) -> list[tuple[str, str, Interval]]:
    """(spec var, ground var, committed interval) for stream inputs."""
    out = []
    for spec_var, gvar in action.var_map.items():
        committed = action.committed.get(spec_var)
        if committed is None or spec_var.startswith(("Node.", "Link.")):
            continue
        out.append((spec_var, gvar, committed))
    return out


def _try_action(
    action: GroundAction, best: dict[str, float]
) -> dict[str, float] | None:
    """Best output values of ``action`` under ``best``; None if infeasible."""
    env: dict[str, Interval] = {}
    for spec_var, gvar, committed in _input_vars(action):
        avail = best.get(gvar)
        if avail is None:
            return None  # input stream not (yet) reachable here
        if committed.lo > avail + 1e-9:
            return None  # committed level above anything achievable
        clipped = committed.intersect(Interval.closed(0.0, avail))
        if clipped.is_empty():
            return None
        env[spec_var] = clipped
    # Resources enter at their static grounding ranges.
    for spec_var, committed in action.committed.items():
        if spec_var.startswith(("Node.", "Link.")):
            env[spec_var] = committed

    try:
        for cond in action.conditions:
            if not condition_satisfiable(cond, env):
                return None
    except EvalError:
        return None  # unresolvable (e.g. unregistered function): keep out

    produced: dict[str, float] = {}
    for assign, (gvar, kind) in zip(action.effects, action.effect_targets):
        if kind not in (
            EffectKind.PRODUCE,
            EffectKind.PRODUCE_DEGRADABLE,
            EffectKind.PRODUCE_UPGRADABLE,
        ):
            continue
        try:
            iv = eval_interval(assign.expr, env)
        except EvalError:
            return None
        produced[gvar] = iv.hi
    return produced


def prune_unreachable_actions(
    actions: list[GroundAction],
    initial_stream_values: dict[str, float],
) -> tuple[list[GroundAction], list[GroundAction]]:
    """Fixed-point best-value propagation; returns (kept, pruned) actions.

    ``initial_stream_values`` maps ground stream variables produced by
    pre-placed components to their exact values.

    Implemented as a worklist: an action is (re-)evaluated only when the
    best value of one of its input variables improves, which keeps the
    fixed point near-linear in practice (this is the compile hotspot on
    the 93-node network).
    """
    best: dict[str, float] = dict(initial_stream_values)
    feasible: set[int] = set()

    # Dependents index: input ground var -> actions reading it.
    dependents: dict[str, list[GroundAction]] = {}
    for action in actions:
        for _spec, gvar, _iv in _input_vars(action):
            dependents.setdefault(gvar, []).append(action)

    from collections import deque

    queue: deque[GroundAction] = deque(actions)
    queued: set[int] = {a.index for a in actions}
    iterations = 0
    budget = len(actions) * _MAX_PASSES

    while queue:
        iterations += 1
        if iterations > budget:  # pragma: no cover - cyclic-amplifier guard
            break
        action = queue.popleft()
        queued.discard(action.index)
        outputs = _try_action(action, best)
        if outputs is None:
            continue
        feasible.add(action.index)
        for gvar, hi in outputs.items():
            if math.isnan(hi):
                continue
            if hi > best.get(gvar, -math.inf) + 1e-9:
                best[gvar] = hi
                for dep in dependents.get(gvar, ()):
                    if dep.index not in queued:
                        queue.append(dep)
                        queued.add(dep.index)

    kept = [a for a in actions if a.index in feasible]
    removed = [a for a in actions if a.index not in feasible]
    for new_index, action in enumerate(kept):
        action.index = new_index
    return kept, removed


def logically_reachable(
    actions: list[GroundAction],
    initial_props: frozenset[int],
    goal_props: frozenset[int],
) -> bool:
    """Plain boolean reachability of the goal, ignoring all resources.

    Used to distinguish *logical* unsolvability from resource-caused
    infeasibility after reachability pruning has emptied the goal's
    support.
    """
    achieved = set(initial_props)
    remaining = list(actions)
    progress = True
    while progress and not goal_props <= achieved:
        progress = False
        still = []
        for action in remaining:
            if action.pre_props <= achieved:
                if not action.add_props <= achieved:
                    achieved |= action.add_props
                    progress = True
            else:
                still.append(action)
        remaining = still
    return goal_props <= achieved
