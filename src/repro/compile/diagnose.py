"""Human-readable infeasibility diagnosis.

When planning fails, "ResourceInfeasible" alone doesn't tell an operator
*what* to fix.  This module re-examines the compiled problem — including
the actions removed by best-value reachability pruning — and produces
concrete explanations: which goal placements were pruned, which condition
failed, and what the best achievable value of the offending stream was.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..expr import condition_satisfiable, variables
from ..intervals import Interval
from .actions import GroundAction
from .problem import CompiledProblem
from .reachability import _input_vars, _try_action

__all__ = ["Diagnosis", "diagnose"]


@dataclass
class Diagnosis:
    """Explanation of why a problem (or one goal) cannot be solved."""

    findings: list[str]

    def __str__(self) -> str:
        if not self.findings:
            return "no infeasibility found at the static level"
        return "\n".join(f"- {f}" for f in self.findings)


def _best_values(problem: CompiledProblem) -> dict[str, float]:
    """Recompute the best-value fixed point over the *kept* actions."""
    from collections import deque

    best: dict[str, float] = {}
    for iface, node, value, _d, _u, prop in problem._initial_streams:
        from .actions import iface_prop_var

        best[iface_prop_var(prop, iface, node)] = value

    queue = deque(problem.actions)
    guard = len(problem.actions) * 60 + 100
    while queue and guard:
        guard -= 1
        action = queue.popleft()
        outputs = _try_action(action, best)
        if outputs is None:
            continue
        for gvar, hi in outputs.items():
            if hi > best.get(gvar, float("-inf")) + 1e-9:
                best[gvar] = hi
                queue.extend(problem.actions)
                break
    return best


def _explain_action(action: GroundAction, best: dict[str, float]) -> str | None:
    """Why this action is unusable under the best-value map, or None."""
    env: dict[str, Interval] = {}
    for spec_var, gvar, committed in _input_vars(action):
        avail = best.get(gvar)
        if avail is None:
            return (
                f"{action.name}: input stream {gvar} is unreachable from any "
                f"pre-placed source"
            )
        if committed.lo > avail + 1e-9:
            return (
                f"{action.name}: committed level needs at least "
                f"{committed.lo:g} of {gvar}, but at most {avail:g} can reach it"
            )
        env[spec_var] = committed.intersect(Interval.closed(0.0, avail))
    for spec_var, committed in action.committed.items():
        if spec_var.startswith(("Node.", "Link.")):
            env[spec_var] = committed
    for cond in action.conditions:
        try:
            ok = condition_satisfiable(cond, env)
        except Exception:  # pragma: no cover - unresolved function etc.
            return f"{action.name}: condition {cond.unparse()} cannot be evaluated"
        if not ok:
            involved = sorted(variables(cond))
            values = ", ".join(
                f"{v}∈{env[v]!r}" for v in involved if v in env
            )
            return (
                f"{action.name}: condition {cond.unparse()} unsatisfiable "
                f"({values})"
            )
    return None


def diagnose(problem: CompiledProblem) -> Diagnosis:
    """Explain why the goal has no support, if it doesn't.

    Reports, per goal placement, either "supported" or the concrete
    reasons every candidate placement action is unusable.  Useful after a
    ``ResourceInfeasible`` (the RG-level variant — resource exhaustion
    along every plan — is inherently dynamic and is reported by the
    search itself).
    """
    findings: list[str] = []
    best = _best_values(problem)
    for pid in sorted(problem.goal_prop_ids):
        achievers = problem.achievers.get(pid, [])
        goal_str = problem.prop_str(pid)
        if achievers:
            findings.append(f"goal {goal_str}: supported by {len(achievers)} action(s)")
            continue
        prop = problem.props[pid]
        comp = getattr(prop, "component", None)
        candidates = [
            a
            for a in _all_candidate_actions(problem, comp)
            if comp is not None
        ]
        if not candidates:
            findings.append(
                f"goal {goal_str}: no placement actions were ever grounded "
                "(check pins, software constraints, and level feasibility)"
            )
            continue
        findings.append(f"goal {goal_str}: all {len(candidates)} placements pruned:")
        for action in candidates:
            reason = _explain_action(action, best)
            findings.append(
                f"  {reason if reason else action.name + ': usable, but its support chain is broken upstream'}"
            )
    return Diagnosis(findings)


def _all_candidate_actions(problem: CompiledProblem, component: str | None):
    """Placement actions for ``component`` among kept + pruned actions."""
    pool = list(problem.actions) + list(getattr(problem, "pruned_actions", []) or [])
    return [a for a in pool if a.kind == "place" and a.subject == component]
