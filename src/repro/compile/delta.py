"""Delta-aware compilation: patch a compiled problem across a network diff.

Fault campaigns and fleet controllers recompile the *same* application
against a stream of slightly different networks — one link degraded, one
node's CPU jittered, one link failed and later recovered.  A full
compilation re-grounds every (component × node) and (interface × edge)
group even though a single-element event touches a handful of them.

:func:`patch_problem` instead starts from a previously compiled base
problem and

1. re-grounds **only** the groups whose network element changed (a
   restricted :class:`~repro.compile.grounding.Grounder` sharing the
   base's proposition table);
2. splices the kept base groups and the fresh groups back together in
   canonical grounding order (components in app order × nodes in network
   order, then interfaces × directed edges), using the base's recorded
   pre-prune order to restore the exact interleave;
3. rebuilds the initial state exactly and re-runs the global
   reachability analyses (logical solvability and best-value pruning)
   over the spliced action set.

The result is *equivalent* to a fresh :func:`~repro.compile.compile_problem`
of the same triple: identical ground actions — same names, same order,
same committed intervals, costs, and replay programs — and identical
initial/goal state, differing only in proposition-id numbering (ids are
interned into the shared base table and never serialized).  Step 3 is
what keeps the patch *sound* rather than merely fast: property bounds
and best-value pruning are global fixpoints, so the patch verifies the
bounds are unchanged (else it refuses) and re-runs the cheap pruning
fixpoint rather than trusting the base's.

``patch_problem`` returns ``None`` whenever it cannot certify
equivalence — an unpatchable delta (node set, labels, software), or
property bounds that shifted with the network's capacity maxima — and
the caller (:meth:`repro.parallel.CompileCache.compile_delta`) falls
back to a full compilation.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from ..model.validation import require_valid
from .actions import GroundAction, iface_prop_var
from .bounds import compute_property_bounds
from .grounding import Grounder
from .problem import CompiledProblem, _build_initial_state
from .propositions import PlacedProp
from .reachability import logically_reachable, prune_unreachable_actions

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a package cycle
    from ..network import Network
    from ..parallel.fingerprint import NetworkDelta

__all__ = ["patch_problem"]


def _group_key(action: GroundAction) -> tuple:
    """The (kind, subject, location) group an action was emitted under."""
    if action.kind == "place":
        return ("place", action.subject, action.node)
    return ("cross", action.subject, action.src, action.dst)


def patch_problem(
    base: CompiledProblem,
    network: "Network",
    delta: "NetworkDelta",
    bound_overrides: dict[str, float] | None = None,
) -> CompiledProblem | None:
    """Compile ``base``'s app against ``network`` by patching, not re-grounding.

    ``base`` must be a mutation-safe copy (a :meth:`CompiledProblem.fork`
    — its kept actions are consumed into the patched problem and
    renumbered in place) compiled from the same app and leveling with
    the same ``bound_overrides``.  ``delta`` is the structured diff from
    ``base.network`` to ``network``
    (:func:`repro.parallel.fingerprint.network_delta`).

    Returns the patched problem, or ``None`` when equivalence cannot be
    certified (unpatchable delta, missing pre-prune order on the base,
    or changed property bounds) — the caller should fall back to a full
    compilation.

    Raises
    ------
    ValueError
        When the (app, network) pair is invalid — exactly as
        :func:`~repro.compile.compile_problem` would (e.g. the event
        partitioned the network).
    """
    t0 = time.perf_counter()
    if not delta.patchable or not base._ground_names:
        return None
    app, leveling = base.app, base.leveling

    require_valid(app, network)

    bounds = compute_property_bounds(app, network, bound_overrides)
    if bounds != base.bounds:
        # A capacity change moved a global property bound: level
        # feasibility (and thus every committed interval) may differ
        # everywhere, not just at the changed element.
        return None

    changed_nodes = frozenset(delta.changed_nodes)
    touched_links = delta.touched_links()

    # Re-ground only the touched groups, interning into the shared table
    # (interning is append-only, so base ids stay stable).
    props = base.props
    grounder = Grounder(app, network, leveling, bounds, props)
    initial_comps = {p.component for p in app.initial_placements}
    if changed_nodes:
        for comp in app.components.values():
            if comp.name in initial_comps:
                continue
            grounder._ground_component(comp, only_nodes=changed_nodes)
    if touched_links:
        for iface in app.interfaces.values():
            grounder._ground_interface(iface, only_links=touched_links)

    fresh_groups: dict[tuple, list[GroundAction]] = {}
    for action in grounder.actions:
        fresh_groups.setdefault(_group_key(action), []).append(action)

    # Base actions in their original pre-prune order (pruning renumbered
    # the kept ones; pruned ones are cloned because a fork shares them
    # with the pristine cache entry).
    order = {name: i for i, name in enumerate(base._ground_names)}
    base_all = list(base.actions) + [a.clone() for a in base.pruned_actions]
    base_all.sort(key=lambda a: order[a.name])
    base_groups: dict[tuple, list[GroundAction]] = {}
    for action in base_all:
        base_groups.setdefault(_group_key(action), []).append(action)

    # Splice in canonical grounding order over the *new* network.
    spliced: list[GroundAction] = []
    for comp in app.components.values():
        if comp.name in initial_comps:
            continue
        candidate_nodes = [
            n.id for n in network.nodes.values() if n.allows(comp.name)
        ]
        for node_id in app.placeable_nodes(comp.name, candidate_nodes):
            groups = fresh_groups if node_id in changed_nodes else base_groups
            spliced.extend(groups.get(("place", comp.name, node_id), ()))
    for iface in app.interfaces.values():
        if not iface.cross_effects:
            continue
        for src, dst, link in network.directed_edges():
            groups = fresh_groups if link.key in touched_links else base_groups
            spliced.extend(groups.get(("cross", iface.name, src, dst), ()))

    for index, action in enumerate(spliced):
        action.index = index
    ground_names = tuple(a.name for a in spliced)

    initial_ids, initial_values, initial_streams = _build_initial_state(
        app, network, leveling, props
    )
    goal_ids = frozenset(
        props.intern(PlacedProp(p.component, p.node)) for p in app.goal_placements
    )
    logically_solvable = logically_reachable(spliced, initial_ids, goal_ids)

    stream_values = {
        iface_prop_var(prop, iface, node): value
        for iface, node, value, _deg, _upg, prop in initial_streams
    }
    actions, removed_actions = prune_unreachable_actions(spliced, stream_values)

    achievers: dict[int, list[int]] = {}
    for action in actions:
        for pid in action.add_props:
            achievers.setdefault(pid, []).append(action.index)

    problem = CompiledProblem(
        app=app,
        network=network,
        leveling=leveling,
        bounds=bounds,
        props=props,
        actions=actions,
        achievers=achievers,
        initial_prop_ids=initial_ids,
        goal_prop_ids=goal_ids,
        initial_values=initial_values,
        logically_solvable=logically_solvable,
        reachability_pruned=len(removed_actions),
        compile_seconds=time.perf_counter() - t0,
        compile_source="delta",
    )
    problem._initial_streams = initial_streams
    problem.pruned_actions = removed_actions
    problem._ground_names = ground_names
    return problem
