"""Compilation of CPP instances into leveled AI-planning problems."""

from .actions import (
    EffectKind,
    GroundAction,
    ReplayCounters,
    ReplayFailure,
    iface_prop_var,
    link_res_var,
    node_res_var,
    replay_backend,
    set_replay_backend,
    use_replay_backend,
)
from .bounds import compute_property_bounds, resource_capacity_bounds
from .delta import patch_problem
from .grounding import Grounder, PropTable
from .problem import CompiledProblem, compile_problem
from .propositions import AvailProp, PlacedProp, Prop, dominated_level_tuples
from .diagnose import Diagnosis, diagnose
from .reachability import logically_reachable, prune_unreachable_actions

__all__ = [
    "EffectKind",
    "GroundAction",
    "ReplayCounters",
    "ReplayFailure",
    "replay_backend",
    "set_replay_backend",
    "use_replay_backend",
    "iface_prop_var",
    "node_res_var",
    "link_res_var",
    "compute_property_bounds",
    "resource_capacity_bounds",
    "Grounder",
    "PropTable",
    "CompiledProblem",
    "compile_problem",
    "AvailProp",
    "PlacedProp",
    "Prop",
    "dominated_level_tuples",
    "prune_unreachable_actions",
    "logically_reachable",
    "patch_problem",
    "Diagnosis",
    "diagnose",
]
