"""Compiled planning problems.

:func:`compile_problem` turns an (app, network, leveling) triple into a
:class:`CompiledProblem`: interned propositions, leveled ground actions,
the initial state (logical closure + exact resource map), and the goal
set.  This is the input to every planner phase and to the baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..expr import EvalError, eval_float
from ..intervals import Interval, ResourceMap
from ..model import AppSpec, Leveling, SpecError
from ..model.validation import require_valid
from ..network import Network
from .actions import GroundAction, iface_prop_var, link_res_var, node_res_var
from .bounds import compute_property_bounds
from .grounding import Grounder, PropTable
from .propositions import AvailProp, PlacedProp, dominated_level_tuples
from .reachability import logically_reachable, prune_unreachable_actions

__all__ = ["CompiledProblem", "compile_problem"]


@dataclass
class CompiledProblem:
    """A fully grounded, leveled CPP planning problem."""

    app: AppSpec
    network: Network
    leveling: Leveling
    bounds: dict[str, float]
    props: PropTable
    actions: list[GroundAction]
    achievers: dict[int, list[int]]  # prop id -> indices of actions adding it
    initial_prop_ids: frozenset[int]
    goal_prop_ids: frozenset[int]
    initial_values: dict[str, float]  # exact initial ground-variable values
    logically_solvable: bool = True  # goal reachable ignoring resources
    reachability_pruned: int = 0  # actions removed by best-value propagation
    compile_seconds: float = 0.0
    compile_source: str = "fresh"
    """How this problem came to be: ``"fresh"`` (full compilation),
    ``"cache"`` (warm-start cache hit), or ``"delta"`` (patched from a
    cached base by :func:`repro.compile.delta.patch_problem`)."""
    _initial_map_cache: ResourceMap | None = field(default=None, repr=False)

    # -- queries ---------------------------------------------------------------

    def initial_map(self) -> ResourceMap:
        """A fresh copy of the initial optimistic resource map.

        Node/link resources enter as exact points; interface properties
        produced by pre-placed components enter as their degradability
        closure (a degradable stream available at 200 is usable at any
        demand up to 200).
        """
        if self._initial_map_cache is None:
            rmap = ResourceMap()
            for gvar, value in self.initial_values.items():
                rmap.set(gvar, Interval.point(value))
            for iface_name, node_id, value, degradable, upgradable, prop_name in self._initial_streams:
                gvar = iface_prop_var(prop_name, iface_name, node_id)
                if degradable:
                    rmap.set(gvar, Interval.closed(0.0, value))
                elif upgradable:
                    rmap.set(gvar, Interval(value, math.inf, False, True))
                else:
                    rmap.set(gvar, Interval.point(value))
            self._initial_map_cache = rmap
        return self._initial_map_cache.copy()

    def fork(self) -> "CompiledProblem":
        """A copy safe to hand to mutating consumers (repair, caching).

        Deployment repair rewrites the initial state and discounts action
        costs in place; a warm-start compile cache therefore never hands
        out its pristine instance directly.  Actions are cloned cheaply
        (sharing the immutable replay closures — see
        :meth:`~repro.compile.GroundAction.clone`), everything else that
        repair mutates is shallow-copied, and the expensive immutable
        structure (interned propositions, ASTs) is shared.
        """
        import copy as _copy

        dup = _copy.copy(self)
        dup.actions = [a.clone() for a in self.actions]
        dup.achievers = {pid: list(idxs) for pid, idxs in self.achievers.items()}
        dup.initial_values = dict(self.initial_values)
        dup._initial_streams = list(self._initial_streams)
        dup.pruned_actions = list(self.pruned_actions)
        dup._initial_map_cache = None
        return dup

    def prop_str(self, pid: int) -> str:
        return str(self.props[pid])

    def action_count(self) -> int:
        return len(self.actions)

    def holds_initially(self, pid: int) -> bool:
        return pid in self.initial_prop_ids

    # populated by compile_problem
    _initial_streams: list[tuple[str, str, float, bool, bool, str]] = field(default_factory=list)
    pruned_actions: list[GroundAction] = field(default_factory=list, repr=False)
    """Actions removed by best-value reachability pruning (kept for
    infeasibility diagnosis)."""
    _ground_names: tuple[str, ...] = field(default=(), repr=False)
    """Action names in pre-prune grounding order.  Reachability pruning
    renumbers the kept actions, losing the original interleave of kept
    and pruned; the delta-aware compile needs that order to splice
    re-grounded groups back in at exactly the canonical positions."""
    analysis: object | None = field(default=None, repr=False)
    """Static-analysis result (:class:`repro.analysis.AnalysisResult`) when
    compiled with ``analyze=True``, else ``None``.  The result holds no
    action references, so forks share it by reference (``fork()`` keeps
    it via the shallow copy) and a cache can reuse it across forks."""


def compile_problem(
    app: AppSpec,
    network: Network,
    leveling: Leveling | None = None,
    bound_overrides: dict[str, float] | None = None,
    strict: bool = False,
    analyze: bool = False,
) -> CompiledProblem:
    """Compile a CPP instance into a leveled planning problem.

    With ``strict=True`` the spec linter (:mod:`repro.lint`) runs first
    and any error-severity finding aborts compilation with a
    :class:`SpecError` listing every diagnostic.

    With ``analyze=True`` the static-analysis pass (:mod:`repro.analysis`)
    runs over the compiled problem and its result is attached as
    ``problem.analysis`` — envelope fixpoint, certified dead actions, and
    verified symmetry hints, ready for ``PlannerConfig(static_prune=...)``.
    Analysis time is *not* counted in ``compile_seconds``.

    Raises
    ------
    SpecError
        On malformed specifications (non-source initial placements,
        unbounded properties, formula scope violations), or on lint
        errors when ``strict`` is set.
    ValueError
        When the app and network are inconsistent (unknown pinned nodes,
        undeclared resources, disconnected network).
    """
    import time

    t0 = time.perf_counter()
    if strict:
        # Lazy import: repro.lint reuses compile.bounds, so importing it at
        # module scope would cycle.  Deep reachability is disabled — it
        # would recurse into this very compilation.
        from ..lint import LintOptions, require_lint_clean

        require_lint_clean(app, network, leveling, options=LintOptions(deep=False))
    require_valid(app, network)
    if leveling is None:
        leveling = app.default_leveling()

    bounds = compute_property_bounds(app, network, bound_overrides)
    props = PropTable()
    grounder = Grounder(app, network, leveling, bounds, props)
    actions = grounder.ground_all()
    ground_names = tuple(a.name for a in actions)

    initial_ids, initial_values, initial_streams = _build_initial_state(
        app, network, leveling, props
    )

    goal_ids = frozenset(
        props.intern(PlacedProp(p.component, p.node)) for p in app.goal_placements
    )

    # Logical solvability is judged before resource-aware pruning so the
    # planner can distinguish Unsolvable from ResourceInfeasible.
    logically_solvable = logically_reachable(actions, initial_ids, goal_ids)

    stream_values = {
        iface_prop_var(prop, iface, node): value
        for iface, node, value, _deg, _upg, prop in initial_streams
    }
    actions, removed_actions = prune_unreachable_actions(actions, stream_values)

    achievers: dict[int, list[int]] = {}
    for action in actions:
        for pid in action.add_props:
            achievers.setdefault(pid, []).append(action.index)

    problem = CompiledProblem(
        app=app,
        network=network,
        leveling=leveling,
        bounds=bounds,
        props=props,
        actions=actions,
        achievers=achievers,
        initial_prop_ids=initial_ids,
        goal_prop_ids=goal_ids,
        initial_values=initial_values,
        logically_solvable=logically_solvable,
        reachability_pruned=len(removed_actions),
        compile_seconds=time.perf_counter() - t0,
    )
    problem._initial_streams = initial_streams
    problem.pruned_actions = removed_actions
    problem._ground_names = ground_names
    if analyze:
        # Lazy import: repro.analysis imports this module.
        from ..analysis import analyze_problem

        problem.analysis = analyze_problem(problem)
    return problem


def _build_initial_state(
    app: AppSpec,
    network: Network,
    leveling: Leveling,
    props: PropTable,
) -> tuple[frozenset[int], dict[str, float], list]:
    """Execute the pre-placed components exactly and intern the results."""
    values: dict[str, float] = {}
    for decl in app.node_resources():
        for node in network.nodes.values():
            values[node_res_var(decl.name, node.id)] = node.capacity(decl.name)
    for decl in app.link_resources():
        for link in network.links.values():
            values[link_res_var(decl.name, link.a, link.b)] = link.capacity(decl.name)

    prop_ids: set[int] = set()
    streams: list[tuple[str, str, float, bool, bool, str]] = []

    for placement in app.initial_placements:
        comp = app.component(placement.component)
        if comp.requires:
            raise SpecError(
                f"initial placement of {comp.name} is not a source component; "
                "pre-placed components must not require interfaces"
            )
        node = network.node(placement.node)
        prop_ids.add(props.intern(PlacedProp(comp.name, placement.node)))

        env: dict[str, float] = {}
        for decl in app.node_resources():
            env[f"Node.{decl.name}"] = values[node_res_var(decl.name, node.id)]
        out_values: dict[str, float] = {}
        for assign in comp.effects:
            tgt = assign.target.name
            try:
                rhs = eval_float(assign.expr, env)
            except EvalError as exc:
                raise SpecError(f"initial placement of {comp.name}: {exc}") from exc
            if tgt.startswith("Node."):
                res_name = tgt.split(".", 1)[1]
                gvar = node_res_var(res_name, node.id)
                if assign.op == "-=":
                    values[gvar] -= rhs
                elif assign.op == "+=":
                    values[gvar] += rhs
                else:
                    values[gvar] = rhs
                if values[gvar] < -1e-9:
                    raise SpecError(
                        f"initial placement of {comp.name} on {node.id} overdraws "
                        f"{res_name} ({values[gvar]:.3f})"
                    )
            else:
                out_values[tgt] = rhs

        for iface_name in comp.implements:
            iface = app.interface(iface_name)
            leveled_props, level_idx, degr, upgr, counts = [], [], [], [], []
            for prop in iface.properties:
                var = iface.spec_var(prop.name)
                value = out_values.get(var)
                if value is None:
                    raise SpecError(
                        f"initial placement of {comp.name}: no value for {var}"
                    )
                spec = leveling.for_var(var)
                streams.append(
                    (
                        iface_name,
                        placement.node,
                        value,
                        iface.is_degradable(prop.name),
                        prop.upgradable,
                        prop.name,
                    )
                )
                if not spec.is_trivial():
                    leveled_props.append(prop.name)
                    level_idx.append(spec.classify_value(value))
                    degr.append(iface.is_degradable(prop.name))
                    upgr.append(prop.upgradable)
                    counts.append(spec.count)
            for tup in dominated_level_tuples(
                tuple(level_idx), tuple(degr), tuple(upgr), tuple(counts)
            ):
                prop_ids.add(props.intern(AvailProp(iface_name, placement.node, tup)))

    return frozenset(prop_ids), values, streams
