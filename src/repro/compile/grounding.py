"""Grounding and leveling: CPP specification → leveled planning actions.

This implements the compilation step of §3.1: every ``place`` / ``cross``
action template is instantiated over the network, then expanded with one
parameter per leveled variable it mentions.  Infeasible level combinations
are pruned statically:

* combinations whose conditions are existentially unsatisfiable over the
  committed level intervals (the Merger's rate-relation equality, the
  Client's bandwidth demand);
* placements whose worst-case resource consumption exceeds the node's
  total capacity (this is what makes the trivial leveling behave like the
  original greedy Sekitei — consumption is evaluated at the full static
  bound);
* crossings that merely degrade a degradable stream below their committed
  input level (the same output is reachable by committing the lower level
  directly, with no larger resource demand — the paper's "actions for
  crossing the link with the M stream with levels above 1 are pruned").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import Iterator

from ..expr import Node as ExprNode
from ..expr import (
    EvalError,
    compile_condition_satisfiable,
    compile_interval,
    variables,
)
from ..intervals import Interval
from ..model import AppSpec, ComponentSpec, InterfaceType, Leveling, LevelSpec, SpecError
from ..network import Network, ResourceScope
from .actions import (
    EffectKind,
    GroundAction,
    iface_prop_var,
    link_res_var,
    node_res_var,
)
from .propositions import AvailProp, PlacedProp, Prop, dominated_level_tuples

__all__ = ["Grounder", "PropTable"]

_EPS = 1e-9


class PropTable:
    """Interning table mapping propositions to dense integer ids."""

    __slots__ = ("props", "index")

    def __init__(self) -> None:
        self.props: list[Prop] = []
        self.index: dict[Prop, int] = {}

    def intern(self, prop: Prop) -> int:
        pid = self.index.get(prop)
        if pid is None:
            pid = len(self.props)
            self.props.append(prop)
            self.index[prop] = pid
        return pid

    def __len__(self) -> int:
        return len(self.props)

    def __getitem__(self, pid: int) -> Prop:
        return self.props[pid]


@dataclass(frozen=True, slots=True)
class _IfaceLevelInfo:
    """Per-interface leveling summary used throughout grounding."""

    leveled_props: tuple[str, ...]  # property names with non-trivial levels
    spec_vars: tuple[str, ...]  # matching "I.p" spec variables
    level_specs: tuple[LevelSpec, ...]
    degradable: tuple[bool, ...]
    upgradable: tuple[bool, ...]
    counts: tuple[int, ...]


class Grounder:
    """Grounds one (app, network, leveling) triple into leveled actions."""

    def __init__(
        self,
        app: AppSpec,
        network: Network,
        leveling: Leveling,
        bounds: dict[str, float],
        props: PropTable,
    ):
        self.app = app
        self.network = network
        self.leveling = leveling
        self.bounds = bounds
        self.props = props
        self.actions: list[GroundAction] = []
        self._iface_info: dict[str, _IfaceLevelInfo] = {
            name: self._build_iface_info(iface) for name, iface in app.interfaces.items()
        }
        self._validate_formulas()

    # ------------------------------------------------------------------ setup

    def _build_iface_info(self, iface: InterfaceType) -> _IfaceLevelInfo:
        leveled, svars, specs, deg, upg, counts = [], [], [], [], [], []
        for prop in iface.properties:
            var = iface.spec_var(prop.name)
            spec = self.leveling.for_var(var)
            if spec.is_trivial():
                continue
            leveled.append(prop.name)
            svars.append(var)
            specs.append(spec)
            deg.append(iface.is_degradable(prop.name))
            upg.append(prop.upgradable)
            counts.append(spec.count)
        return _IfaceLevelInfo(
            tuple(leveled), tuple(svars), tuple(specs), tuple(deg), tuple(upg), tuple(counts)
        )

    def _validate_formulas(self) -> None:
        """Compile-time restrictions beyond per-spec validation."""
        for comp in self.app.components.values():
            input_vars = self._iface_prop_vars(comp.requires)
            output_vars = self._iface_prop_vars(comp.implements)
            for cond in comp.conditions:
                bad = variables(cond) & output_vars
                if bad:
                    raise SpecError(
                        f"component {comp.name}: conditions may only reference required "
                        f"interfaces and Node.*, not outputs {sorted(bad)}"
                    )
            assigned_out: set[str] = set()
            for assign in comp.effects:
                if assign.target.primed:
                    raise SpecError(
                        f"component {comp.name}: primed targets are reserved for cross "
                        f"effects ({assign.unparse()})"
                    )
                tgt = assign.target.name
                if tgt in input_vars:
                    raise SpecError(
                        f"component {comp.name}: effects may not modify required-interface "
                        f"properties ({assign.unparse()})"
                    )
                rhs_bad = variables(assign.expr) & output_vars
                if rhs_bad:
                    raise SpecError(
                        f"component {comp.name}: effect right-hand sides may not read "
                        f"output properties {sorted(rhs_bad)}"
                    )
                if tgt in output_vars:
                    if assign.op != ":=":
                        raise SpecError(
                            f"component {comp.name}: output property {tgt} must be "
                            f"defined with ':=', not {assign.op!r}"
                        )
                    assigned_out.add(tgt)
            for iface_name in comp.implements:
                info = self._iface_info[iface_name]
                for var in info.spec_vars:
                    if var not in assigned_out:
                        raise SpecError(
                            f"component {comp.name}: leveled output property {var} is "
                            f"never assigned"
                        )
        for iface in self.app.interfaces.values():
            own_props = {iface.spec_var(p.name) for p in iface.properties}
            for assign in iface.cross_effects:
                tgt_name = assign.target.name
                if tgt_name in own_props and not assign.target.primed:
                    raise SpecError(
                        f"interface {iface.name}: cross effects on own properties must "
                        f"target the primed (post-crossing) variable ({assign.unparse()})"
                    )
                rhs_primed = [
                    v for v in variables(assign.expr) if v not in own_props and "." not in v
                ]
                del rhs_primed  # rhs primed use is impossible: parser strips primes on name

    def _iface_prop_vars(self, ifaces: tuple[str, ...]) -> set[str]:
        out: set[str] = set()
        for name in ifaces:
            iface = self.app.interface(name)
            out |= {iface.spec_var(p.name) for p in iface.properties}
        return out

    # ------------------------------------------------------------------ axes

    def _input_env_and_axes(
        self, ifaces: tuple[str, ...]
    ) -> tuple[dict[str, Interval], list[tuple[str, LevelSpec, list[int], float]]]:
        """Fixed env entries for unleveled input props + axes for leveled ones."""
        env: dict[str, Interval] = {}
        axes: list[tuple[str, LevelSpec, list[int], float]] = []
        for iface_name in ifaces:
            iface = self.app.interface(iface_name)
            info = self._iface_info[iface_name]
            for prop in iface.properties:
                var = iface.spec_var(prop.name)
                bound = self.bounds.get(var, math.inf)
                if prop.name in info.leveled_props:
                    spec = self.leveling.for_var(var)
                    axes.append((var, spec, spec.feasible_indices(bound), bound))
                else:
                    env[var] = Interval.closed(0.0, bound)
        return env, axes

    def _resource_axes(
        self,
        scope: ResourceScope,
        mentioned: set[str],
        capacity_of: dict[str, float],
    ) -> tuple[dict[str, Interval], list[tuple[str, LevelSpec, list[int], float]]]:
        """Env entries / axes for node or link resources.

        ``capacity_of`` maps resource name → capacity at the concrete
        node/link being grounded.
        """
        env: dict[str, Interval] = {}
        axes: list[tuple[str, LevelSpec, list[int], float]] = []
        prefix = "Node." if scope is ResourceScope.NODE else "Link."
        decls = (
            self.app.node_resources() if scope is ResourceScope.NODE else self.app.link_resources()
        )
        for decl in decls:
            var = prefix + decl.name
            if var not in mentioned:
                continue
            cap = capacity_of.get(decl.name, 0.0)
            spec = self.leveling.for_var(var)
            if spec.is_trivial():
                env[var] = Interval.closed(0.0, cap)
            else:
                axes.append((var, spec, spec.feasible_indices(cap), cap))
        return env, axes

    @staticmethod
    def _combos(
        axes: list[tuple[str, LevelSpec, list[int], float]]
    ) -> Iterator[dict[str, tuple[int, Interval]]]:
        """All level assignments over the axes: var → (index, interval)."""
        if not axes:
            yield {}
            return
        expanded = [
            [(var, idx, spec.interval(idx, bound)) for idx in indices]
            for var, spec, indices, bound in axes
        ]
        for choice in product(*expanded):
            yield {var: (idx, iv) for var, idx, iv in choice}

    # ------------------------------------------------------------------ place

    def ground_all(self) -> list[GroundAction]:
        """Ground every place and cross action; returns the action list."""
        initial_comps = {p.component for p in self.app.initial_placements}
        for comp in self.app.components.values():
            if comp.name in initial_comps:
                continue
            self._ground_component(comp)
        for iface in self.app.interfaces.values():
            self._ground_interface(iface)
        return self.actions

    def _ground_component(
        self, comp: ComponentSpec, only_nodes: frozenset[str] | None = None
    ) -> None:
        """Ground one component; ``only_nodes`` restricts the node domain.

        The restriction (used by the delta-aware compile to re-ground
        only changed nodes) filters *after* the placeable-node
        computation, so the surviving nodes keep their canonical order
        and every emitted action is byte-equivalent to its unrestricted
        counterpart.
        """
        mentioned: set[str] = set()
        for f in comp.all_formulas():
            mentioned |= variables(f)
        candidate_nodes = [
            n.id for n in self.network.nodes.values() if n.allows(comp.name)
        ]
        nodes = self.app.placeable_nodes(comp.name, candidate_nodes)
        if only_nodes is not None:
            nodes = [n for n in nodes if n in only_nodes]

        base_env, input_axes = self._input_env_and_axes(comp.requires)

        # Static results depend only on (level combo, node capacities); most
        # networks have a handful of distinct capacity profiles, so memoize.
        memo: dict[tuple, tuple | None] = {}

        for node_id in nodes:
            node = self.network.node(node_id)
            caps = {r.name: node.capacity(r.name) for r in self.app.node_resources()}
            res_env, res_axes = self._resource_axes(ResourceScope.NODE, mentioned, caps)
            cap_key = tuple(sorted(caps.items()))
            for combo in self._combos(input_axes + res_axes):
                combo_key = (cap_key, tuple(sorted((v, i) for v, (i, _) in combo.items())))
                cached = memo.get(combo_key, _MISSING)
                if cached is None:
                    continue  # statically pruned for this capacity profile
                if cached is _MISSING:
                    cached = self._evaluate_place_combo(comp, base_env, res_env, combo, caps)
                    memo[combo_key] = cached
                    if cached is None:
                        continue
                derived_levels, cost_lb, committed = cached
                self._emit_place(comp, node_id, combo, derived_levels, cost_lb, committed)

    def _evaluate_place_combo(
        self,
        comp: ComponentSpec,
        base_env: dict[str, Interval],
        res_env: dict[str, Interval],
        combo: dict[str, tuple[int, Interval]],
        caps: dict[str, float],
    ) -> tuple | None:
        """Static evaluation of one level combo; None when pruned."""
        env = dict(base_env)
        env.update(res_env)
        for var, (_idx, iv) in combo.items():
            if iv.is_empty():
                return None
            env[var] = iv

        try:
            for cond in comp.conditions:
                if not compile_condition_satisfiable(cond)(env):
                    return None
        except EvalError as exc:
            raise SpecError(f"component {comp.name}: {exc}") from exc

        derived_levels: dict[str, dict[str, int]] = {i: {} for i in comp.implements}
        out_intervals: dict[str, Interval] = {}
        for assign in comp.effects:
            tgt = assign.target.name
            rhs_iv = compile_interval(assign.expr)(env)
            if tgt.startswith("Node."):
                res_name = tgt.split(".", 1)[1]
                decl = self.app.resource(res_name)
                if assign.op == "-=" and decl.consumable:
                    cap = caps.get(res_name, 0.0)
                    if rhs_iv.hi > cap + _EPS:
                        return None  # worst-case consumption exceeds the node
            else:
                out_intervals[tgt] = rhs_iv

        for iface_name in comp.implements:
            info = self._iface_info[iface_name]
            for prop_name, var, spec in zip(info.leveled_props, info.spec_vars, info.level_specs):
                iv = out_intervals[var]
                bound = self.bounds.get(var, math.inf)
                clipped = Interval(iv.lo, min(iv.hi, bound), iv.lo_open, iv.hi_open and iv.hi <= bound)
                if clipped.is_empty():
                    return None
                derived_levels[iface_name][prop_name] = spec.classify_interval(clipped)

        cost_iv = compile_interval(comp.cost_expr())(env)
        cost_lb = max(cost_iv.lo, 0.0)
        committed = dict(env)
        return derived_levels, cost_lb, committed

    def _emit_place(
        self,
        comp: ComponentSpec,
        node_id: str,
        combo: dict[str, tuple[int, Interval]],
        derived_levels: dict[str, dict[str, int]],
        cost_lb: float,
        committed: dict[str, Interval],
    ) -> None:
        var_map: dict[str, str] = {}
        seeds: list[tuple[str, Interval]] = []

        pre_ids: set[int] = set()
        for iface_name in comp.requires:
            iface = self.app.interface(iface_name)
            info = self._iface_info[iface_name]
            levels = tuple(combo[v][0] for v in info.spec_vars)
            pre_ids.add(self.props.intern(AvailProp(iface_name, node_id, levels)))
            for prop in iface.properties:
                var = iface.spec_var(prop.name)
                gvar = iface_prop_var(prop.name, iface_name, node_id)
                var_map[var] = gvar
                seeds.append((gvar, committed[var]))

        for decl in self.app.node_resources():
            var = f"Node.{decl.name}"
            if var not in committed:
                continue
            gvar = node_res_var(decl.name, node_id)
            var_map[var] = gvar
            if var in combo:  # leveled resource: seed the availability check
                lo = combo[var][1].lo
                if decl.degradable:
                    seeds.append((gvar, Interval.at_least(lo)))
                else:
                    seeds.append((gvar, combo[var][1]))

        effects = []
        targets: list[tuple[str, EffectKind]] = []
        for assign in comp.effects:
            tgt = assign.target.name
            if tgt.startswith("Node."):
                res_name = tgt.split(".", 1)[1]
                decl = self.app.resource(res_name)
                gvar = node_res_var(res_name, node_id)
                var_map.setdefault(tgt, gvar)
                kind = (
                    EffectKind.CONSUME
                    if assign.op == "-=" and decl.consumable
                    else EffectKind.SET_RESOURCE
                )
            else:
                iface_name, prop_name = tgt.split(".", 1)
                iface = self.app.interface(iface_name)
                gvar = iface_prop_var(prop_name, iface_name, node_id)
                var_map.setdefault(tgt, gvar)
                if iface.is_degradable(prop_name):
                    kind = EffectKind.PRODUCE_DEGRADABLE
                elif iface.property_spec(prop_name).upgradable:
                    kind = EffectKind.PRODUCE_UPGRADABLE
                else:
                    kind = EffectKind.PRODUCE
            effects.append(assign)
            targets.append((gvar, kind))

        add_ids: set[int] = set()
        placed = self.props.intern(PlacedProp(comp.name, node_id))
        add_ids.add(placed)
        primary: list[int] = [placed]
        for iface_name in comp.implements:
            info = self._iface_info[iface_name]
            levels = tuple(derived_levels[iface_name][p] for p in info.leveled_props)
            main = self.props.intern(AvailProp(iface_name, node_id, levels))
            primary.append(main)
            for tup in dominated_level_tuples(levels, info.degradable, info.upgradable, info.counts):
                add_ids.add(self.props.intern(AvailProp(iface_name, node_id, tup)))

        annot = ",".join(f"{v}={i}" for v, (i, _) in sorted(combo.items()))
        name = f"place({comp.name},{node_id})" + (f"[{annot}]" if annot else "")
        self.actions.append(
            GroundAction(
                index=len(self.actions),
                name=name,
                kind="place",
                subject=comp.name,
                node=node_id,
                pre_props=frozenset(pre_ids),
                add_props=frozenset(add_ids),
                primary_adds=tuple(primary),
                cost_lb=cost_lb,
                cost_ast=comp.cost_expr(),
                var_map=var_map,
                seeds=tuple(seeds),
                conditions=comp.conditions,
                effects=tuple(effects),
                effect_targets=tuple(targets),
                committed=committed,
            )
        )

    # ------------------------------------------------------------------ cross

    def _ground_interface(
        self,
        iface: InterfaceType,
        only_links: frozenset[tuple[str, str]] | None = None,
    ) -> None:
        """Ground one interface's crossings; ``only_links`` restricts the
        edge domain to the given canonical link keys (both directions of
        each kept link, in their canonical iteration order)."""
        if not iface.cross_effects:
            return  # a non-transferable interface (e.g. a local-only service)
        mentioned: set[str] = set()
        formulas: list[ExprNode] = list(iface.cross_conditions) + list(iface.cross_effects)
        if iface.cross_cost is not None:
            formulas.append(iface.cross_cost)
        for f in formulas:
            mentioned |= variables(f)

        base_env, input_axes = self._input_env_and_axes((iface.name,))
        memo: dict[tuple, tuple | None] = {}

        for src, dst, link in self.network.directed_edges():
            if only_links is not None and link.key not in only_links:
                continue
            caps = {r.name: link.capacity(r.name) for r in self.app.link_resources()}
            res_env, res_axes = self._resource_axes(ResourceScope.LINK, mentioned, caps)
            cap_key = tuple(sorted(caps.items()))
            for combo in self._combos(input_axes + res_axes):
                combo_key = (cap_key, tuple(sorted((v, i) for v, (i, _) in combo.items())))
                cached = memo.get(combo_key, _MISSING)
                if cached is None:
                    continue
                if cached is _MISSING:
                    cached = self._evaluate_cross_combo(iface, base_env, res_env, combo, caps)
                    memo[combo_key] = cached
                    if cached is None:
                        continue
                derived_levels, cost_lb, committed = cached
                self._emit_cross(iface, src, dst, combo, derived_levels, cost_lb, committed)

    def _evaluate_cross_combo(
        self,
        iface: InterfaceType,
        base_env: dict[str, Interval],
        res_env: dict[str, Interval],
        combo: dict[str, tuple[int, Interval]],
        caps: dict[str, float],
    ) -> tuple | None:
        env = dict(base_env)
        env.update(res_env)
        for var, (_idx, iv) in combo.items():
            if iv.is_empty():
                return None
            env[var] = iv

        try:
            for cond in iface.cross_conditions:
                if not compile_condition_satisfiable(cond)(env):
                    return None
        except EvalError as exc:
            raise SpecError(f"interface {iface.name}: {exc}") from exc

        info = self._iface_info[iface.name]
        out_intervals: dict[str, Interval] = {}
        for assign in iface.cross_effects:
            tgt = assign.target.name
            rhs_iv = compile_interval(assign.expr)(env)
            if tgt.startswith("Link."):
                res_name = tgt.split(".", 1)[1]
                decl = self.app.resource(res_name)
                if assign.op == "-=" and decl.consumable:
                    cap = caps.get(res_name, 0.0)
                    if rhs_iv.lo > cap + _EPS:
                        return None  # even best-case consumption overdraws the link
            else:
                # Primed own-property target: the post-crossing value.
                out_intervals[tgt] = rhs_iv

        derived: dict[str, int] = {}
        for prop_name, var, spec in zip(info.leveled_props, info.spec_vars, info.level_specs):
            iv = out_intervals.get(var)
            if iv is None:
                # Property unchanged by crossing.
                derived[prop_name] = combo[var][0] if var in combo else 0
                continue
            bound = self.bounds.get(var, math.inf)
            clipped = Interval(iv.lo, min(iv.hi, bound), iv.lo_open, iv.hi_open and iv.hi <= bound)
            if clipped.is_empty():
                return None
            derived[prop_name] = spec.classify_interval(clipped)

        # Dominated-degradation prune: committing a high input level only to
        # deliver a lower one is subsumed by committing the lower level.
        if not iface.cross_conditions and info.leveled_props:
            inputs = [combo[v][0] for v in info.spec_vars]
            outs = [derived[p] for p in info.leveled_props]
            if all(o <= i for o, i in zip(outs, inputs)) and any(
                o < i for o, i in zip(outs, inputs)
            ):
                strict_ok = all(
                    deg
                    for o, i, deg in zip(outs, inputs, info.degradable)
                    if o < i
                )
                if strict_ok:
                    return None

        cost_expr = iface.cross_cost if iface.cross_cost is not None else _UNIT_COST
        cost_iv = compile_interval(cost_expr)(env)
        cost_lb = max(cost_iv.lo, 0.0)
        return derived, cost_lb, dict(env)

    def _emit_cross(
        self,
        iface: InterfaceType,
        src: str,
        dst: str,
        combo: dict[str, tuple[int, Interval]],
        derived: dict[str, int],
        cost_lb: float,
        committed: dict[str, Interval],
    ) -> None:
        info = self._iface_info[iface.name]
        var_map: dict[str, str] = {}
        seeds: list[tuple[str, Interval]] = []
        for prop in iface.properties:
            var = iface.spec_var(prop.name)
            gvar = iface_prop_var(prop.name, iface.name, src)
            var_map[var] = gvar
            seeds.append((gvar, committed[var]))
        for decl in self.app.link_resources():
            var = f"Link.{decl.name}"
            if var not in committed:
                continue
            gvar = link_res_var(decl.name, src, dst)
            var_map[var] = gvar
            if var in combo:
                lo = combo[var][1].lo
                if decl.degradable:
                    seeds.append((gvar, Interval.at_least(lo)))
                else:
                    seeds.append((gvar, combo[var][1]))

        effects = []
        targets: list[tuple[str, EffectKind]] = []
        for assign in iface.cross_effects:
            tgt = assign.target.name
            if tgt.startswith("Link."):
                res_name = tgt.split(".", 1)[1]
                decl = self.app.resource(res_name)
                gvar = link_res_var(res_name, src, dst)
                var_map.setdefault(tgt, gvar)
                kind = (
                    EffectKind.CONSUME
                    if assign.op == "-=" and decl.consumable
                    else EffectKind.SET_RESOURCE
                )
            else:
                _iname, prop_name = tgt.split(".", 1)
                gvar = iface_prop_var(prop_name, iface.name, dst)
                if iface.is_degradable(prop_name):
                    kind = EffectKind.PRODUCE_DEGRADABLE
                elif iface.property_spec(prop_name).upgradable:
                    kind = EffectKind.PRODUCE_UPGRADABLE
                else:
                    kind = EffectKind.PRODUCE
            effects.append(assign)
            targets.append((gvar, kind))

        in_levels = tuple(combo[v][0] for v in info.spec_vars)
        pre = self.props.intern(AvailProp(iface.name, src, in_levels))
        out_levels = tuple(derived[p] for p in info.leveled_props)
        add_ids: set[int] = set()
        main = self.props.intern(AvailProp(iface.name, dst, out_levels))
        for tup in dominated_level_tuples(out_levels, info.degradable, info.upgradable, info.counts):
            add_ids.add(self.props.intern(AvailProp(iface.name, dst, tup)))

        annot = ",".join(f"{v}={i}" for v, (i, _) in sorted(combo.items()))
        name = f"cross({iface.name},{src}->{dst})" + (f"[{annot}]" if annot else "")
        self.actions.append(
            GroundAction(
                index=len(self.actions),
                name=name,
                kind="cross",
                subject=iface.name,
                src=src,
                dst=dst,
                pre_props=frozenset((pre,)),
                add_props=frozenset(add_ids),
                primary_adds=(main,),
                cost_lb=cost_lb,
                cost_ast=iface.cross_cost if iface.cross_cost is not None else _UNIT_COST,
                var_map=var_map,
                seeds=tuple(seeds),
                conditions=iface.cross_conditions,
                effects=tuple(effects),
                effect_targets=tuple(targets),
                committed=committed,
            )
        )


from ..expr import Num as _Num  # noqa: E402  (tiny helper import)

_UNIT_COST = _Num(1.0)
_MISSING = object()
