"""Planning propositions.

The compiled planning problem uses two proposition families:

* ``Placed(component, node)`` — a component instance runs on a node;
* ``Avail(interface, node, levels)`` — a data stream is available at a
  node, with one level index per *leveled* property of the interface.

Degradable/upgradable matching is compiled away by closure: an action that
produces ``Avail(M, n, (3,))`` for a degradable property also adds the
dominated propositions ``Avail(M, n, (2,))`` … ``(0,)``, so precondition
matching is plain set membership everywhere downstream (PLRG, SLRG, RG).

Node and link resource levels never become propositions — they are "only
checked" (paper §3.2.2) through the optimistic-resource-map replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator

__all__ = ["PlacedProp", "AvailProp", "Prop", "dominated_level_tuples"]


@dataclass(frozen=True, slots=True)
class PlacedProp:
    component: str
    node: str

    def __str__(self) -> str:
        return f"placed({self.component},{self.node})"


@dataclass(frozen=True, slots=True)
class AvailProp:
    """Availability of an interface at a node at given property levels.

    ``levels`` holds one level index per leveled property, ordered by the
    interface's leveled-property name order (empty when no property of the
    interface is leveled).
    """

    interface: str
    node: str
    levels: tuple[int, ...] = ()

    def __str__(self) -> str:
        if not self.levels:
            return f"avail({self.interface},{self.node})"
        lv = ",".join(str(lv) for lv in self.levels)
        return f"avail({self.interface},{self.node},L={lv})"


Prop = PlacedProp | AvailProp


def dominated_level_tuples(
    levels: tuple[int, ...],
    degradable: tuple[bool, ...],
    upgradable: tuple[bool, ...],
    level_counts: tuple[int, ...],
) -> Iterator[tuple[int, ...]]:
    """All level tuples implied by availability at ``levels``.

    For each position: a degradable property at level ``l`` implies levels
    ``0..l``; an upgradable one implies ``l..max``; a plain one implies
    only ``l``.  Yields the full product, including ``levels`` itself.
    """
    axes: list[range] = []
    for lvl, deg, upg, count in zip(levels, degradable, upgradable, level_counts):
        if deg:
            axes.append(range(0, lvl + 1))
        elif upg:
            axes.append(range(lvl, count))
        else:
            axes.append(range(lvl, lvl + 1))
    if not axes:
        yield ()
        return
    yield from product(*axes)
