"""Static upper bounds on interface properties.

The trivial level of an unleveled variable is ``[0, ∞)``; evaluating
worst-case consumption at ``∞`` would prune everything.  The original
greedy Sekitei instead assumes *maximum utilization*: the most data any
source can emit.  This module computes that static bound per interface
property by a monotone fixed point over component and cross effects —
sources seed the bounds (the Server's ``M.ibw := 200``), and every
effect's outputs are re-evaluated at current input bounds until stable.

Conditions are deliberately ignored (dropping constraints can only raise
the bound, keeping it sound).  Accumulating properties (latency built up
by ``lat' := lat + Link.delay`` on every crossing) have no finite bound;
they are detected by non-convergence and given an infinite bound, which
is harmless because nothing consumes them.
"""

from __future__ import annotations

import math

from ..expr import EvalError, eval_float, variables
from ..model import AppSpec, SpecError
from ..network import Network

__all__ = ["compute_property_bounds", "resource_capacity_bounds"]

_MAX_ITERATIONS = 100
_TOLERANCE = 1e-9


def compute_property_bounds(
    app: AppSpec,
    network: Network,
    overrides: dict[str, float] | None = None,
) -> dict[str, float]:
    """Upper bound per interface-property spec var (``"M.ibw"`` → 200.0).

    ``overrides`` forces bounds for specific variables (useful to cap an
    amplifying cycle at a known physical limit).  Non-converging variables
    become ``math.inf``.
    """
    bounds: dict[str, float] = {}
    for iface in app.interfaces.values():
        for prop in iface.properties:
            bounds[iface.spec_var(prop.name)] = 0.0
    if overrides:
        unknown = set(overrides) - set(bounds)
        if unknown:
            raise SpecError(f"bound overrides for unknown properties: {sorted(unknown)}")
        bounds.update(overrides)

    max_node_res = {
        r.name: max((n.capacity(r.name) for n in network.nodes.values()), default=0.0)
        for r in app.node_resources()
    }
    max_link_res = {
        r.name: max((lk.capacity(r.name) for lk in network.links.values()), default=0.0)
        for r in app.link_resources()
    }
    forced = set(overrides or ())

    def one_pass() -> set[str]:
        """Relax every effect once; returns the variables that grew."""
        grew: set[str] = set()
        for comp in app.components.values():
            env: dict[str, float] = {}
            for iface_name in comp.requires:
                iface = app.interface(iface_name)
                for prop in iface.properties:
                    var = iface.spec_var(prop.name)
                    env[var] = bounds[var]
            for res, cap in max_node_res.items():
                env[f"Node.{res}"] = cap
            for assign in comp.effects:
                target = assign.target.name
                if target not in bounds or target in forced:
                    continue  # resource consumption, or a forced override
                try:
                    value = eval_float(assign.expr, env)
                except EvalError as exc:
                    raise SpecError(
                        f"cannot bound {target!r}: effect of {comp.name} references "
                        f"unbounded variable ({exc})"
                    ) from exc
                if value > bounds[target] + _TOLERANCE:
                    bounds[target] = value
                    grew.add(target)
        for iface in app.interfaces.values():
            env = {
                iface.spec_var(p.name): bounds[iface.spec_var(p.name)]
                for p in iface.properties
            }
            for res, cap in max_link_res.items():
                env[f"Link.{res}"] = cap
            for assign in iface.cross_effects:
                target = assign.target.name  # prime already stripped by parser
                if target not in bounds or target in forced:
                    continue
                try:
                    value = eval_float(assign.expr, env)
                    if assign.op == "+=":
                        value = bounds[target] + value
                    elif assign.op == "-=":
                        value = bounds[target] - value
                except EvalError as exc:
                    raise SpecError(
                        f"cannot bound {target!r}: cross effect of {iface.name} "
                        f"references unbounded variable ({exc})"
                    ) from exc
                if math.isfinite(bounds[target]) and value > bounds[target] + _TOLERANCE:
                    bounds[target] = value
                    grew.add(target)
        return grew

    for _ in range(_MAX_ITERATIONS):
        grew = one_pass()
        if not grew:
            return bounds
    # Still growing after the iteration cap: these accumulate without a
    # finite bound (e.g. path latency).  Mark unbounded and settle the rest.
    for var in one_pass():
        bounds[var] = math.inf
    for _ in range(_MAX_ITERATIONS):
        if not one_pass():
            return bounds
    raise SpecError(
        "property bounds failed to converge even after marking accumulating "
        "variables unbounded; pass explicit bound overrides"
    )


def resource_capacity_bounds(app: AppSpec, network: Network) -> dict[str, float]:
    """Maximum capacity per node/link resource spec var (``"Link.lbw"``)."""
    out: dict[str, float] = {}
    for r in app.node_resources():
        out[f"Node.{r.name}"] = max(
            (n.capacity(r.name) for n in network.nodes.values()), default=0.0
        )
    for r in app.link_resources():
        out[f"Link.{r.name}"] = max(
            (lk.capacity(r.name) for lk in network.links.values()), default=0.0
        )
    return out


def all_formula_vars(app: AppSpec) -> set[str]:
    """All spec vars mentioned anywhere in the app's formulas."""
    out: set[str] = set()
    for comp in app.components.values():
        for f in comp.all_formulas():
            out |= variables(f)
    for iface in app.interfaces.values():
        formulas = list(iface.cross_conditions) + list(iface.cross_effects)
        if iface.cross_cost is not None:
            formulas.append(iface.cross_cost)
        for f in formulas:
            out |= variables(f)
    return out
