"""Crash-safe run journaling (docs/ROBUSTNESS.md, "Checkpoint/resume").

Long campaigns and controller runs are exactly the workloads a machine
reboot, OOM kill, or ctrl-C interrupts.  A :class:`RunJournal` makes
them resumable: as each unit of work completes (one campaign run, one
controller step), its result is appended to a JSONL file — flushed and
fsynced per entry, so a crash loses at most the entry being written —
and ``--resume`` replays the journal to skip finished units.

The journal is **fingerprint-keyed**: its header records a digest of
everything that determines the run's output (app, network, leveling,
spec, seeds, flags).  Resuming against a journal whose fingerprint does
not match the current invocation raises :class:`JournalMismatch` — a
checkpoint must never silently graft one problem's results onto
another's.

Determinism contract: journal entries hold the exact JSON payloads the
run document assembles (records exclude timings unless the run itself
included them), and the document is assembled in task order regardless
of which entries were replayed vs freshly computed — so an
interrupted-then-resumed run serializes **byte-identically** to an
uninterrupted one (``tests/test_checkpoint.py`` and the
``supervision-smoke`` CI job diff exactly that).

File format (one JSON object per line)::

    {"kind": "header", "format": 1, "fingerprint": "<hex>"}
    {"kind": "entry", "key": "run-0", "payload": {...}}
    {"kind": "entry", "key": "run-2", "payload": {...}}

A torn final line (the crash happened mid-write) is tolerated on
replay: that entry is dropped and its unit recomputed.
"""

from __future__ import annotations

import json
import os
from typing import Iterator

from ..model import AppSpec, Leveling
from ..network import Network

__all__ = [
    "JournalMismatch",
    "RunJournal",
    "campaign_fingerprint",
    "controller_fingerprint",
]

JOURNAL_FORMAT = 1


class JournalMismatch(ValueError):
    """The checkpoint on disk belongs to a different run configuration."""


def _run_fingerprint(kind: str, app: AppSpec, network: Network,
                     leveling: Leveling | None, spec: dict, extra: dict) -> str:
    from ..parallel import (
        app_fingerprint,
        digest,
        leveling_fingerprint,
        network_fingerprint,
    )

    return digest(
        {
            "kind": kind,
            "app": app_fingerprint(app),
            "network": network_fingerprint(network),
            "leveling": leveling_fingerprint(leveling),
            "spec": spec,
            **extra,
        }
    )


def campaign_fingerprint(
    app: AppSpec,
    network: Network,
    leveling: Leveling | None,
    spec: dict,
    seeds: list[int] | None,
    events: int | None,
    time_limit_s: float | None,
    include_timings: bool,
) -> str:
    """Digest of everything that determines a campaign's output document."""
    return _run_fingerprint(
        "campaign",
        app,
        network,
        leveling,
        spec,
        {
            "seeds": list(seeds) if seeds else None,
            "events": events,
            "time_limit_s": time_limit_s,
            "include_timings": include_timings,
        },
    )


def controller_fingerprint(
    app: AppSpec,
    network: Network,
    leveling: Leveling | None,
    spec: dict,
    fleet: int | None,
    seed: int | None,
    events: int | None,
    time_limit_s: float | None,
    include_timings: bool,
) -> str:
    """Digest of everything that determines a controller run's record."""
    return _run_fingerprint(
        "controller",
        app,
        network,
        leveling,
        spec,
        {
            "fleet": fleet,
            "seed": seed,
            "events": events,
            "time_limit_s": time_limit_s,
            "include_timings": include_timings,
        },
    )


def _replay(path: str, fingerprint: str) -> tuple[dict[str, object], int]:
    """Read a journal's completed entries, validating its header.

    Returns ``(completed, valid_bytes)`` where ``valid_bytes`` is the
    byte extent of intact content — everything past it (a torn final
    line from a mid-append crash) must be truncated before reopening
    the file for append, or the next entry would be welded onto the
    torn fragment and lost too.
    """
    completed: dict[str, object] = {}
    with open(path, "rb") as fh:
        data = fh.read()
    lines = data.decode("utf-8").split("\n")
    header_seen = False
    offset = 0  # byte offset of the current line's start
    valid_bytes = 0
    for lineno, line in enumerate(lines):
        line_len = len(line.encode("utf-8"))
        end = min(offset + line_len + 1, len(data))  # +1 for the newline
        if not line.strip():
            offset, valid_bytes = end, end
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            if lineno >= len(lines) - 2:
                # Torn final line: the crash happened mid-append.  Drop
                # it — that unit simply recomputes.
                break
            raise JournalMismatch(
                f"{path}:{lineno + 1}: corrupt journal line (not valid JSON)"
            ) from None
        if not header_seen:
            if obj.get("kind") != "header":
                raise JournalMismatch(f"{path}: first line is not a journal header")
            if obj.get("fingerprint") != fingerprint:
                raise JournalMismatch(
                    f"{path}: checkpoint fingerprint {obj.get('fingerprint')!r} "
                    f"does not match this invocation ({fingerprint!r}); "
                    "refusing to graft results across configurations"
                )
            header_seen = True
            offset, valid_bytes = end, end
            continue
        if obj.get("kind") == "entry":
            completed[obj["key"]] = obj["payload"]
        offset, valid_bytes = end, end
    if not header_seen:
        raise JournalMismatch(f"{path}: journal has no header")
    return completed, valid_bytes


class RunJournal:
    """An append-only, fingerprint-keyed JSONL checkpoint.

    ``resume=False`` starts a fresh journal (truncating any existing
    file).  ``resume=True`` replays an existing journal's entries into
    :attr:`completed` — validating the fingerprint — and reopens it for
    appending; a missing file resumes from nothing.

    Use as a context manager, or :meth:`close` explicitly.  Appends are
    flushed and fsynced immediately: a crash loses at most the entry
    being written, and replay tolerates exactly that torn final line.
    """

    def __init__(self, path: str, fingerprint: str, resume: bool = False):
        self.path = str(path)
        self.fingerprint = fingerprint
        self.completed: dict[str, object] = {}
        if resume and os.path.exists(self.path):
            self.completed, valid_bytes = _replay(self.path, fingerprint)
            if valid_bytes < os.path.getsize(self.path):
                # Cut the torn final line, or the next append would weld
                # a fresh entry onto the fragment and corrupt it too.
                os.truncate(self.path, valid_bytes)
            self._fh = open(self.path, "a", encoding="utf-8")
        else:
            self._fh = open(self.path, "w", encoding="utf-8")
            self._write(
                {
                    "kind": "header",
                    "format": JOURNAL_FORMAT,
                    "fingerprint": fingerprint,
                }
            )

    def _write(self, obj: dict) -> None:
        # No sort_keys: payload dicts must round-trip with their key
        # order intact, or a resumed run's records would serialize with
        # different key order than a fresh run's (byte-identity broken).
        self._fh.write(json.dumps(obj) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # -- the journal surface -------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self.completed

    def __len__(self) -> int:
        return len(self.completed)

    def get(self, key: str):
        return self.completed.get(key)

    def keys(self) -> Iterator[str]:
        return iter(self.completed)

    def append(self, key: str, payload) -> None:
        """Record one completed unit (idempotent per key)."""
        if self._fh.closed:
            raise RuntimeError("journal is closed")
        if key in self.completed:
            return
        self._write({"kind": "entry", "key": key, "payload": payload})
        self.completed[key] = payload

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
