"""Environment-change events for the churn simulator.

Each event rewrites part of a network's resource assignment.  Events are
pure descriptions; applying one produces a *new* Network (topologies are
cheap to copy at the evaluation scales), so simulation histories stay
replayable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network import Network, NetworkError, network_from_dict, network_to_dict

__all__ = [
    "LinkChange",
    "NodeChange",
    "LinkFailure",
    "LinkRecovery",
    "Event",
    "apply_event",
    "copy_network",
    "event_to_dict",
    "event_from_dict",
]


def copy_network(net: Network) -> Network:
    """Deep copy via the serialization round trip."""
    return network_from_dict(network_to_dict(net))


@dataclass(frozen=True, slots=True)
class LinkChange:
    """Set a link resource to a new value (degradation or recovery)."""

    a: str
    b: str
    resource: str
    value: float

    def describe(self) -> str:
        return f"link {self.a}~{self.b}: {self.resource} -> {self.value:g}"


@dataclass(frozen=True, slots=True)
class NodeChange:
    """Set a node resource to a new value."""

    node: str
    resource: str
    value: float

    def describe(self) -> str:
        return f"node {self.node}: {self.resource} -> {self.value:g}"


@dataclass(frozen=True, slots=True)
class LinkFailure:
    """Remove a link outright."""

    a: str
    b: str

    def describe(self) -> str:
        return f"link {self.a}~{self.b}: failed"


@dataclass(frozen=True, slots=True)
class LinkRecovery:
    """Re-add a previously failed link with its original resources.

    ``resources`` is a sorted tuple of ``(name, value)`` pairs and
    ``labels`` a tuple of strings, keeping the event hashable; use
    :meth:`restoring` to build one from a live link before removing it.
    """

    a: str
    b: str
    resources: tuple[tuple[str, float], ...] = ()
    labels: tuple[str, ...] = ()

    @classmethod
    def restoring(cls, net: Network, a: str, b: str) -> "LinkRecovery":
        link = net.link(a, b)
        return cls(
            a,
            b,
            tuple(sorted(link.resources.items())),
            tuple(sorted(link.labels)),
        )

    def describe(self) -> str:
        return f"link {self.a}~{self.b}: recovered"


Event = LinkChange | NodeChange | LinkFailure | LinkRecovery


def apply_event(net: Network, event: Event) -> Network:
    """A new network with ``event`` applied.

    Raises :class:`NetworkError` for events referencing unknown elements.
    """
    out = copy_network(net)
    if isinstance(event, LinkChange):
        out.link(event.a, event.b).resources[event.resource] = event.value
    elif isinstance(event, NodeChange):
        out.node(event.node).resources[event.resource] = event.value
    elif isinstance(event, LinkFailure):
        out.remove_link(event.a, event.b)
    elif isinstance(event, LinkRecovery):
        if out.has_link(event.a, event.b):
            raise NetworkError(f"link {event.a}~{event.b} is already up")
        out.add_link(event.a, event.b, dict(event.resources), event.labels)
    else:  # pragma: no cover - exhaustive match
        raise TypeError(f"unknown event type {type(event).__name__}")
    return out


# -- JSON round trip (the `repro simulate` campaign format) -----------------


def event_to_dict(event: Event) -> dict:
    """A JSON-ready description of one event (inverse of
    :func:`event_from_dict`)."""
    if isinstance(event, LinkChange):
        return {
            "kind": "link-change",
            "a": event.a,
            "b": event.b,
            "resource": event.resource,
            "value": event.value,
        }
    if isinstance(event, NodeChange):
        return {
            "kind": "node-change",
            "node": event.node,
            "resource": event.resource,
            "value": event.value,
        }
    if isinstance(event, LinkFailure):
        return {"kind": "link-failure", "a": event.a, "b": event.b}
    if isinstance(event, LinkRecovery):
        return {
            "kind": "link-recovery",
            "a": event.a,
            "b": event.b,
            "resources": dict(event.resources),
            "labels": list(event.labels),
        }
    raise TypeError(f"unknown event type {type(event).__name__}")


def event_from_dict(data: dict) -> Event:
    """Rebuild an event from :func:`event_to_dict` output.

    Raises ``ValueError`` on an unknown or malformed ``kind``.
    """
    kind = data.get("kind")
    try:
        if kind == "link-change":
            return LinkChange(data["a"], data["b"], data["resource"], float(data["value"]))
        if kind == "node-change":
            return NodeChange(data["node"], data["resource"], float(data["value"]))
        if kind == "link-failure":
            return LinkFailure(data["a"], data["b"])
        if kind == "link-recovery":
            return LinkRecovery(
                data["a"],
                data["b"],
                tuple(sorted((k, float(v)) for k, v in data.get("resources", {}).items())),
                tuple(data.get("labels", ())),
            )
    except KeyError as exc:
        raise ValueError(f"event {data!r} is missing field {exc}") from None
    raise ValueError(f"unknown event kind {kind!r}")
