"""Environment-change events for the churn simulator.

Each event rewrites part of a network's resource assignment.  Events are
pure descriptions; applying one produces a *new* Network (topologies are
cheap to copy at the evaluation scales), so simulation histories stay
replayable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network import Network, NetworkError, network_from_dict, network_to_dict

__all__ = ["LinkChange", "NodeChange", "LinkFailure", "Event", "apply_event", "copy_network"]


def copy_network(net: Network) -> Network:
    """Deep copy via the serialization round trip."""
    return network_from_dict(network_to_dict(net))


@dataclass(frozen=True, slots=True)
class LinkChange:
    """Set a link resource to a new value (degradation or recovery)."""

    a: str
    b: str
    resource: str
    value: float

    def describe(self) -> str:
        return f"link {self.a}~{self.b}: {self.resource} -> {self.value:g}"


@dataclass(frozen=True, slots=True)
class NodeChange:
    """Set a node resource to a new value."""

    node: str
    resource: str
    value: float

    def describe(self) -> str:
        return f"node {self.node}: {self.resource} -> {self.value:g}"


@dataclass(frozen=True, slots=True)
class LinkFailure:
    """Remove a link outright."""

    a: str
    b: str

    def describe(self) -> str:
        return f"link {self.a}~{self.b}: failed"


Event = LinkChange | NodeChange | LinkFailure


def apply_event(net: Network, event: Event) -> Network:
    """A new network with ``event`` applied.

    Raises :class:`NetworkError` for events referencing unknown elements.
    """
    out = copy_network(net)
    if isinstance(event, LinkChange):
        out.link(event.a, event.b).resources[event.resource] = event.value
    elif isinstance(event, NodeChange):
        out.node(event.node).resources[event.resource] = event.value
    elif isinstance(event, LinkFailure):
        out.remove_link(event.a, event.b)
    else:  # pragma: no cover - exhaustive match
        raise TypeError(f"unknown event type {type(event).__name__}")
    return out
