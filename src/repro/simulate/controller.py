"""The fleet controller: many live deployments, one repair queue.

The churn simulator (:mod:`repro.simulate.runner`) follows a *single*
deployment through a fault timeline.  Real control planes watch a fleet:
every network event puts every affected deployment into a repair queue,
and the number that matters is **time to recover** — how long the
controller takes to get a member from "broken" back to "running".

:func:`run_controller` replays a seeded fault timeline
(:func:`~repro.simulate.campaign_timeline`) against a fleet of
application instances (:func:`replicate_apps`).  After each event, every
member is repaired — through :func:`repro.planner.repair_by_names`, so a
member's deployment travels as a tuple of ground-action names — either
inline or fanned out over a :class:`~repro.parallel.WorkerPool` as
:class:`~repro.parallel.RepairTask` payloads.  Deterministic task→worker
sharding pins each member to one worker, so that worker's compile cache
always holds the member's previous network state: exactly the base the
delta-aware compile (``delta_replanning`` in the spec) patches instead
of re-grounding.

Telemetry: each repair's wall clock lands in the ``repair.ttr``
histogram (milliseconds), and the repair problem's provenance is counted
as ``repair.delta.hit`` (served from cache or patched across the
network diff) vs ``repair.delta.full`` (full recompilation).  The
returned record is deterministic — timings and provenance stay out of
it unless asked — so CI can diff a delta-replanning run against a
from-scratch run and assert the *outcomes* are identical while only the
time-to-recover differs (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import TYPE_CHECKING

from ..model import AppSpec, Leveling
from ..network import Network
from ..obs import Telemetry
from ..planner import Planner, PlannerConfig, PlanningError, repair_by_names
from .campaign import DEFAULT_RG_NODE_BUDGET, campaign_timeline
from .events import apply_event, event_to_dict
from .runner import Simulation

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a package cycle
    from ..parallel import CompileCache, RepairOutcome, RepairTask

__all__ = ["replicate_apps", "repair_member", "run_controller"]

_DEFAULT_CACHE = Simulation._DEFAULT_CACHE
"""Sentinel: use the process-global compile cache (pass ``None`` to
compile fresh everywhere)."""

DEFAULT_FLEET = 3
"""Default fleet size when neither the spec nor the caller names one."""


def replicate_apps(app: AppSpec, n: int) -> list[AppSpec]:
    """``n`` independent fleet members of ``app``.

    Members differ only in name (``app-0`` … ``app-n-1``); distinct names
    give distinct content fingerprints, so every member owns its compile-
    cache entries and its deployments never alias another member's.
    """
    if n < 1:
        raise ValueError("fleet size must be at least 1")
    return [replace(app, name=f"{app.name}-{k}") for k in range(n)]


def repair_member(
    task: "RepairTask",
    telemetry: Telemetry | None = None,
    compile_cache: "CompileCache | None" = None,
) -> "RepairOutcome":
    """Run one :class:`~repro.parallel.RepairTask` to its outcome.

    The single-member repair primitive shared by the inline controller
    loop and :func:`repro.parallel.workers.run_repair_task` (which wraps
    it with the worker's process-global cache).  Planning failures —
    including an (app, network) pair invalidated by the event, e.g. a
    partition — become an ``"outage"`` outcome, never an exception.
    """
    from ..parallel import RepairOutcome

    t0 = time.perf_counter()
    config = PlannerConfig(
        rg_node_budget=task.rg_node_budget,
        time_limit_s=task.time_limit_s,
        telemetry=telemetry,
    )
    try:
        if task.deployment_names is None:
            if not task.replan_from_scratch:
                return RepairOutcome(
                    app=task.app.name,
                    outcome="outage",
                    failure="deployment lost and replanning disabled",
                    wall_ms=(time.perf_counter() - t0) * 1e3,
                )
            config.leveling = task.leveling
            planner = Planner(config)
            if compile_cache is None:
                plan = planner.solve(task.app, task.network)
                source = "fresh"
            else:
                problem = compile_cache.compile(
                    task.app,
                    task.network,
                    task.leveling,
                    metrics=telemetry.metrics if telemetry is not None else None,
                )
                source = problem.compile_source
                plan = planner.solve(problem=problem)
            return RepairOutcome(
                app=task.app.name,
                outcome="redeployed",
                deployment_names=tuple(plan.action_names()),
                repaired=len(plan),
                repair_cost=plan.exact_cost,
                total_cost=plan.exact_cost,
                compile_source=source,
                wall_ms=(time.perf_counter() - t0) * 1e3,
            )
        result = repair_by_names(
            task.app,
            task.network,
            task.deployment_names,
            leveling=task.leveling,
            migration_cost_factor=task.migration_cost_factor,
            planner_config=config,
            compile_cache=compile_cache,
            use_delta=task.use_delta,
        )
        return RepairOutcome(
            app=task.app.name,
            outcome="repaired",
            deployment_names=tuple(a.name for a in result.combined_actions()),
            survived=len(result.surviving_actions),
            repaired=len(result.repair_plan),
            repair_cost=(
                result.repair_plan.exact_cost if result.repair_plan.actions else 0.0
            ),
            total_cost=result.total_cost,
            compile_source=result.compile_source,
            wall_ms=(time.perf_counter() - t0) * 1e3,
        )
    except (PlanningError, ValueError) as exc:
        return RepairOutcome(
            app=task.app.name,
            outcome="outage",
            failure=f"{type(exc).__name__}: {exc}",
            wall_ms=(time.perf_counter() - t0) * 1e3,
        )


def run_controller(
    app: AppSpec,
    network: Network,
    leveling: Leveling,
    spec: dict,
    fleet: int | None = None,
    seed: int | None = None,
    events: int | None = None,
    time_limit_s: float | None = None,
    include_timings: bool = False,
    telemetry: Telemetry | None = None,
    compile_cache=_DEFAULT_CACHE,
    workers: int = 1,
    on_frame=None,
    stream_interval_s: float | None = None,
    journal=None,
    inject_kill=(),
) -> dict:
    """Replay a fault timeline against a fleet; return one record.

    The spec is the campaign spec of docs/ROBUSTNESS.md plus two fleet
    knobs: ``fleet`` (member count, overridden by the parameter) and
    ``delta_replanning`` (compile repair problems by patching the
    member's previous network state).  Every member is repaired after
    every event — inline with ``workers=1``, else fanned out one
    :class:`~repro.parallel.RepairTask` per member with deterministic
    sharding.

    The record is deterministic for a fixed (spec, seed, fleet) at any
    worker count and with delta replanning on or off — timings are
    excluded unless ``include_timings``, and the only delta-dependent
    fields are ``summary.delta_hits`` / ``summary.delta_full`` (the CI
    audit pops exactly those before diffing).

    With ``telemetry``, each fanned-out batch runs under a
    ``controller.batch`` dispatch span and worker repair spans stitch
    under it; ``on_frame`` attaches the live telemetry stream
    (``--live``) in both the inline and fanned-out paths.

    Fanned-out batches run under a :class:`~repro.parallel.Supervisor`:
    a worker death respawns the worker and retries its repairs, and a
    repair that repeatedly kills workers lands as a structured
    ``"quarantined"`` outcome (counted as an outage) instead of aborting
    the run.  ``journal`` (a :class:`~repro.simulate.RunJournal`)
    checkpoints the initial deploy and each completed step (keys
    ``initial``, ``step-{i}``), and already-journaled steps are replayed
    instead of recomputed — the ``--checkpoint``/``--resume`` path.
    ``inject_kill`` lists batch-task indices whose worker SIGKILLs
    itself before running them, once, in the *first non-replayed batch*
    (fault injection for tests/CI).
    """
    from ..parallel import (
        RepairOutcome,
        RepairTask,
        Supervisor,
        TaskFailed,
        resolve_workers,
        run_repair_task,
    )

    if compile_cache is _DEFAULT_CACHE:
        from ..parallel import default_compile_cache

        compile_cache = default_compile_cache()

    fleet_size = int(fleet if fleet is not None else spec.get("fleet", DEFAULT_FLEET))
    members = replicate_apps(app, fleet_size)
    timeline = campaign_timeline(network, spec, seed=seed, events=events)
    migration_cost_factor = float(spec.get("migration_cost_factor", 0.5))
    rg_node_budget = int(spec.get("rg_node_budget", DEFAULT_RG_NODE_BUDGET))
    limit = spec.get("time_limit_s", time_limit_s)
    use_delta = bool(spec.get("delta_replanning", False))
    replan = bool(spec.get("replan_from_scratch_on_outage", True))

    def member_task(member: AppSpec, names: tuple[str, ...] | None, net: Network):
        return RepairTask(
            app=member,
            network=net,
            leveling=leveling,
            deployment_names=names,
            migration_cost_factor=migration_cost_factor,
            rg_node_budget=rg_node_budget,
            time_limit_s=limit,
            use_delta=use_delta,
            use_cache=compile_cache is not None,
            replan_from_scratch=replan,
            with_metrics=telemetry is not None,
        )

    delta_hits = 0
    delta_full = 0
    ttr_ms: list[float] = []
    inject_pending = set(inject_kill)

    def supervised_batch(tasks: list, pool) -> list:
        kills = sorted(inject_pending)
        inject_pending.clear()
        report = pool.run(
            run_repair_task, tasks,
            on_frame=on_frame, stream_interval_s=stream_interval_s,
            inject_kill=kills,
        )
        if report.failures:
            first = min(report.failures)
            message, remote_tb = report.failures[first]
            raise TaskFailed(first, message, remote_tb, failures=report.failures)
        outcomes = list(report.values)
        for q in report.quarantined:
            outcomes[q.index] = RepairOutcome(
                app=tasks[q.index].app.name,
                outcome="quarantined",
                failure=f"quarantined: {q.reason}",
            )
        return outcomes

    def run_batch(tasks: list, pool) -> list:
        if pool is not None:
            if telemetry is not None:
                with telemetry.span("controller.batch", members=len(tasks)):
                    ctx = telemetry.current_context()
                    tasks = [replace(t, trace=ctx) for t in tasks]
                    outcomes = supervised_batch(tasks, pool)
                for i, o in enumerate(outcomes):
                    telemetry.stitch_snapshot(o.metrics, worker=i % pool.workers)
                    o.metrics.merge_into(telemetry.metrics)
            else:
                outcomes = supervised_batch(tasks, pool)
        else:
            from ..obs import make_frame

            outcomes = []
            for i, t in enumerate(tasks):
                if on_frame is not None:
                    on_frame(
                        0,
                        make_frame(
                            "task_start", task=i, label=t.app.name,
                            done=i, total=len(tasks),
                        ),
                    )
                o = repair_member(t, telemetry=telemetry, compile_cache=compile_cache)
                outcomes.append(o)
                if on_frame is not None:
                    on_frame(
                        0,
                        make_frame(
                            "task_end", task=i, label=t.app.name,
                            done=i + 1, total=len(tasks), ok=not o.failed,
                        ),
                    )
        return outcomes

    t_run = time.perf_counter()
    pool_cm = None

    def ensure_pool():
        # Created lazily: a fully-journaled resume never spawns workers.
        nonlocal pool_cm
        if workers > 1 and pool_cm is None:
            pool_cm = Supervisor(
                resolve_workers(workers, fleet_size), telemetry=telemetry
            )
        return pool_cm

    def freeze_deployments(deployments: dict) -> dict:
        return {
            name: (list(names) if names is not None else None)
            for name, names in deployments.items()
        }

    def thaw_deployments(payload: dict) -> dict:
        return {
            name: (tuple(names) if names is not None else None)
            for name, names in payload.items()
        }

    try:
        # Initial deploys: every member solved from scratch on the
        # starting network (these also warm each worker's cache with the
        # member's first network state).
        if journal is not None and "initial" in journal:
            payload = journal.get("initial")
            initial_records = payload["records"]
            deployments: dict[str, tuple[str, ...] | None] = thaw_deployments(
                payload["deployments"]
            )
        else:
            initial_outcomes = run_batch(
                [member_task(m, None, network) for m in members], ensure_pool()
            )
            deployments = {
                o.app: (o.deployment_names if not o.failed else None)
                for o in initial_outcomes
            }
            initial_records = [
                (
                    {
                        "app": o.app,
                        "deployed": not o.failed,
                        "actions": len(o.deployment_names),
                        "cost": o.total_cost,
                    }
                    if not o.failed
                    else {"app": o.app, "deployed": False, "failure": o.failure}
                )
                for o in initial_outcomes
            ]
            if journal is not None:
                journal.append(
                    "initial",
                    {
                        "records": initial_records,
                        "deployments": freeze_deployments(deployments),
                    },
                )

        steps = []
        repairs_total = 0
        outages = 0
        redeployments = 0
        total_repair_cost = 0.0
        current = network
        for index, event in enumerate(timeline):
            current = apply_event(current, event)
            key = f"step-{index}"
            if journal is not None and key in journal:
                # Replay a journaled step: restore the record verbatim
                # and the counters/state the later steps build on.
                payload = journal.get(key)
                step = payload["step"]
                deployments = thaw_deployments(payload["deployments"])
                delta_hits += int(payload["delta_hits"])
                delta_full += int(payload["delta_full"])
                for record in step["repairs"]:
                    repairs_total += 1
                    if record["failed"]:
                        outages += 1
                    else:
                        total_repair_cost += record["repair_cost"]
                        if "ttr_ms" in record:
                            ttr_ms.append(record["ttr_ms"])
                        if record["outcome"] == "redeployed":
                            redeployments += 1
                steps.append(step)
                continue
            outcomes = run_batch(
                [
                    member_task(m, deployments[m.name], current)
                    for m in members
                ],
                ensure_pool(),
            )
            repair_records = []
            step_hits = 0
            step_full = 0
            for outcome in outcomes:
                deployments[outcome.app] = (
                    outcome.deployment_names if not outcome.failed else None
                )
                repairs_total += 1
                if outcome.failed:
                    outages += 1
                else:
                    total_repair_cost += outcome.repair_cost
                    ttr_ms.append(outcome.wall_ms)
                    if outcome.outcome == "redeployed":
                        redeployments += 1
                if outcome.compile_source in ("cache", "delta"):
                    step_hits += 1
                else:
                    step_full += 1
                if telemetry is not None:
                    telemetry.metrics.observe("repair.ttr", outcome.wall_ms)
                    if outcome.compile_source in ("cache", "delta"):
                        telemetry.metrics.inc("repair.delta.hit")
                    else:
                        telemetry.metrics.inc("repair.delta.full")
                record = {
                    "app": outcome.app,
                    "outcome": outcome.outcome,
                    "survived": outcome.survived,
                    "repaired": outcome.repaired,
                    "repair_cost": outcome.repair_cost,
                    "total_cost": outcome.total_cost,
                    "failed": outcome.failed,
                    "failure": outcome.failure,
                }
                if include_timings:
                    record["ttr_ms"] = outcome.wall_ms
                repair_records.append(record)
            delta_hits += step_hits
            delta_full += step_full
            step = {
                "index": index,
                "event": event_to_dict(event),
                "repairs": repair_records,
            }
            steps.append(step)
            if journal is not None:
                journal.append(
                    key,
                    {
                        "step": step,
                        "deployments": freeze_deployments(deployments),
                        "delta_hits": step_hits,
                        "delta_full": step_full,
                    },
                )
    finally:
        if pool_cm is not None:
            pool_cm.close()

    summary = {
        "fleet": fleet_size,
        "events": len(timeline),
        "repairs": repairs_total,
        "outages": outages,
        "redeployments": redeployments,
        "availability": (
            round(1.0 - outages / repairs_total, 6) if repairs_total else 1.0
        ),
        "total_repair_cost": total_repair_cost,
        "delta_hits": delta_hits,
        "delta_full": delta_full,
    }
    if include_timings:
        summary["ttr_ms_mean"] = sum(ttr_ms) / len(ttr_ms) if ttr_ms else 0.0
        summary["ttr_ms_max"] = max(ttr_ms, default=0.0)
    record: dict = {
        "format": 1,
        "fleet": [m.name for m in members],
        "initial": initial_records,
        "steps": steps,
        "summary": summary,
    }
    if include_timings:
        record["wall_ms"] = (time.perf_counter() - t_run) * 1e3
    return record
