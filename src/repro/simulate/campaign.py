"""Campaign assembly: one seeded fault-campaign run, and multi-seed fan-out.

The CLI's ``repro simulate`` historically built its simulation inline;
this module factors that assembly into :func:`run_campaign_run` so the
same logic serves three callers identically:

* the CLI (single run, stdout record),
* :func:`run_campaign` (multi-seed sweeps, serial or fanned out over a
  :class:`~repro.parallel.WorkerPool`, one run per task),
* :func:`repro.parallel.workers.run_campaign_task` (the worker-side
  entry point of that fan-out).

A campaign *spec* is the JSON dict documented in docs/ROBUSTNESS.md:
``faults`` (seeded :class:`FaultModel`), optional explicit ``events``,
optional ``injector``/``retry`` (transient-fault machinery), planner
bounds (``rg_node_budget``, ``time_limit_s``), and repair policy knobs.

Records are deterministic: :meth:`SimulationResult.to_dict` excludes
timings unless asked, so the same (spec, seed) pair serializes
byte-identically at any worker count — the determinism suite in
``tests/parallel/`` diffs exactly that.
"""

from __future__ import annotations

from dataclasses import replace

from ..model import AppSpec, Leveling
from ..network import Network
from ..obs import Telemetry
from ..planner import PlannerConfig
from .events import Event, event_from_dict
from .faults import FaultInjector, FaultModel, RetryPolicy, generate_timeline
from .runner import Simulation, SimulationResult

__all__ = ["campaign_timeline", "run_campaign_run", "run_campaign"]

_DEFAULT_CACHE = Simulation._DEFAULT_CACHE
"""Sentinel: let the simulation use the process-global compile cache
(its own default).  Pass ``compile_cache=None`` to force fresh
compilation everywhere."""

DEFAULT_RG_NODE_BUDGET = 20_000
"""Default per-repair RG node budget for campaigns: proving a degraded
step infeasible under the planner's default 500k budget can take minutes
per step, so campaigns bound it and report a fast, honest outage."""


def campaign_timeline(
    network: Network,
    spec: dict,
    seed: int | None = None,
    events: int | None = None,
) -> list[Event]:
    """The event timeline a campaign spec describes for ``network``.

    An explicit ``events`` list in the spec wins (replayed verbatim —
    seed overrides are ignored, matching the CLI); otherwise a timeline
    is generated from the spec's fault model with ``seed``/``events``
    overriding the model's own values.

    Raises
    ------
    ValueError
        On a malformed explicit event dict.
    TypeError
        On unknown fault-model fields.
    """
    if "events" in spec:
        return [event_from_dict(d) for d in spec["events"]]
    faults = FaultModel.from_dict(spec.get("faults", {}))
    if seed is not None:
        faults = replace(faults, seed=seed)
    if events is not None:
        faults = replace(faults, events=events)
    return generate_timeline(network, faults)


def run_campaign_run(
    app: AppSpec,
    network: Network,
    leveling: Leveling,
    spec: dict,
    seed: int | None = None,
    events: int | None = None,
    time_limit_s: float | None = None,
    telemetry: Telemetry | None = None,
    compile_cache=_DEFAULT_CACHE,
) -> SimulationResult:
    """Build and run one campaign from its JSON spec.

    ``seed``/``events`` override the spec's fault model (ignored when the
    spec carries explicit events); ``time_limit_s`` is the per-repair
    wall-clock bound, with the spec's own ``time_limit_s`` taking
    precedence (CLI semantics).  ``compile_cache`` feeds the simulation's
    repair loop (see :class:`~repro.simulate.Simulation`); pass ``None``
    to force fresh compilation everywhere.
    """
    timeline = campaign_timeline(network, spec, seed=seed, events=events)
    injector = FaultInjector(**spec["injector"]) if "injector" in spec else None
    retry = RetryPolicy(**spec["retry"]) if "retry" in spec else None
    config = PlannerConfig(
        rg_node_budget=int(spec.get("rg_node_budget", DEFAULT_RG_NODE_BUDGET)),
        time_limit_s=spec.get("time_limit_s", time_limit_s),
        telemetry=telemetry,
    )
    sim = Simulation(
        app,
        network,
        leveling,
        migration_cost_factor=float(spec.get("migration_cost_factor", 0.5)),
        replan_from_scratch_on_outage=bool(
            spec.get("replan_from_scratch_on_outage", True)
        ),
        fault_injector=injector,
        retry_policy=retry,
        planner_config=config,
        compile_cache=compile_cache,
        delta_replanning=bool(spec.get("delta_replanning", False)),
    )
    return sim.run(timeline)


def run_campaign(
    app: AppSpec,
    network: Network,
    leveling: Leveling,
    spec: dict,
    seeds: list[int] | None = None,
    events: int | None = None,
    time_limit_s: float | None = None,
    include_timings: bool = False,
    telemetry: Telemetry | None = None,
    compile_cache=_DEFAULT_CACHE,
    workers: int = 1,
    on_frame=None,
    stream_interval_s: float | None = None,
    journal=None,
    inject_kill=(),
) -> dict:
    """Run a campaign once per seed; return one deterministic document.

    ``seeds=None`` runs once with the spec's own seed.  With
    ``workers > 1`` the runs fan out under a
    :class:`~repro.parallel.Supervisor`, one run per task: a worker that
    dies mid-run is respawned and its tasks retried, poison tasks are
    quarantined as structured run entries (``"quarantined"`` key) rather
    than aborting the sweep, and only genuine task exceptions raise
    :class:`~repro.parallel.TaskFailed` (carrying *every* failed index).
    Records come back keyed and ordered by their position in ``seeds``
    regardless of completion order, and worker metrics are merged into
    ``telemetry`` in task order — so the returned document is
    byte-identical at any worker count for fixed seeds, worker deaths
    included.  Worker spans stitch under the coordinator's
    ``campaign.fanout`` dispatch span.  ``on_frame`` attaches the live
    telemetry stream (``--live``); frames are display-only and never
    touch the returned document.

    ``journal`` (a :class:`~repro.simulate.RunJournal`) checkpoints each
    completed run as it lands (key ``run-{i}``) and skips runs already
    journaled — the crash-safe ``--checkpoint``/``--resume`` path.
    ``inject_kill`` lists task indices whose worker SIGKILLs itself
    before running them, once each (fault injection for tests/CI).
    """
    run_seeds: list[int | None] = list(seeds) if seeds else [None]
    total = len(run_seeds)
    entries: list[dict | None] = [None] * total
    pending: list[int] = []
    for index in range(total):
        key = f"run-{index}"
        if journal is not None and key in journal:
            entries[index] = journal.get(key)
        else:
            pending.append(index)

    def settle(index: int, entry: dict) -> None:
        entries[index] = entry
        if journal is not None:
            journal.append(f"run-{index}", entry)

    if workers > 1 and len(pending) > 1:
        from contextlib import nullcontext

        from ..parallel import (
            CampaignTask,
            Supervisor,
            TaskFailed,
            resolve_workers,
            run_campaign_task,
        )

        pool_size = resolve_workers(workers, len(pending))
        dispatch = (
            telemetry.span("campaign.fanout", workers=pool_size)
            if telemetry is not None
            else nullcontext()
        )
        with dispatch:
            ctx = telemetry.current_context() if telemetry is not None else None
            tasks = [
                CampaignTask(
                    app=app,
                    network=network,
                    leveling=leveling,
                    spec=spec,
                    seed=run_seeds[i],
                    events=events,
                    time_limit_s=time_limit_s,
                    include_timings=include_timings,
                    with_metrics=telemetry is not None,
                    use_cache=compile_cache is not None,
                    trace=ctx,
                )
                for i in pending
            ]

            def on_result(local_index: int, res) -> None:
                settle(
                    pending[local_index],
                    {
                        "seed": res.seed,
                        "record": res.record,
                        "description": res.description,
                    },
                )

            with Supervisor(pool_size, telemetry=telemetry) as sup:
                report = sup.run(
                    run_campaign_task, tasks,
                    on_frame=on_frame, stream_interval_s=stream_interval_s,
                    on_result=on_result, inject_kill=inject_kill,
                )
        if report.failures:
            first = min(report.failures)
            message, remote_tb = report.failures[first]
            raise TaskFailed(first, message, remote_tb, failures=report.failures)
        for q in report.quarantined:
            index = pending[q.index]
            settle(
                index,
                {
                    "seed": run_seeds[index],
                    "record": None,
                    "description": f"quarantined: {q.reason}",
                    "quarantined": q.to_dict(),
                },
            )
        if telemetry is not None:
            for local_index, res in enumerate(report.values):
                if res is None or res.metrics is None:
                    continue
                telemetry.stitch_snapshot(res.metrics, worker=local_index % pool_size)
                res.metrics.merge_into(telemetry.metrics)
    else:
        from ..obs import make_frame

        for index in pending:
            s = run_seeds[index]
            if on_frame is not None:
                label = f"seed={s}" if s is not None else "seed=spec"
                on_frame(
                    0,
                    make_frame(
                        "task_start", task=index, label=label,
                        done=index, total=total,
                    ),
                )
            result = run_campaign_run(
                app,
                network,
                leveling,
                spec,
                seed=s,
                events=events,
                time_limit_s=time_limit_s,
                telemetry=telemetry,
                compile_cache=compile_cache,
            )
            settle(
                index,
                {
                    "seed": s,
                    "record": result.to_dict(include_timings=include_timings),
                    "description": result.describe(),
                },
            )
            if on_frame is not None:
                on_frame(
                    0,
                    make_frame(
                        "task_end", task=index, label=label,
                        done=index + 1, total=total, ok=True,
                    ),
                )
    return {"format": 1, "runs": entries}
