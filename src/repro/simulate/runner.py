"""The churn simulator: deploy once, repair across environment changes.

Drives the §6 adaptation machinery through a timeline of network events:
after each event the current deployment is re-validated, the surviving
prefix kept, and a repair delta planned.  The simulation records, per
step, what broke, what was kept, what was redeployed, the repair cost,
and — when a :class:`~repro.simulate.faults.FaultInjector` is attached —
how many retries and how much (simulated) backoff the repair path burned.
The per-run record is enough to compute availability-style numbers for
evaluating adaptive deployment policies (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from ..model import AppSpec, Leveling
from ..network import Network
from ..planner import (
    Deployment,
    Plan,
    Planner,
    PlannerConfig,
    PlanningError,
    repair_deployment,
)
from .events import Event, apply_event, event_to_dict
from .faults import FaultInjector, RetryPolicy, TransientFault

__all__ = ["SimulationStep", "SimulationResult", "Simulation"]


@dataclass
class SimulationStep:
    """Outcome of one event."""

    index: int
    event: Event
    survived_actions: int
    repair_actions: int
    repair_cost: float
    total_plan_cost: float
    failed: bool = False
    failure: str = ""
    attempts: int = 1
    """Repair attempts run (1 when the first try went through)."""
    transient_failures: int = 0
    """Attempts lost to injected :class:`TransientFault`."""
    backoff_s: float = 0.0
    """Simulated backoff charged by the retry policy (not slept)."""
    wall_ms: float = 0.0
    """Real wall-clock spent handling this step (planning included)."""

    def describe(self) -> str:
        retry = f", {self.transient_failures} transient retries" if self.transient_failures else ""
        if self.failed:
            return (
                f"[{self.index}] {self.event.describe()} -> "
                f"UNREPAIRABLE ({self.failure}){retry}"
            )
        return (
            f"[{self.index}] {self.event.describe()} -> kept {self.survived_actions}, "
            f"replanned {self.repair_actions} (repair cost {self.repair_cost:g}){retry}"
        )

    def to_dict(self, include_timings: bool = False) -> dict:
        data = {
            "index": self.index,
            "event": event_to_dict(self.event),
            "survived_actions": self.survived_actions,
            "repair_actions": self.repair_actions,
            "repair_cost": self.repair_cost,
            "total_plan_cost": self.total_plan_cost,
            "failed": self.failed,
            "failure": self.failure,
            "attempts": self.attempts,
            "transient_failures": self.transient_failures,
            "backoff_s": round(self.backoff_s, 6),
        }
        if include_timings:
            data["wall_ms"] = self.wall_ms
        return data


@dataclass
class SimulationResult:
    """Full simulation record."""

    initial_plan: Plan | None
    initial_failure: str = ""
    """Why the very first deployment failed (empty on success); a failed
    initial solve yields an empty-steps result instead of an exception."""
    steps: list[SimulationStep] = field(default_factory=list)
    wall_ms: float = 0.0

    @property
    def total_repair_cost(self) -> float:
        return sum(s.repair_cost for s in self.steps if not s.failed)

    @property
    def outage_steps(self) -> int:
        return sum(1 for s in self.steps if s.failed)

    @property
    def availability(self) -> float:
        """Fraction of steps the deployment was up (1.0 for no steps)."""
        if not self.steps:
            return 0.0 if self.initial_failure else 1.0
        return 1.0 - self.outage_steps / len(self.steps)

    @property
    def transient_failures(self) -> int:
        return sum(s.transient_failures for s in self.steps)

    @property
    def backoff_retries(self) -> int:
        """Retries that eventually went through (the availability win)."""
        return sum(s.transient_failures for s in self.steps if not s.failed)

    @property
    def total_backoff_s(self) -> float:
        return sum(s.backoff_s for s in self.steps)

    def describe(self) -> str:
        if self.initial_plan is None:
            return f"initial deployment FAILED: {self.initial_failure}"
        lines = [f"initial deployment: {len(self.initial_plan)} actions, "
                 f"exact cost {self.initial_plan.exact_cost:g}"]
        lines += [s.describe() for s in self.steps]
        lines.append(
            f"total repair cost {self.total_repair_cost:g}, "
            f"outages {self.outage_steps}/{len(self.steps)}, "
            f"availability {self.availability:.3f}"
        )
        if self.transient_failures:
            lines.append(
                f"transient faults {self.transient_failures} "
                f"({self.backoff_retries} retried through), "
                f"simulated backoff {self.total_backoff_s:g}s"
            )
        return "\n".join(lines)

    def to_dict(self, include_timings: bool = False) -> dict:
        """A JSON-ready campaign record.

        Timings are excluded by default so two runs with the same seed
        serialize byte-identically (the ``fault-smoke`` CI check).
        """
        data: dict = {
            "initial": (
                {
                    "actions": len(self.initial_plan),
                    "exact_cost": self.initial_plan.exact_cost,
                }
                if self.initial_plan is not None
                else {"failure": self.initial_failure}
            ),
            "steps": [s.to_dict(include_timings) for s in self.steps],
            "summary": {
                "total_repair_cost": self.total_repair_cost,
                "outage_steps": self.outage_steps,
                "availability": round(self.availability, 6),
                "transient_failures": self.transient_failures,
                "backoff_retries": self.backoff_retries,
                "total_backoff_s": round(self.total_backoff_s, 6),
            },
        }
        if include_timings:
            data["wall_ms"] = self.wall_ms
        return data


class Simulation:
    """Deploy an application, then play a sequence of network events.

    Parameters
    ----------
    migration_cost_factor:
        Passed through to :func:`repair_deployment`.
    replan_from_scratch_on_outage:
        When an event leaves the deployment unrepairable (e.g. the network
        partitioned), later events may restore connectivity; with this
        flag (default) the simulator attempts a full re-deployment at each
        subsequent step until one succeeds.
    fault_injector:
        Optional seeded :class:`FaultInjector` making some repair attempts
        raise :class:`TransientFault`; the simulator then retries under
        ``retry_policy``, charging (simulated) backoff to the step.
    retry_policy:
        Attempt/backoff schedule for transient failures (defaulted when a
        fault injector is attached).
    planner_config:
        Base config for the initial solve and every repair (its
        ``leveling`` is overridden by ``leveling``).  Fault campaigns
        should bound it — proving a degraded step *infeasible* with the
        default 500k-node RG budget can take minutes, while a tight
        ``rg_node_budget`` or ``time_limit_s`` turns that proof into a
        fast, honestly-reported outage.
    compile_cache:
        Warm-start compile cache (:class:`repro.parallel.CompileCache`)
        serving every compilation in the run: the initial solve, both
        compilations of every repair step, and from-scratch replans.  A
        repair step compiles its (app, network, leveling) key twice (the
        repair problem and the stitched validation), and fault recoveries
        revisit earlier network states, so repeated steps stop re-parsing
        and re-validating the unchanged app spec entirely.  Defaults to
        the process-global cache; pass ``None`` to compile fresh every
        time (the pre-cache behavior).  Results are identical either way
        — only wall clock changes, and timings are excluded from campaign
        records by default.
    delta_replanning:
        Compile repair problems via the cache's delta path
        (:meth:`~repro.parallel.CompileCache.compile_delta`): when the
        cache holds the previous network state, only the ground actions
        touching changed elements are re-ground.  Semantically
        transparent — campaign records are identical with the flag on or
        off (audited in ``tests/test_simulate.py``); only time-to-repair
        changes.  Ignored when ``compile_cache`` is ``None``.
    """

    _DEFAULT_CACHE = object()  # sentinel: "use the process-global cache"

    def __init__(
        self,
        app: AppSpec,
        network: Network,
        leveling: Leveling,
        migration_cost_factor: float = 0.5,
        replan_from_scratch_on_outage: bool = True,
        fault_injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        planner_config: PlannerConfig | None = None,
        compile_cache=_DEFAULT_CACHE,
        delta_replanning: bool = False,
    ):
        self.app = app
        self.network = network
        self.leveling = leveling
        self.migration_cost_factor = migration_cost_factor
        self.replan_from_scratch_on_outage = replan_from_scratch_on_outage
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy or RetryPolicy()
        self.planner_config = replace(planner_config or PlannerConfig(), leveling=leveling)
        self._planner = Planner(self.planner_config)
        if compile_cache is Simulation._DEFAULT_CACHE:
            from ..parallel import default_compile_cache

            compile_cache = default_compile_cache()
        self.compile_cache = compile_cache
        self.delta_replanning = delta_replanning

    def _solve(self, network: Network) -> Plan:
        """Full solve against ``network``, through the cache when present."""
        if self.compile_cache is None:
            return self._planner.solve(self.app, network)
        problem = self.compile_cache.compile(
            self.app,
            network,
            self.planner_config.leveling,
            self.planner_config.bound_overrides or None,
            self.planner_config.strict,
            metrics=(
                self.planner_config.telemetry.metrics
                if self.planner_config.telemetry is not None
                else None
            ),
        )
        return self._planner.solve(problem=problem)

    def run(self, events: list[Event]) -> SimulationResult:
        """Deploy, then apply every event in order, repairing after each.

        An infeasible *initial* deployment is part of the campaign record
        (``result.initial_failure``), not an exception — a fault campaign
        over many seeds must survive instances that start out unsolvable.
        """
        t_run = time.perf_counter()
        try:
            plan = self._solve(self.network)
        except PlanningError as exc:
            return SimulationResult(
                initial_plan=None,
                initial_failure=f"{type(exc).__name__}: {exc}",
                wall_ms=(time.perf_counter() - t_run) * 1e3,
            )
        result = SimulationResult(initial_plan=plan)
        network = self.network
        deployment: Deployment | None = Deployment.from_plan(plan)

        for i, event in enumerate(events):
            network = apply_event(network, event)
            step = SimulationStep(
                index=i,
                event=event,
                survived_actions=0,
                repair_actions=0,
                repair_cost=0.0,
                total_plan_cost=0.0,
            )
            t_step = time.perf_counter()
            while True:
                try:
                    if self.fault_injector is not None:
                        self.fault_injector.attempt(i, step.attempts)
                    deployment = self._step(step, network, deployment)
                except TransientFault as exc:
                    step.transient_failures += 1
                    if step.attempts >= self.retry_policy.max_attempts:
                        step.failed = True
                        step.failure = f"{type(exc).__name__}: {exc}"
                        deployment = None
                        break
                    step.backoff_s += self.retry_policy.backoff_s(step.attempts)
                    step.attempts += 1
                    continue
                except (PlanningError, ValueError) as exc:
                    # ValueError: app/network consistency validation rejects
                    # e.g. a partitioned network before planning even starts
                    # — an outage, not a campaign crash.
                    step.failed = True
                    step.failure = f"{type(exc).__name__}: {exc}"
                    deployment = None
                break
            step.wall_ms = (time.perf_counter() - t_step) * 1e3
            result.steps.append(step)
        result.wall_ms = (time.perf_counter() - t_run) * 1e3
        return result

    def _step(
        self, step: SimulationStep, network: Network, deployment: Deployment | None
    ) -> Deployment:
        """One repair attempt; returns the post-step deployment."""
        if deployment is None:
            if not self.replan_from_scratch_on_outage:
                raise PlanningError("deployment lost and replanning disabled")
            fresh = self._solve(network)
            step.repair_actions = len(fresh)
            step.repair_cost = fresh.exact_cost
            step.total_plan_cost = fresh.exact_cost
            return Deployment.from_plan(fresh)
        repair = repair_deployment(
            self.app,
            network,
            deployment,
            leveling=self.leveling,
            migration_cost_factor=self.migration_cost_factor,
            planner_config=replace(self.planner_config),
            compile_cache=self.compile_cache,
            use_delta=self.delta_replanning,
        )
        step.survived_actions = len(repair.surviving_actions)
        step.repair_actions = len(repair.repair_plan)
        step.repair_cost = (
            repair.repair_plan.exact_cost if repair.repair_plan.actions else 0.0
        )
        # The deployment's exact cost after this step: surviving prefix
        # plus repair delta, measured undiscounted on the stitched
        # validation — not just the repair delta (which drops the prefix
        # and is cheapened by the migration discount).
        step.total_plan_cost = repair.total_cost
        return Deployment(problem=repair.repair_plan.problem, actions=repair.combined_actions())
