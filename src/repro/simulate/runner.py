"""The churn simulator: deploy once, repair across environment changes.

Drives the §6 adaptation machinery through a timeline of network events:
after each event the current deployment is re-validated, the surviving
prefix kept, and a repair delta planned.  The simulation records, per
step, what broke, what was kept, what was redeployed, and the repair
cost — the data one needs to evaluate adaptive deployment policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model import AppSpec, Leveling
from ..network import Network
from ..planner import (
    Deployment,
    Plan,
    Planner,
    PlannerConfig,
    PlanningError,
    repair_deployment,
)
from .events import Event, apply_event

__all__ = ["SimulationStep", "SimulationResult", "Simulation"]


@dataclass
class SimulationStep:
    """Outcome of one event."""

    index: int
    event: Event
    survived_actions: int
    repair_actions: int
    repair_cost: float
    total_plan_cost: float
    failed: bool = False
    failure: str = ""

    def describe(self) -> str:
        if self.failed:
            return f"[{self.index}] {self.event.describe()} -> UNREPAIRABLE ({self.failure})"
        return (
            f"[{self.index}] {self.event.describe()} -> kept {self.survived_actions}, "
            f"replanned {self.repair_actions} (repair cost {self.repair_cost:g})"
        )


@dataclass
class SimulationResult:
    """Full simulation record."""

    initial_plan: Plan
    steps: list[SimulationStep] = field(default_factory=list)

    @property
    def total_repair_cost(self) -> float:
        return sum(s.repair_cost for s in self.steps if not s.failed)

    @property
    def outage_steps(self) -> int:
        return sum(1 for s in self.steps if s.failed)

    def describe(self) -> str:
        lines = [f"initial deployment: {len(self.initial_plan)} actions, "
                 f"exact cost {self.initial_plan.exact_cost:g}"]
        lines += [s.describe() for s in self.steps]
        lines.append(
            f"total repair cost {self.total_repair_cost:g}, "
            f"outages {self.outage_steps}/{len(self.steps)}"
        )
        return "\n".join(lines)


class Simulation:
    """Deploy an application, then play a sequence of network events.

    Parameters
    ----------
    migration_cost_factor:
        Passed through to :func:`repair_deployment`.
    replan_from_scratch_on_outage:
        When an event leaves the deployment unrepairable (e.g. the network
        partitioned), later events may restore connectivity; with this
        flag (default) the simulator attempts a full re-deployment at each
        subsequent step until one succeeds.
    """

    def __init__(
        self,
        app: AppSpec,
        network: Network,
        leveling: Leveling,
        migration_cost_factor: float = 0.5,
        replan_from_scratch_on_outage: bool = True,
    ):
        self.app = app
        self.network = network
        self.leveling = leveling
        self.migration_cost_factor = migration_cost_factor
        self.replan_from_scratch_on_outage = replan_from_scratch_on_outage
        self._planner = Planner(PlannerConfig(leveling=leveling))

    def run(self, events: list[Event]) -> SimulationResult:
        """Deploy, then apply every event in order, repairing after each."""
        plan = self._planner.solve(self.app, self.network)
        result = SimulationResult(initial_plan=plan)
        network = self.network
        deployment: Deployment | None = Deployment.from_plan(plan)

        for i, event in enumerate(events):
            network = apply_event(network, event)
            step = SimulationStep(
                index=i,
                event=event,
                survived_actions=0,
                repair_actions=0,
                repair_cost=0.0,
                total_plan_cost=0.0,
            )
            try:
                if deployment is None:
                    if not self.replan_from_scratch_on_outage:
                        raise PlanningError("deployment lost and replanning disabled")
                    fresh = self._planner.solve(self.app, network)
                    step.repair_actions = len(fresh)
                    step.repair_cost = fresh.exact_cost
                    step.total_plan_cost = fresh.exact_cost
                    deployment = Deployment.from_plan(fresh)
                else:
                    repair = repair_deployment(
                        self.app,
                        network,
                        deployment,
                        leveling=self.leveling,
                        migration_cost_factor=self.migration_cost_factor,
                    )
                    step.survived_actions = len(repair.surviving_actions)
                    step.repair_actions = len(repair.repair_plan)
                    step.repair_cost = (
                        repair.repair_plan.exact_cost if repair.repair_plan.actions else 0.0
                    )
                    combined = repair.combined_actions()
                    deployment = Deployment(
                        problem=repair.repair_plan.problem, actions=combined
                    )
                    step.total_plan_cost = step.repair_cost
            except PlanningError as exc:
                step.failed = True
                step.failure = type(exc).__name__
                deployment = None
            result.steps.append(step)
        return result
