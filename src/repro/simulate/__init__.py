"""Network-churn simulation driving deployment repair over time."""

from .events import Event, LinkChange, LinkFailure, NodeChange, apply_event, copy_network
from .runner import Simulation, SimulationResult, SimulationStep

__all__ = [
    "Event",
    "LinkChange",
    "NodeChange",
    "LinkFailure",
    "apply_event",
    "copy_network",
    "Simulation",
    "SimulationResult",
    "SimulationStep",
]
