"""Network-churn simulation driving deployment repair over time."""

from .events import (
    Event,
    LinkChange,
    LinkFailure,
    LinkRecovery,
    NodeChange,
    apply_event,
    copy_network,
    event_from_dict,
    event_to_dict,
)
from .campaign import campaign_timeline, run_campaign, run_campaign_run
from .checkpoint import (
    JournalMismatch,
    RunJournal,
    campaign_fingerprint,
    controller_fingerprint,
)
from .controller import repair_member, replicate_apps, run_controller
from .faults import FaultInjector, FaultModel, RetryPolicy, TransientFault, generate_timeline
from .runner import Simulation, SimulationResult, SimulationStep

__all__ = [
    "Event",
    "LinkChange",
    "NodeChange",
    "LinkFailure",
    "LinkRecovery",
    "apply_event",
    "copy_network",
    "event_to_dict",
    "event_from_dict",
    "FaultModel",
    "FaultInjector",
    "RetryPolicy",
    "TransientFault",
    "generate_timeline",
    "Simulation",
    "SimulationResult",
    "SimulationStep",
    "campaign_timeline",
    "run_campaign",
    "run_campaign_run",
    "RunJournal",
    "JournalMismatch",
    "campaign_fingerprint",
    "controller_fingerprint",
    "replicate_apps",
    "repair_member",
    "run_controller",
]
