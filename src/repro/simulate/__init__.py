"""Network-churn simulation driving deployment repair over time."""

from .events import (
    Event,
    LinkChange,
    LinkFailure,
    LinkRecovery,
    NodeChange,
    apply_event,
    copy_network,
    event_from_dict,
    event_to_dict,
)
from .faults import FaultInjector, FaultModel, RetryPolicy, TransientFault, generate_timeline
from .runner import Simulation, SimulationResult, SimulationStep

__all__ = [
    "Event",
    "LinkChange",
    "NodeChange",
    "LinkFailure",
    "LinkRecovery",
    "apply_event",
    "copy_network",
    "event_to_dict",
    "event_from_dict",
    "FaultModel",
    "FaultInjector",
    "RetryPolicy",
    "TransientFault",
    "generate_timeline",
    "Simulation",
    "SimulationResult",
    "SimulationStep",
]
