"""Stochastic fault injection for the churn simulator (docs/ROBUSTNESS.md).

Two independent pieces, both seeded and fully deterministic:

* :func:`generate_timeline` draws a replayable :class:`~repro.simulate.Event`
  timeline from a :class:`FaultModel` — transient and permanent link
  failures (transient ones come with a *scheduled recovery* a few steps
  later), and resource jitter on links and nodes that likewise recovers.
  The generator tracks what it has broken, so no event ever references a
  removed link and no element is touched twice while a recovery for it is
  still pending — every timeline replays cleanly through
  :func:`~repro.simulate.apply_event`.

* :class:`FaultInjector` models a flaky *repair path*: during a
  simulation step it makes the first ``k`` repair attempts raise
  :class:`TransientFault` (``k`` drawn once per step from a seeded RNG),
  after which the attempt goes through.  :class:`Simulation` retries
  under a :class:`RetryPolicy` with exponential backoff; the backoff is
  accounted, not slept, so campaigns stay fast and replayable.

Same seeds, same network, same model ⇒ byte-identical campaign results
(the ``fault-smoke`` CI job runs one twice and diffs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..network import Network
from .events import Event, LinkChange, LinkFailure, LinkRecovery, NodeChange

__all__ = [
    "FaultModel",
    "FaultInjector",
    "RetryPolicy",
    "TransientFault",
    "generate_timeline",
]


class TransientFault(RuntimeError):
    """An injected, retryable failure of one repair attempt."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient repair failures.

    Backoff seconds are *simulated* — added to the step's accounting, not
    slept — so retried campaigns remain deterministic and fast.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.1
    multiplier: float = 2.0

    def backoff_s(self, attempt: int) -> float:
        """Delay charged after failed attempt ``attempt`` (1-based)."""
        return self.base_backoff_s * self.multiplier ** (attempt - 1)


@dataclass(frozen=True)
class FaultModel:
    """Knobs for one fault campaign (all draws come from ``seed``)."""

    seed: int = 0
    events: int = 20
    """Timeline length."""
    p_link_fail: float = 0.25
    p_link_jitter: float = 0.5
    p_node_jitter: float = 0.25
    """Relative weights of the three fault kinds."""
    p_transient: float = 0.7
    """Probability a fault is transient, i.e. gets a scheduled recovery."""
    jitter_range: tuple[float, float] = (0.4, 0.9)
    """A jittered resource is scaled by a factor drawn from this range."""
    recovery_delay: tuple[int, int] = (1, 4)
    """Steps until a transient fault's scheduled recovery fires."""

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "events": self.events,
            "p_link_fail": self.p_link_fail,
            "p_link_jitter": self.p_link_jitter,
            "p_node_jitter": self.p_node_jitter,
            "p_transient": self.p_transient,
            "jitter_range": list(self.jitter_range),
            "recovery_delay": list(self.recovery_delay),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultModel":
        kwargs = dict(data)
        for name in ("jitter_range", "recovery_delay"):
            if name in kwargs:
                kwargs[name] = tuple(kwargs[name])
        return cls(**kwargs)


def generate_timeline(network: Network, model: FaultModel) -> list[Event]:
    """Draw a deterministic, replayable fault/recovery timeline.

    The returned list is ``model.events`` long (shorter only when the
    network runs out of targets).  Invariants the generator maintains:

    * a failed link is never degraded, re-failed, or referenced again
      until (unless) its scheduled :class:`LinkRecovery` has fired;
    * an element with a pending recovery is left alone, so recoveries
      always restore the *original* value;
    * iteration orders are sorted and all randomness comes from
      ``model.seed`` — the same inputs always yield the same timeline.
    """
    rng = random.Random(model.seed)
    live = sorted(network.links)
    link_state = {
        key: (dict(network.links[key].resources), tuple(sorted(network.links[key].labels)))
        for key in live
    }
    node_ids = sorted(n for n in network.nodes if network.nodes[n].resources)
    busy_links: set[tuple[str, str]] = set()
    busy_nodes: set[str] = set()
    # (due step, event, link key to revive or node to release)
    pending: list[tuple[int, Event, tuple[str, str] | str]] = []
    kinds = ("link-fail", "link-jitter", "node-jitter")
    weights = (model.p_link_fail, model.p_link_jitter, model.p_node_jitter)
    events: list[Event] = []

    def schedule(event: Event, token: tuple[str, str] | str) -> None:
        delay = rng.randint(*model.recovery_delay)
        pending.append((len(events) + delay, event, token))

    for _ in range(10 * model.events):
        if len(events) >= model.events:
            break
        due = next((p for p in pending if p[0] <= len(events)), None)
        if due is not None:
            pending.remove(due)
            _, event, token = due
            events.append(event)
            if isinstance(token, tuple):
                busy_links.discard(token)
                if isinstance(event, LinkRecovery):
                    live.append(token)
                    live.sort()
            else:
                busy_nodes.discard(token)
            continue

        kind = rng.choices(kinds, weights=weights)[0]
        free_links = [k for k in live if k not in busy_links]
        if kind in ("link-fail", "link-jitter") and not free_links:
            kind = "node-jitter"

        if kind == "link-fail" and free_links:
            key = free_links[rng.randrange(len(free_links))]
            live.remove(key)
            events.append(LinkFailure(*key))
            if rng.random() < model.p_transient:
                resources, labels = link_state[key]
                busy_links.add(key)
                schedule(
                    LinkRecovery(key[0], key[1], tuple(sorted(resources.items())), labels),
                    key,
                )
        elif kind == "link-jitter" and free_links:
            key = free_links[rng.randrange(len(free_links))]
            resources = link_state[key][0]
            name = rng.choice(sorted(resources))
            factor = rng.uniform(*model.jitter_range)
            events.append(
                LinkChange(key[0], key[1], name, round(resources[name] * factor, 3))
            )
            if rng.random() < model.p_transient:
                busy_links.add(key)
                schedule(LinkChange(key[0], key[1], name, resources[name]), key)
        else:
            free_nodes = [n for n in node_ids if n not in busy_nodes]
            if not free_nodes:
                continue
            node = free_nodes[rng.randrange(len(free_nodes))]
            resources = network.nodes[node].resources
            name = rng.choice(sorted(resources))
            factor = rng.uniform(*model.jitter_range)
            events.append(NodeChange(node, name, round(resources[name] * factor, 3)))
            if rng.random() < model.p_transient:
                busy_nodes.add(node)
                schedule(NodeChange(node, name, resources[name]), node)
    return events


class FaultInjector:
    """Deterministic transient failures on the repair path.

    For each simulation step, the first :meth:`attempt` calls draw — once,
    from the seeded RNG — how many leading repair attempts fail
    (``0`` with probability ``1 - rate``, else uniform in
    ``[1, max_failures]``); those attempts raise :class:`TransientFault`
    and every later attempt succeeds.  Because the draw happens once per
    step regardless of how many retries the policy actually runs, two
    campaigns with the same seed see identical injections.
    """

    def __init__(self, rate: float = 0.3, max_failures: int = 2, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {rate}")
        self.rate = rate
        self.max_failures = max_failures
        self._rng = random.Random(seed)
        self._plan: dict[int, int] = {}

    def failures_for(self, step: int) -> int:
        """How many leading attempts of ``step`` fail (memoized draw)."""
        if step not in self._plan:
            k = 0
            if self.max_failures > 0 and self._rng.random() < self.rate:
                k = self._rng.randint(1, self.max_failures)
            self._plan[step] = k
        return self._plan[step]

    def attempt(self, step: int, attempt: int) -> None:
        """Raise :class:`TransientFault` if this attempt is doomed."""
        if attempt <= self.failures_for(step):
            raise TransientFault(
                f"injected transient repair failure (step {step}, attempt {attempt})"
            )
