"""Hierarchical domain-decomposed planning (docs/ALGORITHM.md).

Flat planning grounds one action per (component, node) and per
(interface, directed link) — at 10k nodes that is hundreds of thousands
of ground actions before the search even starts.  This package exploits
the transit-stub structure the generator emits (and real WANs exhibit):

1. **partition** the network into stub domains plus a backbone
   (:mod:`repro.network.partition`);
2. **abstract** each relevant stub to a single representative node with
   an aggregated capacity envelope (:mod:`repro.hierarchy.abstraction`)
   — a sound over-approximation: abstract-feasible ⊇ concrete-feasible;
3. **plan the backbone** over the tiny abstract network, then derive
   per-domain boundary contracts from the abstract plan's exact
   execution (:mod:`repro.hierarchy.contracts`);
4. **fan out** the concrete per-domain subproblems (over the
   :class:`~repro.parallel.WorkerPool` when asked) and **stitch** the
   sub-plans back into one sequence, validated action-by-action with the
   exact :class:`~repro.planner.PlanExecutor`
   (:mod:`repro.hierarchy.stitch`);
5. on any miss — unpartitionable network, infeasible subproblem, stitch
   validation failure — walk the **fallback ladder**: flat planning on
   the widened union subnetwork, then flat planning on the full network
   (:mod:`repro.hierarchy.solve`).

The result is correct by construction (only the exact executor ever
accepts a plan) and byte-identical across worker counts (domain tasks
are derived from the abstract plan alone, never from each other).
"""

from .abstraction import AbstractionResult, abstract_network, domain_envelope
from .contracts import BoundaryContract, DomainProblem, derive_contracts
from .solve import HierarchyConfig, HierarchyOutcome, solve_hierarchical
from .stitch import StitchError, place_subject, stitch_hierarchical

__all__ = [
    "AbstractionResult",
    "abstract_network",
    "domain_envelope",
    "BoundaryContract",
    "DomainProblem",
    "derive_contracts",
    "HierarchyConfig",
    "HierarchyOutcome",
    "solve_hierarchical",
    "StitchError",
    "place_subject",
    "stitch_hierarchical",
]
