"""Gateway abstraction: collapse stub domains to capacity envelopes.

The abstract network keeps the backbone verbatim — every transit node,
every transit link, and every attachment link, with their real
capacities — and replaces each *included* stub domain by a single
representative node that reuses the gateway's node id.  Reusing the real
id is load-bearing: backbone-level ground actions (``cross`` over an
attachment link, ``place`` on a transit node) carry node ids in their
names, so they resolve verbatim against the concrete network when the
stitched plan is validated.

The representative's capacity is the **domain envelope**: per resource,
the interval ``[best single node, sum over all members]`` built with the
PR-6 interval machinery.  The abstract node advertises the upper end
(the sum), which makes the abstraction a relaxation — anything feasible
on the concrete domain (placements spread over members, intra-LAN
crossings free of backbone budgets) is feasible on the representative,
so a backbone-infeasible abstract problem proves the concrete problem
backbone-infeasible, never the other way around.  The price is the
converse gap: an abstract placement may not fit any *single* concrete
node — that is caught later, when the domain subproblem is solved
concretely and, ultimately, by exact stitch validation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..intervals import Interval
from ..network import Network
from ..network.partition import StubDomain, TransitStubPartition

__all__ = ["AbstractionResult", "domain_envelope", "abstract_network"]


@dataclass(frozen=True)
class AbstractionResult:
    """The abstract backbone network plus the concrete→abstract node map."""

    network: Network
    included: tuple[StubDomain, ...]
    rep_of: dict[str, str]
    """Concrete node id → representative node id, for members of included
    domains.  Backbone nodes map to themselves (identity is implicit)."""
    envelopes: dict[str, dict[str, Interval]]
    """Domain key → resource → ``[max single capacity, summed capacity]``."""

    def to_abstract(self, node_id: str) -> str:
        """The abstract node standing in for a concrete node."""
        return self.rep_of.get(node_id, node_id)


def domain_envelope(net: Network, domain: StubDomain) -> dict[str, Interval]:
    """Per-resource capacity envelope ``[max single node, sum]`` of a domain.

    The lower end is what any one placement is guaranteed to find on some
    member; the upper end is the aggregate the whole domain can absorb.
    Soundness (tested property-style): for every resource, every member's
    capacity lies inside the envelope, and the abstract node's advertised
    capacity (the upper end) dominates any single member.
    """
    envelope: dict[str, Interval] = {}
    resources: set[str] = set()
    for member in domain.members:
        resources |= set(net.node(member).resources)
    for res in sorted(resources):
        values = [net.node(member).capacity(res) for member in domain.members]
        envelope[res] = Interval.closed(max(values), sum(values))
    return envelope


def abstract_network(
    net: Network,
    partition: TransitStubPartition,
    include: frozenset[str] | set[str],
) -> AbstractionResult:
    """Build the abstract backbone network.

    ``include`` names the stub domains (by key) that get a representative
    node; every other domain is dropped entirely — a domain that hosts no
    pinned component and is not forced by the caller cannot appear in a
    cost-optimal backbone routing, because stub representatives are leaf
    nodes (detouring through one only adds crossings).
    """
    abstract = Network(f"{net.name}#abstract")
    for node_id in partition.transit_nodes:
        node = net.node(node_id)
        abstract.add_node(
            node_id, dict(node.resources), labels=set(node.labels), software=node.software
        )
    for link in net.links.values():
        if link.a in abstract and link.b in abstract:
            abstract.add_link(link.a, link.b, dict(link.resources), labels=set(link.labels))

    included: list[StubDomain] = []
    rep_of: dict[str, str] = {}
    envelopes: dict[str, dict[str, Interval]] = {}
    for domain in partition.domains:
        if domain.key not in include:
            continue
        included.append(domain)
        envelope = domain_envelope(net, domain)
        envelopes[domain.key] = envelope
        gateway_node = net.node(domain.gateway)
        abstract.add_node(
            domain.key,
            {res: iv.hi for res, iv in envelope.items()},
            labels=set(gateway_node.labels) | {"abstract"},
        )
        attach = net.link(domain.gateway, domain.attach_transit)
        abstract.add_link(
            domain.gateway,
            domain.attach_transit,
            dict(attach.resources),
            labels=set(attach.labels),
        )
        for member in domain.members:
            rep_of[member] = domain.key
    return AbstractionResult(
        network=abstract,
        included=tuple(included),
        rep_of=rep_of,
        envelopes=envelopes,
    )
