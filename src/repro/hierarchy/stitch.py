"""Stitch per-domain sub-plans and the backbone skeleton into one plan.

The stitched sequence is assembled purely positionally from the abstract
plan's action order:

* source domains (no ingress contract) run their sub-plans first, in
  domain-key order — they only *produce* streams at their gateways;
* the backbone skeleton then runs in abstract-plan order (transit
  placements and every kept crossing, boundary crossings included);
* a consuming domain's sub-plan is spliced immediately after the **last**
  ingress crossing into it, so every stream its gateway expects has
  arrived by the time its actions run.

A domain that both receives and sends (its first egress crossing
precedes its last ingress) cannot be linearized this way and raises
:class:`StitchError` — the caller widens to flat planning.

Synthetic boundary components never reach the stitched plan: ingress
sources are *initially placed* in the sub-app (they contribute no action
at all), and egress goal placements are recognized by name and dropped
here.  Every remaining name must resolve in the union problem — same
app, same leveling, and node/link capacities identical to the sub- and
abstract networks, so the grounder emits byte-identical action names.

The result is then executed action-by-action with the exact
:class:`~repro.planner.PlanExecutor` against the union subnetwork's
initial state.  By locality of execution (an action only reads and
writes variables of the nodes and links it names), a sequence that
executes cleanly on the union subnetwork executes identically on the
full network — the union problem *is* the certificate.
"""

from __future__ import annotations

from ..compile import CompiledProblem, GroundAction
from ..planner.errors import ExecutionError
from ..planner.executor import ExecutionReport, PlanExecutor
from .contracts import AbstractDecomposition

__all__ = ["StitchError", "place_subject", "stitch_hierarchical"]


class StitchError(Exception):
    """The decomposition does not linearize or does not validate."""


def place_subject(name: str) -> str | None:
    """The component a ``place(...)`` ground-action name places, else None."""
    if not name.startswith("place("):
        return None
    return name[len("place(") :].split(",", 1)[0]


def stitch_hierarchical(
    union_problem: CompiledProblem,
    decomposition: AbstractDecomposition,
    domain_plans: dict[str, tuple[str, ...]],
    synthetic: dict[str, frozenset[str]],
) -> tuple[list[GroundAction], ExecutionReport]:
    """Resolve, order, and exactly validate the stitched sequence.

    ``domain_plans`` maps domain key → the domain sub-plan's action
    names; ``synthetic`` maps domain key → its synthetic component names
    (whose placements are stripped).  Raises :class:`StitchError` on an
    unlinearizable decomposition, an unresolvable action name, or an
    exact-execution failure — all three mean "fall back", never "ship a
    wrong plan".
    """
    last_in: dict[str, int] = {}
    first_out: dict[str, int] = {}
    for position, entry in enumerate(decomposition.skeleton):
        if entry.domain is None:
            continue
        if entry.direction == "in":
            last_in[entry.domain] = position
        elif entry.domain not in first_out:
            first_out[entry.domain] = position
    for key, out_pos in first_out.items():
        if key in last_in and out_pos < last_in[key]:
            raise StitchError(
                f"domain {key} sends (position {out_pos}) before it has finished "
                f"receiving (position {last_in[key]}); cannot linearize"
            )

    def domain_names(key: str) -> list[str]:
        stripped = synthetic.get(key, frozenset())
        names = []
        for name in domain_plans.get(key, ()):
            subject = place_subject(name)
            if subject is not None and subject in stripped:
                continue
            names.append(name)
        return names

    ordered: list[str] = []
    spliced: set[str] = set()
    for key in sorted(domain_plans):
        if key not in last_in:  # pure source (or isolated) domain
            ordered.extend(domain_names(key))
            spliced.add(key)
    for position, entry in enumerate(decomposition.skeleton):
        ordered.append(entry.name)
        for key, pos in last_in.items():
            if pos == position and key not in spliced:
                ordered.extend(domain_names(key))
                spliced.add(key)
    missing = sorted(set(domain_plans) - spliced)
    if missing:
        raise StitchError(f"domains {missing} were never spliced into the skeleton")

    by_name = {a.name: a for a in union_problem.actions}
    actions: list[GroundAction] = []
    for name in ordered:
        action = by_name.get(name)
        if action is None:
            raise StitchError(
                f"stitched action {name!r} does not exist in the union problem "
                "(level grounding diverged between the planning scopes)"
            )
        actions.append(action)

    executor = PlanExecutor(union_problem)
    for action in actions:
        try:
            executor.step(action)
        except ExecutionError as exc:
            raise StitchError(f"stitched plan failed exact validation: {exc}") from exc
    return actions, executor.report()
