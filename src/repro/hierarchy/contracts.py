"""Boundary contracts: from an abstract plan to concrete domain subproblems.

The abstract (backbone) plan fixes *what crosses each stub's attachment
link, committed at which level*.  Executing it exactly with the
:class:`~repro.planner.PlanExecutor` yields, per boundary crossing:

* **ingress** (into a stub): the exact post-crossing stream value at the
  representative node — the value the concrete domain will really see
  arriving at its gateway, because every upstream value is either pinned
  by a committed level cap or by a link capacity, and those are identical
  in the abstract and concrete networks;
* **egress** (out of a stub): the committed-level floor the crossing
  relies on — the minimum the concrete domain must deliver at its
  gateway for the backbone chain to stay level-feasible.  (The exact
  delivered value is re-checked end-to-end by stitch validation.)

Each involved domain then becomes an ordinary flat planning problem over
its own members only, with synthetic boundary components standing in for
the rest of the world: a pre-placed ``_In<iface>`` source at the gateway
produces each ingress stream at its exact contract value, and a
zero-cost ``_Out<iface>`` goal at the gateway demands each egress stream
at its contract value.  Components the original app pins outside the
domain are removed (so the domain planner cannot re-place a component
the backbone already owns); unpinned components stay available
everywhere — the domain planner decides locally whether to split,
compress, or merge, exactly as the flat planner would.

Contract values travel into formulas via ``repr`` (round-trip exact for
floats); a value whose repr the formula parser cannot digest surfaces as
a :class:`ContractError` and the caller falls back to flat planning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compile import GroundAction, iface_prop_var
from ..model import AppSpec, ComponentSpec, Placement
from ..network import Network
from ..network.partition import StubDomain
from ..planner.executor import PlanExecutor
from .abstraction import AbstractionResult

__all__ = [
    "ContractError",
    "BoundaryContract",
    "SkeletonEntry",
    "AbstractDecomposition",
    "derive_contracts",
    "DomainProblem",
    "build_domain_problem",
    "abstracted_app",
    "INGRESS_PREFIX",
    "EGRESS_PREFIX",
]

INGRESS_PREFIX = "_In"
EGRESS_PREFIX = "_Out"


class ContractError(Exception):
    """The abstract plan does not decompose into clean domain contracts."""


@dataclass(frozen=True)
class BoundaryContract:
    """One stream crossing a domain's attachment link, with its exact value."""

    domain: str
    iface: str
    prop: str
    direction: str  # "in" | "out"
    value: float
    position: int
    """Index of the crossing in the abstract plan's action order."""
    action_name: str


@dataclass(frozen=True)
class SkeletonEntry:
    """One abstract-plan action kept in the stitched sequence."""

    name: str
    domain: str | None = None
    direction: str | None = None  # boundary crossings only


@dataclass(frozen=True)
class AbstractDecomposition:
    """Everything the stitcher needs from one abstract plan execution."""

    skeleton: tuple[SkeletonEntry, ...]
    contracts: tuple[BoundaryContract, ...]
    dropped_interior: tuple[str, ...]
    """Abstract placements on representative nodes — re-decided concretely
    by the domain subproblems, never copied into the stitched plan."""

    def domain_contracts(self, key: str) -> tuple[BoundaryContract, ...]:
        return tuple(c for c in self.contracts if c.domain == key)


def derive_contracts(
    problem,
    actions: list[GroundAction],
    abstraction: AbstractionResult,
) -> AbstractDecomposition:
    """Execute the abstract plan exactly and split it at domain boundaries.

    Raises :class:`ContractError` when the same (domain, interface,
    direction) boundary is crossed twice — the synthetic sub-app can
    carry only one contract per stream and direction, and a plan that
    re-crosses the same attachment link with the same stream is never
    cost-optimal anyway.
    """
    rep_keys = {d.key for d in abstraction.included}
    executor = PlanExecutor(problem)
    skeleton: list[SkeletonEntry] = []
    contracts: list[BoundaryContract] = []
    dropped: list[str] = []
    seen: set[tuple[str, str, str, str]] = set()
    for position, action in enumerate(actions):
        step = executor.step(action)
        if action.kind == "place":
            if action.node in rep_keys:
                dropped.append(action.name)
            else:
                skeleton.append(SkeletonEntry(action.name))
            continue
        domain: str | None = None
        direction: str | None = None
        if action.dst in rep_keys:
            domain, direction = action.dst, "in"
        elif action.src in rep_keys:
            domain, direction = action.src, "out"
        skeleton.append(SkeletonEntry(action.name, domain=domain, direction=direction))
        if domain is None:
            continue
        iface = action.subject
        props = sorted(
            spec_var.split(".", 1)[1]
            for spec_var in step.inputs
            if spec_var.startswith(f"{iface}.")
        )
        if not props:
            raise ContractError(
                f"boundary crossing {action.name} processed no {iface} stream input"
            )
        for prop in props:
            key = (domain, iface, prop, direction)
            if key in seen:
                raise ContractError(
                    f"domain {domain} crossed {iface}.{prop} {direction} twice "
                    f"(second at {action.name}); cannot derive a single contract"
                )
            seen.add(key)
            if direction == "in":
                value = step.outputs[iface_prop_var(prop, iface, domain)]
            else:
                # The domain must deliver what the boundary crossing *relies
                # on*: its committed level's guaranteed floor.  Demanding the
                # exact capped input instead would force the domain planner
                # one level up (a ">= exact-hi" condition is only level-
                # guaranteed by the next level), losing cost parity with flat.
                committed = action.committed.get(f"{iface}.{prop}")
                if committed is not None:
                    value = committed.lo
                else:
                    value = step.inputs[f"{iface}.{prop}"]
            contracts.append(
                BoundaryContract(
                    domain=domain,
                    iface=iface,
                    prop=prop,
                    direction=direction,
                    value=value,
                    position=position,
                    action_name=action.name,
                )
            )
    return AbstractDecomposition(
        skeleton=tuple(skeleton),
        contracts=tuple(contracts),
        dropped_interior=tuple(dropped),
    )


@dataclass
class DomainProblem:
    """One stub domain's concrete subproblem, ready for a flat solve."""

    domain: StubDomain
    app: AppSpec
    network: Network
    ingress: tuple[BoundaryContract, ...]
    egress: tuple[BoundaryContract, ...]

    @property
    def synthetic_components(self) -> frozenset[str]:
        return frozenset(
            name
            for name in self.app.components
            if name.startswith(INGRESS_PREFIX) or name.startswith(EGRESS_PREFIX)
        )


def build_domain_problem(
    app: AppSpec,
    net: Network,
    domain: StubDomain,
    contracts: tuple[BoundaryContract, ...],
) -> DomainProblem:
    """Assemble the synthetic sub-app and sub-network for one domain."""
    members = set(domain.members)
    ingress = tuple(c for c in contracts if c.direction == "in")
    egress = tuple(c for c in contracts if c.direction == "out")

    components: dict[str, ComponentSpec] = {}
    for name, spec in app.components.items():
        pin = app.pinned.get(name)
        if pin is not None and pin not in members:
            continue  # owned by the backbone or another domain
        components[name] = spec

    for iface in sorted({c.iface for c in ingress}):
        effects = [
            f"{c.iface}.{c.prop} := {c.value!r}" for c in ingress if c.iface == iface
        ]
        components[f"{INGRESS_PREFIX}{iface}"] = ComponentSpec.parse(
            f"{INGRESS_PREFIX}{iface}", implements=[iface], effects=effects, cost="0"
        )
    for iface in sorted({c.iface for c in egress}):
        conditions = [
            f"{c.iface}.{c.prop} >= {c.value!r}" for c in egress if c.iface == iface
        ]
        components[f"{EGRESS_PREFIX}{iface}"] = ComponentSpec.parse(
            f"{EGRESS_PREFIX}{iface}", requires=[iface], conditions=conditions, cost="0"
        )

    initial = [p for p in app.initial_placements if p.node in members]
    initial += [
        Placement(f"{INGRESS_PREFIX}{iface}", domain.gateway)
        for iface in sorted({c.iface for c in ingress})
    ]
    goals = [p for p in app.goal_placements if p.node in members]
    goals += [
        Placement(f"{EGRESS_PREFIX}{iface}", domain.gateway)
        for iface in sorted({c.iface for c in egress})
    ]
    if not goals:
        raise ContractError(
            f"domain {domain.key} has neither goal placements nor egress "
            "contracts; it should not have been involved at all"
        )
    pinned = {p.component: p.node for p in initial + goals}
    for comp, node in app.pinned.items():
        if comp in components and node in members:
            pinned.setdefault(comp, node)

    sub_app = AppSpec(
        name=f"{app.name}#dom-{domain.key}",
        interfaces=dict(app.interfaces),
        components=components,
        resources=app.resources,
        initial_placements=tuple(initial),
        goal_placements=tuple(goals),
        pinned=pinned,
    )

    sub_net = Network(f"{net.name}#dom-{domain.key}")
    for member in domain.members:
        node = net.node(member)
        sub_net.add_node(
            member, dict(node.resources), labels=set(node.labels), software=node.software
        )
    for link in net.links.values():
        if link.a in members and link.b in members:
            sub_net.add_link(link.a, link.b, dict(link.resources), labels=set(link.labels))

    return DomainProblem(
        domain=domain, app=sub_app, network=sub_net, ingress=ingress, egress=egress
    )


def abstracted_app(app: AppSpec, abstraction: AbstractionResult) -> AppSpec:
    """The original app with every placement retargeted to abstract nodes."""
    to_abstract = abstraction.to_abstract
    return AppSpec(
        name=f"{app.name}#abstract",
        interfaces=dict(app.interfaces),
        components=dict(app.components),
        resources=app.resources,
        initial_placements=tuple(
            Placement(p.component, to_abstract(p.node)) for p in app.initial_placements
        ),
        goal_placements=tuple(
            Placement(p.component, to_abstract(p.node)) for p in app.goal_placements
        ),
        pinned={comp: to_abstract(node) for comp, node in app.pinned.items()},
    )
