"""The hierarchical solve entry point and its fallback ladder.

:func:`solve_hierarchical` is the domain-decomposed counterpart of
:meth:`repro.planner.Planner.solve`.  It never grounds the full network:
the backbone is planned over the tiny abstract network, each involved
stub domain is planned over its own members, and only the *union
subnetwork* (involved stubs + backbone) is compiled to validate the
stitched result — at 10k nodes that is the difference between grounding
tens of nodes and grounding all ten thousand.

Correctness comes from the exact executor, not from the decomposition:
the stitched sequence must execute cleanly on the union subnetwork, and
by locality of execution (see :mod:`repro.hierarchy.stitch`) that
certificate transfers verbatim to the full network.  Whenever any stage
misses, the **fallback ladder** walks down:

1. ``hierarchical`` — partition, abstract, fan out, stitch, validate;
2. ``widened`` — flat planning on the union subnetwork (the boundary is
   widened from per-domain contracts to the whole involved region);
3. ``flat`` — flat planning on the full network, bit-for-bit what a
   non-hierarchical solve would do.

With telemetry attached, the stages run under ``hierarchy.partition`` /
``hierarchy.abstract`` / ``hierarchy.stitch`` spans, the
``hierarchy.domains`` counter records fan-out width, and
``hierarchy.stitch.retries`` counts every rung the ladder had to walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..model import AppSpec, Leveling
from ..network import Network
from ..network.partition import PartitionError, partition_transit_stub
from ..obs import Telemetry, maybe_span
from ..planner.errors import PlanningError
from ..planner.plan import Plan
from ..planner.planner import Planner, PlannerConfig
from ..planner.stats import PlannerStats
from .abstraction import abstract_network
from .contracts import (
    ContractError,
    abstracted_app,
    build_domain_problem,
    derive_contracts,
)
from .stitch import StitchError, stitch_hierarchical

__all__ = ["HierarchyConfig", "HierarchyOutcome", "solve_hierarchical"]


@dataclass(frozen=True)
class HierarchyConfig:
    """Knobs of the hierarchical path (``PlannerConfig.hierarchy``)."""

    workers: int = 1
    """Domain-subproblem fan-out width.  ``1`` solves domains in-process
    (same task payloads, same results — byte-identical by construction);
    ``>1`` dispatches over a supervised spawn pool."""
    use_cache: bool = True
    """Route domain/union compilations through the process-global
    warm-start compile caches."""
    fallback: bool = True
    """Walk the widened/flat rungs on a miss.  ``False`` raises the
    triggering error instead — used by tests that must observe the
    hierarchical path itself."""
    domain_rg_node_budget: int = 200_000
    backbone_rg_node_budget: int = 200_000


@dataclass
class HierarchyOutcome:
    """What the ladder produced, and how it got there."""

    plan: Plan | None
    mode: str = "hierarchical"  # "hierarchical" | "widened" | "flat"
    domains: int = 0
    stitch_retries: int = 0
    failure: str = ""
    notes: list[str] = field(default_factory=list)

    @property
    def solved(self) -> bool:
        return self.plan is not None

    def describe(self) -> str:
        lines = list(self.notes)
        if self.solved:
            lines.append(
                f"=> {self.mode} plan: {len(self.plan)} actions, "
                f"cost lower bound {self.plan.cost_lb:g}"
            )
        else:
            lines.append(f"=> no plan ({self.failure})")
        return "\n".join(lines)


def solve_hierarchical(
    app: AppSpec,
    network: Network,
    leveling: Leveling | None = None,
    config: HierarchyConfig | None = None,
    planner_config: PlannerConfig | None = None,
    telemetry: Telemetry | None = None,
) -> HierarchyOutcome:
    """Solve by domain decomposition, falling back to flat planning.

    ``planner_config`` seeds the flat-planner settings used at every
    stage (budgets, validation, static pruning ...); ``leveling`` and
    ``telemetry`` default from it.  Planning failures that no rung can
    absorb (e.g. a logically unsolvable goal, reported by the final flat
    rung) propagate as the usual :class:`~repro.planner.PlanningError`
    subclasses so callers see exactly what a flat solve would raise.
    """
    cfg = config or HierarchyConfig()
    base = planner_config or PlannerConfig()
    if leveling is None:
        leveling = base.leveling
    tele = telemetry if telemetry is not None else base.telemetry
    base = replace(base, leveling=leveling, telemetry=tele, hierarchy=None)
    outcome = HierarchyOutcome(plan=None)

    def note(text: str) -> None:
        outcome.notes.append(text)

    def count_retry() -> None:
        outcome.stitch_retries += 1
        if tele is not None:
            tele.metrics.inc("hierarchy.stitch.retries")

    def flat(scope: Network, mode: str) -> HierarchyOutcome:
        plan = Planner(base).solve(app, scope)
        outcome.plan = plan
        outcome.mode = mode
        return outcome

    # -- rung 1: partition + abstract + fan out + stitch -----------------------
    try:
        with maybe_span(tele, "hierarchy.partition", network=network.name) as span:
            partition = partition_transit_stub(network)
            involved = _involved_domains(app, partition)
            if span is not None:
                span.attrs.update(domains=len(partition.domains), involved=len(involved))
        outcome.domains = len(involved)
        if tele is not None:
            tele.metrics.inc("hierarchy.domains", len(involved))

        with maybe_span(tele, "hierarchy.abstract", included=len(involved)):
            abstraction = abstract_network(network, partition, involved)
            abs_app = abstracted_app(app, abstraction)
            abs_config = replace(
                base, rg_node_budget=cfg.backbone_rg_node_budget, validate=True
            )
            abs_plan = Planner(abs_config).solve(abs_app, abstraction.network)
            decomposition = derive_contracts(abs_plan.problem, abs_plan.actions, abstraction)

        domain_problems = [
            build_domain_problem(
                app, network, domain, decomposition.domain_contracts(domain.key)
            )
            for domain in abstraction.included
        ]
        results = _solve_domains(domain_problems, leveling, cfg, tele)
        failed = [r for r in results if not r.solved]
        if failed:
            raise StitchError(
                "domain subproblems failed: "
                + ", ".join(f"{r.domain} ({r.failure})" for r in failed)
            )

        with maybe_span(tele, "hierarchy.stitch", domains=len(results)) as span:
            union_net = _union_network(network, partition, abstraction.included)
            union_problem = Planner(base).compile(app, union_net)
            actions, report = stitch_hierarchical(
                union_problem,
                decomposition,
                {r.domain: r.action_names for r in results},
                {p.domain.key: p.synthetic_components for p in domain_problems},
            )
            if span is not None:
                span.attrs.update(actions=len(actions), cost=report.total_cost)
        stats = PlannerStats(
            total_actions=len(union_problem.actions),
            compile_ms=union_problem.compile_seconds * 1e3,
        )
        outcome.plan = Plan(
            problem=union_problem,
            actions=actions,
            cost_lb=sum(a.cost_lb for a in actions),
            stats=stats,
        )
        outcome.plan._report = report
        outcome.mode = "hierarchical"
        return outcome
    except (PartitionError, ContractError, StitchError, PlanningError) as exc:
        if not cfg.fallback:
            raise
        note(f"hierarchical: {type(exc).__name__}: {exc}")
        outcome.failure = type(exc).__name__
        widen = not isinstance(exc, (PartitionError, PlanningError))

    # -- rung 2: widened boundary — flat planning on the union subnetwork ------
    if widen:
        count_retry()
        try:
            partition = partition_transit_stub(network)
            involved = _involved_domains(app, partition)
            union_net = _union_network(
                network,
                partition,
                tuple(d for d in partition.domains if d.key in involved),
            )
            plan = flat(union_net, "widened")
            note("widened: solved flat on the union subnetwork")
            return plan
        except (PartitionError, PlanningError) as exc:
            note(f"widened: {type(exc).__name__}: {exc}")
            outcome.failure = type(exc).__name__

    # -- rung 3: flat planning on the full network -----------------------------
    count_retry()
    result = flat(network, "flat")
    note("flat: solved on the full network")
    return result


def _involved_domains(app: AppSpec, partition) -> frozenset[str]:
    """Keys of the stub domains hosting pinned / placed components."""
    nodes = {p.node for p in app.initial_placements}
    nodes |= {p.node for p in app.goal_placements}
    nodes |= set(app.pinned.values())
    involved = set()
    for node in nodes:
        domain = partition.domain_of(node)
        if domain is not None:
            involved.add(domain.key)
    return frozenset(involved)


def _union_network(net: Network, partition, domains) -> Network:
    """Backbone plus the involved stub domains, concrete and verbatim."""
    union = Network(f"{net.name}#union")
    keep = set(partition.transit_nodes)
    for domain in domains:
        keep |= set(domain.members)
    for node_id in sorted(keep):
        node = net.node(node_id)
        union.add_node(
            node_id, dict(node.resources), labels=set(node.labels), software=node.software
        )
    for link in net.links.values():
        if link.a in keep and link.b in keep:
            union.add_link(link.a, link.b, dict(link.resources), labels=set(link.labels))
    return union


def _solve_domains(domain_problems, leveling, cfg: HierarchyConfig, tele):
    """Fan the domain subproblems out (or solve them in-process).

    Task payloads are derived from the abstract plan alone, so serial
    and parallel runs hand identical inputs to identical solvers —
    results are byte-identical at any worker count.
    """
    from ..parallel.workers import DomainTask, run_domain_task

    tasks = [
        DomainTask(
            domain=p.domain.key,
            app=p.app,
            network=p.network,
            leveling=leveling,
            rg_node_budget=cfg.domain_rg_node_budget,
            with_metrics=tele is not None,
            use_cache=cfg.use_cache,
            trace=tele.current_context() if tele is not None else None,
        )
        for p in sorted(domain_problems, key=lambda p: p.domain.key)
    ]
    if not tasks:
        return []
    if cfg.workers <= 1 or len(tasks) == 1:
        results = [run_domain_task(task) for task in tasks]
    else:
        from ..parallel import Supervisor, resolve_workers

        workers = resolve_workers(cfg.workers, len(tasks))
        with Supervisor(workers, telemetry=tele) as pool:
            results = pool.map(run_domain_task, tasks)
    if tele is not None:
        for index, result in enumerate(results):
            tele.stitch_snapshot(result.metrics, worker=index % max(cfg.workers, 1))
            result.metrics.merge_into(tele.metrics)
    return results
