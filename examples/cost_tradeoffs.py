#!/usr/bin/env python
"""Scenario 2 (paper Fig. 5): cost functions steer configuration choice.

Two ways to deliver a 100-unit text stream: raw over a three-link route,
or compressed (Zip/Unzip) over a two-link route whose links only fit the
half-size stream.  Which wins depends on the relative price of link
bandwidth vs node CPU — this example sweeps that ratio and prints the
chosen configuration at each point, locating the crossover.

Run:  python examples/cost_tradeoffs.py
"""

from repro.domains import webservice as ws
from repro.planner import Planner, PlannerConfig


def solve(link_weight: float, cpu_weight: float):
    app = ws.build_app(
        "server", "client", link_weight=link_weight, cpu_weight=cpu_weight
    )
    planner = Planner(PlannerConfig(leveling=ws.ws_leveling()))
    return planner.solve(app, ws.build_network())


def main() -> None:
    print(f"{'link weight':>12} {'cpu weight':>11} {'strategy':>9} "
          f"{'actions':>8} {'cost lb':>8} {'exact':>7}")
    cpu_weight = 1.0
    previous = None
    for link_weight in (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0):
        plan = solve(link_weight, cpu_weight)
        strategy = "zip" if any(a.subject == "WZip" for a in plan.actions) else "raw"
        marker = "  <-- crossover" if previous and strategy != previous else ""
        print(
            f"{link_weight:>12g} {cpu_weight:>11g} {strategy:>9} "
            f"{len(plan):>8} {plan.cost_lb:>8g} {plan.exact_cost:>7g}{marker}"
        )
        previous = strategy

    print("\nThe cheapest plan is not the shortest one (paper §2.3): at high")
    print("link cost the 5-action zip plan beats the 4-action raw plan.")


if __name__ == "__main__":
    main()
