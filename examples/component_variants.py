#!/usr/bin/env python
"""Choosing among compatible component implementations (paper §1).

The CPP includes "choosing amongst compatible components": the same
logical compression service exists as a cheap/weak FastZip and an
expensive/strong DeepZip.  This example sweeps the bottleneck link's
bandwidth and shows the planner switching implementation — and refusing
outright when the required variant cannot afford its CPU.

Run:  python examples/component_variants.py
"""

from repro import report
from repro.domains import variants
from repro.planner import PlanningError, solve

LEV = variants.variants_leveling()


def pipeline_of(plan) -> str:
    subjects = {a.subject for a in plan.actions}
    if "DeepZip" in subjects:
        return "deep (0.4x, CPU T/4)"
    if "FastZip" in subjects:
        return "fast (0.8x, CPU T/20)"
    return "raw (no compression)"


def main() -> None:
    print(f"{'link bw':>8} {'node cpu':>9} {'chosen pipeline':>24} "
          f"{'actions':>8} {'exact cost':>11}")
    for link_bw, node_cpu in [
        (150.0, 100.0),
        (90.0, 100.0),
        (50.0, 100.0),
        (90.0, 20.0),
        (50.0, 20.0),
    ]:
        net = variants.build_network(link_bw=link_bw, node_cpu=node_cpu)
        app = variants.build_app("src", "dst")
        try:
            plan = solve(app, net, LEV)
            print(f"{link_bw:>8g} {node_cpu:>9g} {pipeline_of(plan):>24} "
                  f"{len(plan):>8} {plan.exact_cost:>11g}")
        except PlanningError as exc:
            print(f"{link_bw:>8g} {node_cpu:>9g} {'INFEASIBLE':>24} "
                  f"{'—':>8} {type(exc).__name__:>11}")

    # Render the deep-pipeline deployment as Graphviz DOT.
    net = variants.build_network(link_bw=50.0, node_cpu=100.0)
    plan = solve(variants.build_app("src", "dst"), net, LEV)
    print("\nDOT rendering of the deep-compression deployment:")
    print(report.plan_to_dot(plan))
    print("\nPer-action summary:")
    print(report.plan_summary_table(plan))


if __name__ == "__main__":
    main()
