#!/usr/bin/env python
"""Profile the planner on the Large/C cell — "no optimization without
measuring".

Runs cProfile over compilation and the three planner phases separately
and prints the hottest functions of each, so optimization effort lands
where the time actually goes (historically: interval arithmetic inside
replay for the RG, set hashing inside the SLRG).

Run:  python examples/profile_planner.py [--scenario C] [--top 12]
"""

import argparse
import cProfile
import io
import pstats

from repro.domains import media
from repro.experiments import large_case, scenario
from repro.planner import Planner, PlannerConfig


def profile_block(label: str, fn, top: int) -> None:
    profiler = cProfile.Profile()
    profiler.enable()
    result = fn()
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream).sort_stats("cumulative")
    stats.print_stats(top)
    body = "\n".join(
        line
        for line in stream.getvalue().splitlines()
        if line.strip() and not line.lstrip().startswith(("ncalls", "Ordered", "{"))
    )
    print(f"\n===== {label} =====")
    print(body[:2500])
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="C")
    parser.add_argument("--top", type=int, default=12)
    args = parser.parse_args()

    case = large_case()
    app = media.build_app(case.server, case.client)
    planner = Planner(PlannerConfig(leveling=scenario(args.scenario).leveling()))

    problem = profile_block(
        "compile (grounding + leveling + pruning)",
        lambda: planner.compile(app, case.network),
        args.top,
    )
    plan = profile_block(
        "plan (PLRG + SLRG + RG)",
        lambda: planner.solve(problem=problem),
        args.top,
    )
    profile_block("execute (exact validation)", plan.execute, args.top)

    print("\nphase timings (ms):")
    s = plan.stats
    print(f"  compile {s.compile_ms:.0f} | plrg {s.plrg_ms:.0f} | "
          f"slrg {s.slrg_ms:.0f} | rg {s.rg_ms:.0f}")


if __name__ == "__main__":
    main()
