#!/usr/bin/env python
"""Media stream delivery across the paper's three networks (§4.1).

Reproduces the evaluation walk-through: for each network (Tiny, Small,
Large) and each level scenario (A–E), plan the deployment, execute it
exactly, and print the quality/work numbers of Table 2.

Run:  python examples/media_delivery.py [--networks Tiny Small] [--scenarios B C]
"""

import argparse

from repro.experiments import (
    TABLE2_NETWORKS,
    TABLE2_SCENARIOS,
    render_table1,
    render_table2,
    run_cell,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--networks", nargs="+", default=list(TABLE2_NETWORKS))
    parser.add_argument(
        "--scenarios", nargs="+", default=["A", *TABLE2_SCENARIOS]
    )
    args = parser.parse_args()

    print("Table 1 — resource level scenarios")
    print(render_table1())
    print()

    rows = []
    for net in args.networks:
        for scen in args.scenarios:
            row = run_cell(net, scen)
            rows.append(row)
            status = "ok" if row.solved else f"failed ({row.failure})"
            print(f"  {net}/{scen}: {status}")
    print()
    print("Table 2 — scalability evaluation")
    print(render_table2(rows))

    solved = [r for r in rows if r.solved]
    if solved:
        print("\nPlan for the last solved cell:")
        print(solved[-1].plan.describe())


if __name__ == "__main__":
    main()
