#!/usr/bin/env python
"""Grid task-graph deployment with a latency deadline (paper §1).

The paper's introduction motivates the planner with a grid scenario: map
tasks to hosts, stage logical data, insert compression, and "minimize
resource consumption while meeting specified deadline goals".  This
example deploys a filter→compute workflow across a chain of grid sites
and shows how the deadline steers placement:

* a loose deadline lets the planner keep computation near the data and
  ship only the small result stream;
* a tight deadline renders distant consumers infeasible — detected during
  plan-tail replay, before any search below the violating prefix.

Run:  python examples/grid_workflow.py
"""

from repro.domains import grid
from repro.planner import Planner, PlannerConfig, PlanningError


def deploy(sites: int, deadline: float) -> None:
    net = grid.build_network(sites=sites)
    user = f"site{sites - 1}_worker"
    app = grid.build_app("site0_worker", user, deadline=deadline)
    planner = Planner(PlannerConfig(leveling=grid.grid_leveling()))
    print(f"--- {sites} sites, deadline {deadline:g} ms ---")
    try:
        plan = planner.solve(app, net)
    except PlanningError as exc:
        print(f"infeasible: {type(exc).__name__}: {exc}\n")
        return
    report = plan.execute()
    print(plan.describe())
    print(f"result bandwidth @ user : {report.value(f'ibw:Result@{user}'):g}")
    print(f"result latency   @ user : {report.value(f'lat:Result@{user}'):g} ms")
    print(f"exact plan cost         : {report.total_cost:g}\n")


def main() -> None:
    deploy(sites=3, deadline=40.0)   # comfortable: compute at the source
    deploy(sites=5, deadline=60.0)   # longer haul, still feasible
    deploy(sites=5, deadline=20.0)   # tight: replay rejects every prefix


if __name__ == "__main__":
    main()
