#!/usr/bin/env python
"""Quickstart: solve the paper's Fig. 3 problem in ~20 lines.

A Server on node n0 can produce up to 200 units of a media stream; a
Client on node n1 needs at least 90 units; the link between them carries
only 70.  The original greedy planner fails here — the leveled planner
finds the split/compress deployment of Fig. 4.

Run:  python examples/quickstart.py
"""

from repro import Planner, PlannerConfig, ResourceInfeasible
from repro.baselines import GreedySekitei
from repro.domains import media
from repro.network import pair_network

net = pair_network(cpu=30.0, link_bw=70.0)  # the Tiny network of Fig. 3
app = media.build_app("n0", "n1")           # Server at n0, Client at n1

print("=== greedy Sekitei (no levels) ===")
try:
    GreedySekitei().solve(app, net)
    print("found a plan (unexpected!)")
except ResourceInfeasible as exc:
    print(f"no plan: {exc}\n")

print("=== leveled planner (scenario C: cutpoints 90, 100) ===")
leveling = media.proportional_leveling((90, 100))
plan = Planner(PlannerConfig(leveling=leveling)).solve(app, net)
print(plan.describe())

report = plan.execute()
print(f"\ncost lower bound : {plan.cost_lb:g}")
print(f"exact cost       : {report.total_cost:g}")
print(f"delivered M @ n1 : {report.value('ibw:M@n1'):g} units (client demanded 90)")
print(f"CPU used @ n0    : {report.consumed.get('cpu@n0', 0):g} of 30")
print(f"link bw used     : {report.consumed.get('lbw@n0~n1', 0):g} of 70")
