#!/usr/bin/env python
"""Bring your own domain: specs in the paper's pseudo-XML syntax.

Component and interface specifications can be written exactly as the
paper prints them (Figs. 2 and 6) and parsed with
:func:`repro.parse_spec_text`.  This example defines a tiny video
transcoding pipeline that way, assembles an AppSpec, lints it against
the target network (docs/LINTING.md), and plans a deployment over a
three-node chain.

Run:  python examples/custom_domain.py
"""

from repro import AppSpec, Planner, PlannerConfig, lint_app, parse_spec_text
from repro.model import Leveling, LevelSpec
from repro.network import chain_network

SPEC = """
# interfaces ---------------------------------------------------------
<interface name=HD>
  <cross_effects>
    HD.ibw' := min(HD.ibw, Link.lbw)
    Link.lbw' -= min(HD.ibw, Link.lbw)
  <cost>
    1 + HD.ibw/20

<interface name=SD>
  <cross_effects>
    SD.ibw' := min(SD.ibw, Link.lbw)
    Link.lbw' -= min(SD.ibw, Link.lbw)
  <cost>
    1 + SD.ibw/20

# components ---------------------------------------------------------
<component name=Camera>
  <linkages>
    <implements>
      <interface name=HD>
  <effects>
    HD.ibw := 80

<component name=Transcoder>
  <linkages>
    <requires>
      <interface name=HD>
    <implements>
      <interface name=SD>
  <conditions>
    Node.cpu >= HD.ibw/4
  <effects>
    SD.ibw := HD.ibw/4
    Node.cpu -= HD.ibw/4
  <cost>
    1 + HD.ibw/10

<component name=Viewer>
  <linkages>
    <requires>
      <interface name=SD>
  <conditions>
    SD.ibw >= 15
  <cost>
    1
"""


def main() -> None:
    parsed = parse_spec_text(SPEC)
    print(f"parsed {len(parsed.components)} components, "
          f"{len(parsed.interfaces)} interfaces")

    app = AppSpec.build(
        name="video-pipeline",
        interfaces=parsed.interfaces,
        components=parsed.components,
        initial=[("Camera", "n0")],
        goals=[("Viewer", "n2")],
    )

    # The middle link only fits the transcoded stream (80 > 30 >= 20).
    net = chain_network([(100, "LAN"), (30, "WAN")], cpu=40.0, name="studio")

    leveling = Leveling(
        {"HD.ibw": LevelSpec((40.0, 80.0)), "SD.ibw": LevelSpec((10.0, 20.0))},
        name="video",
    )

    # Lint before planning: hand-written specs earn typos, and a lint
    # report beats a planner failure three phases later.  (Equivalent to
    # `python -m repro lint ...`, or PlannerConfig(strict=True).)
    report = lint_app(app, net, leveling)
    print(report.render_text())
    if report.has_errors():
        raise SystemExit(1)

    plan = Planner(PlannerConfig(leveling=leveling)).solve(app, net)
    print(plan.describe())
    report = plan.execute()
    print(f"\nSD stream at the viewer: {report.value('ibw:SD@n2'):g} units")
    print(f"exact cost: {report.total_cost:g}")


if __name__ == "__main__":
    main()
