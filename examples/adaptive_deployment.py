#!/usr/bin/env python
"""Adaptive deployment under network churn (paper §6, future work).

The paper closes by proposing to use the planner "for repairing and
adapting existing deployments".  This example deploys the media stream
over a healthy network, then plays a timeline of environment changes —
a LAN degrading to WAN speed, a node losing CPU, a link failing outright
on a ring — repairing the deployment after each event and reporting what
survived, what was replanned, and what each repair cost.

Run:  python examples/adaptive_deployment.py
"""

from repro.domains import media
from repro.network import ring_network
from repro.simulate import LinkChange, LinkFailure, NodeChange, Simulation

LEV = media.proportional_leveling((90, 100))


def main() -> None:
    # A 5-node ring: redundant routes make repairs interesting.
    net = ring_network(5, cpu=30.0, link_bw=150.0, name="campus-ring")
    app = media.build_app("n0", "n2")

    timeline = [
        LinkChange("n1", "n2", "lbw", 70.0),   # the direct route degrades
        NodeChange("n1", "cpu", 5.0),          # relay node loses CPU
        LinkFailure("n1", "n2"),               # then the link dies entirely
        LinkChange("n3", "n4", "lbw", 70.0),   # the detour degrades too
    ]

    sim = Simulation(app, net, LEV, migration_cost_factor=0.5)
    result = sim.run(timeline)
    print(result.describe())

    print("\nStep-by-step detail:")
    for step in result.steps:
        print(f"  event : {step.event.describe()}")
        if step.failed:
            print(f"    -> unrepairable ({step.failure})")
        else:
            print(
                f"    -> kept {step.survived_actions} actions, "
                f"replanned {step.repair_actions}, cost {step.repair_cost:g}"
            )


if __name__ == "__main__":
    main()
