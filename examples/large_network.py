#!/usr/bin/env python
"""Planning at the paper's largest scale: the 93-node GT-ITM network.

Generates the transit-stub topology of Fig. 10, prints its census, then
plans the media delivery between stub domains under scenario C and shows
how little of the network the plan actually touches (the paper: "most of
the nodes of this network do not participate in the plan, but cannot be
statically pruned").

Run:  python examples/large_network.py [--seed 2004] [--scenario C]
"""

import argparse
import time

from repro.domains import media
from repro.experiments import large_case, scenario
from repro.planner import Planner, PlannerConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--scenario", default="C")
    args = parser.parse_args()

    case = large_case(seed=args.seed)
    net = case.network
    print(f"network: {len(net)} nodes, {len(net.links)} links")
    print(f"  transit nodes : {len(net.nodes_with_label('transit'))}")
    print(f"  stub nodes    : {len(net.nodes_with_label('stub'))}")
    print(f"  LAN links     : {len(net.links_with_label('LAN'))} @ 150 units")
    print(f"  WAN links     : {len(net.links_with_label('WAN'))} @ 70 units")
    hops = net.hop_distances(case.server)[case.client]
    print(f"  server {case.server} -> client {case.client}: {hops} hops\n")

    app = media.build_app(case.server, case.client)
    scen = scenario(args.scenario)
    planner = Planner(PlannerConfig(leveling=scen.leveling()))

    t0 = time.perf_counter()
    plan = planner.solve(app, net)
    wall = time.perf_counter() - t0

    print(plan.describe())
    touched = {a.node for a in plan.actions if a.node} | {
        n for a in plan.actions if a.src for n in (a.src, a.dst)
    }
    print(f"\nnodes touched by the plan : {len(touched)} of {len(net)}")
    print(f"ground actions considered : {plan.stats.total_actions}")
    print(f"RG nodes created          : {plan.stats.rg_nodes}")
    print(f"wall time                 : {wall:.2f}s "
          f"(search {plan.stats.search_ms:.0f} ms)")

    report = plan.execute()
    lan = report.max_consumed(case.lan_link_vars())
    print(f"reserved LAN bandwidth    : {lan:g} units")


if __name__ == "__main__":
    main()
