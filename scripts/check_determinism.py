"""Determinism lint: ban nondeterminism sources in the planning core.

The planner's contract (docs/PERFORMANCE.md, tests/parallel/) is that a
solve is a pure function of its inputs: identical plans byte-for-byte
across runs, worker counts, and hosts.  That property is easy to lose to
an innocent-looking ``time.time()`` tiebreak, a ``random`` shuffle, or
iteration over an unordered set.  This checker walks the AST of every
module in the deterministic core — ``planner/``, ``compile/``,
``analysis/``, ``intervals/``, ``expr/`` — and flags:

* calls to wall-clock and entropy sources: ``time.time``,
  ``time.time_ns``, ``datetime.now``/``utcnow``/``today``,
  ``os.urandom``, ``uuid.*``, ``secrets.*`` (``time.perf_counter`` is
  fine: timings are reported, never used to decide anything);
* any import of the ``random``, ``uuid`` or ``secrets`` modules;
* ``for``-loops and comprehensions iterating directly over a set
  literal, ``set(...)``/``frozenset(...)`` call, or ``dict.keys()`` of a
  ``**``-built dict — unless wrapped in ``sorted(...)``.

A line may opt out with a ``# determinism: ok`` comment when the order
provably cannot reach an output (e.g. a membership-only accumulation);
every opt-out is still listed in the report so reviewers see them.

Usage::

    python scripts/check_determinism.py [DIR_OR_FILE ...]

With no arguments, checks the default core directories.  Exits non-zero
on violations.  CI runs this alongside ruff (see .github/workflows).
"""

from __future__ import annotations

import ast
import sys
import tokenize
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DEFAULT_SCOPE = (
    "src/repro/planner",
    "src/repro/compile",
    "src/repro/analysis",
    "src/repro/intervals",
    "src/repro/expr",
)

# Fully-qualified attribute calls that read wall clocks or entropy.
BANNED_CALLS = {
    ("time", "time"): "wall clock",
    ("time", "time_ns"): "wall clock",
    ("datetime", "now"): "wall clock",
    ("datetime", "utcnow"): "wall clock",
    ("datetime", "today"): "wall clock",
    ("date", "today"): "wall clock",
    ("os", "urandom"): "entropy source",
}

# Modules whose very import is suspicious in the deterministic core.
BANNED_MODULES = {"random", "uuid", "secrets"}

PRAGMA = "determinism: ok"


class Violation:
    def __init__(self, path: Path, line: int, message: str, waived: bool = False):
        self.path = path
        self.line = line
        self.message = message
        self.waived = waived

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO) if self.path.is_relative_to(REPO) else self.path
        tag = " (waived by pragma)" if self.waived else ""
        return f"{rel}:{self.line}: {self.message}{tag}"


def _pragma_lines(path: Path) -> set[int]:
    """Lines carrying a ``# determinism: ok`` comment."""
    lines: set[int] = set()
    with tokenize.open(path) as fh:
        try:
            for tok in tokenize.generate_tokens(fh.readline):
                if tok.type == tokenize.COMMENT and PRAGMA in tok.string:
                    lines.add(tok.start[0])
        except tokenize.TokenizeError:
            pass
    return lines


def _is_unordered(node: ast.expr) -> bool:
    """True when iterating ``node`` directly has interpreter-defined order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    # someset | otherset, someset - otherset, ... stay unordered
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.Sub, ast.BitAnd, ast.BitXor)):
        return _is_unordered(node.left) or _is_unordered(node.right)
    return False


class Checker(ast.NodeVisitor):
    def __init__(self, path: Path):
        self.path = path
        self.violations: list[Violation] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.violations.append(Violation(self.path, node.lineno, message))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in BANNED_MODULES:
                self._flag(node, f"import of nondeterministic module {root!r}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in BANNED_MODULES:
            self._flag(node, f"import from nondeterministic module {root!r}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            key = (func.value.id, func.attr)
            if key in BANNED_CALLS:
                self._flag(node, f"call to {'.'.join(key)} ({BANNED_CALLS[key]})")
            elif func.value.id in BANNED_MODULES:
                self._flag(
                    node,
                    f"call into nondeterministic module "
                    f"{func.value.id}.{func.attr}",
                )
        self.generic_visit(node)

    def _check_iter(self, node: ast.expr) -> None:
        if _is_unordered(node):
            self.violations.append(
                Violation(
                    self.path,
                    node.lineno,
                    "iteration over an unordered set expression "
                    "(wrap in sorted(...) or iterate a list)",
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension_generators(self, generators) -> None:
        for gen in generators:
            self._check_iter(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)


def check_file(path: Path) -> list[Violation]:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    checker = Checker(path)
    checker.visit(tree)
    pragmas = _pragma_lines(path)
    for violation in checker.violations:
        if violation.line in pragmas:
            violation.waived = True
    return checker.violations


def iter_files(targets: list[str]) -> list[Path]:
    files: list[Path] = []
    for target in targets:
        path = Path(target)
        if not path.is_absolute():
            path = REPO / path
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def main(argv: list[str]) -> int:
    targets = argv or list(DEFAULT_SCOPE)
    violations: list[Violation] = []
    files = iter_files(targets)
    for path in files:
        violations.extend(check_file(path))
    hard = [v for v in violations if not v.waived]
    waived = [v for v in violations if v.waived]
    for v in waived:
        print(str(v))
    for v in hard:
        print(str(v))
    print(
        f"checked {len(files)} file(s): {len(hard)} violation(s), "
        f"{len(waived)} waived"
    )
    return 1 if hard else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
