#!/usr/bin/env python
"""Diff two BENCH_*.json files: per-headline deltas, regressions flagged.

Usage::

    python scripts/compare_bench.py BASELINE.json CANDIDATE.json [--strict]
    python scripts/compare_bench.py BENCH_pr7.json BENCH_ctl_smoke.json

Both files must be the same benchmark kind (the ``bench`` field —
``replay-engine``, ``parallel-warmstart``, ``static-prune``,
``controller-delta``, ...); mixing kinds is a usage error, not a diff.
The tool walks every numeric leaf both documents share (dotted paths,
list indices), prints the delta per leaf, and *flags* a leaf as a
regression when it moved past ``--tolerance`` (default 10%) in the bad
direction:

* **time-like** fields (``*_ms``, ``*_s``, ``*ms_mean*``, ...) — up is bad;
* **speedup / rate / reduction** fields (``speedup*``, ``hit_rate``,
  ``*_reduction_pct``, ``availability``) — down is bad;
* everything else is informational only (counters like ``rg_nodes`` are
  workload descriptors, not verdicts).

By default the exit code is 0 even with regressions — CI runs this
informationally, timings on shared runners are noisy.  ``--strict``
exits 1 on any flagged regression (for local gating runs).
"""

from __future__ import annotations

import argparse
import json
import sys

# Direction heuristics over dotted-path leaf names (the last component).
TIME_LIKE_SUFFIXES = ("_ms", "_s", "_us")
TIME_LIKE_MARKERS = ("ms_mean", "ms_max", "ttr_ms", "wall_ms", "analysis_ms")
LOWER_IS_BAD = (
    "speedup",
    "hit_rate",
    "availability",
    "reduction_pct",
)

SKIP_KEYS = {"host_cpus", "python", "format", "version", "seed", "rounds"}
"""Environment descriptors — never comparable figures."""


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def numeric_leaves(doc, prefix: str = "") -> dict[str, float]:
    """Flatten every numeric leaf to ``dotted.path -> value``."""
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for key in sorted(doc):
            if key in SKIP_KEYS:
                continue
            out.update(numeric_leaves(doc[key], f"{prefix}{key}."))
    elif isinstance(doc, list):
        for index, item in enumerate(doc):
            out.update(numeric_leaves(item, f"{prefix}{index}."))
    elif _is_number(doc):
        out[prefix.rstrip(".")] = float(doc)
    return out


def direction(path: str) -> str:
    """``'lower'`` (time-like: up is bad), ``'higher'``, or ``'info'``."""
    leaf = path.rsplit(".", 1)[-1]
    if any(marker in leaf for marker in LOWER_IS_BAD):
        return "higher"
    if leaf.endswith(TIME_LIKE_SUFFIXES) or any(m in leaf for m in TIME_LIKE_MARKERS):
        return "lower"
    return "info"


def compare(baseline: dict, candidate: dict, tolerance: float) -> tuple[list, list]:
    """(rows, regressions): per-shared-leaf deltas and the flagged subset.

    Each row is ``(path, base, cand, delta_pct, direction, flagged)``.
    ``delta_pct`` is ``None`` when the baseline value is 0.
    """
    base = numeric_leaves(baseline)
    cand = numeric_leaves(candidate)
    rows = []
    regressions = []
    for path in sorted(set(base) & set(cand)):
        b, c = base[path], cand[path]
        delta_pct = ((c - b) / abs(b) * 100.0) if b != 0 else None
        sense = direction(path)
        flagged = False
        if delta_pct is not None and sense != "info":
            if sense == "lower" and delta_pct > tolerance * 100.0:
                flagged = True
            elif sense == "higher" and delta_pct < -tolerance * 100.0:
                flagged = True
        row = (path, b, c, delta_pct, sense, flagged)
        rows.append(row)
        if flagged:
            regressions.append(row)
    return rows, regressions


def render(rows: list, regressions: list, only_flagged: bool = False) -> str:
    lines = []
    shown = regressions if only_flagged else rows
    for path, b, c, delta_pct, sense, flagged in shown:
        delta = "  n/a " if delta_pct is None else f"{delta_pct:+7.1f}%"
        mark = "  REGRESSION" if flagged else ""
        note = {"lower": " (lower is better)", "higher": " (higher is better)"}.get(
            sense, ""
        )
        lines.append(f"  {path:<60s} {b:>12g} -> {c:>12g}  {delta}{note}{mark}")
    lines.append("")
    lines.append(
        f"{len(rows)} shared numeric leaves, {len(regressions)} regression(s) flagged"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json of the same kind")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help="relative slack before a directional move is flagged (default 0.10)",
    )
    parser.add_argument(
        "--only-flagged",
        action="store_true",
        help="print only flagged regressions, not every shared leaf",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any regression is flagged (default: informational)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.load(open(args.baseline))
        candidate = json.load(open(args.candidate))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"compare_bench: cannot read input: {exc}", file=sys.stderr)
        return 2
    kind_b = baseline.get("bench")
    kind_c = candidate.get("bench")
    if not kind_b or not kind_c:
        print(
            "compare_bench: both files must carry a 'bench' kind field",
            file=sys.stderr,
        )
        return 2
    if kind_b != kind_c:
        print(
            f"compare_bench: benchmark kinds differ: {kind_b!r} vs {kind_c!r} — "
            "compare like with like",
            file=sys.stderr,
        )
        return 2

    rows, regressions = compare(baseline, candidate, args.tolerance)
    if not rows:
        print("compare_bench: no shared numeric leaves — nothing to compare")
        return 0
    print(f"bench kind: {kind_b}  ({args.baseline} -> {args.candidate})")
    print(render(rows, regressions, only_flagged=args.only_flagged))
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
