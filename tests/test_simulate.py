"""Unit tests for the churn simulator."""

import pytest

from repro.domains import media
from repro.network import chain_network, ring_network
from repro.simulate import (
    LinkChange,
    LinkFailure,
    NodeChange,
    Simulation,
    apply_event,
    copy_network,
)

LEV = media.proportional_leveling((90, 100))


class TestEvents:
    def test_link_change(self):
        net = chain_network([(150, "LAN")])
        out = apply_event(net, LinkChange("n0", "n1", "lbw", 70.0))
        assert out.link("n0", "n1").capacity("lbw") == 70.0
        assert net.link("n0", "n1").capacity("lbw") == 150.0  # original untouched

    def test_node_change(self):
        net = chain_network([(150, "LAN")], cpu=30.0)
        out = apply_event(net, NodeChange("n0", "cpu", 5.0))
        assert out.node("n0").capacity("cpu") == 5.0

    def test_link_failure(self):
        net = ring_network(4)
        out = apply_event(net, LinkFailure("n0", "n1"))
        assert not out.has_link("n0", "n1")
        assert out.is_connected()  # the ring reroutes

    def test_unknown_element(self):
        from repro.network import NetworkError

        net = chain_network([(150, "LAN")])
        with pytest.raises(NetworkError):
            apply_event(net, LinkChange("n0", "zzz", "lbw", 1.0))

    def test_copy_independent(self):
        net = chain_network([(150, "LAN")])
        cp = copy_network(net)
        cp.node("n0").resources["cpu"] = 1.0
        assert net.node("n0").capacity("cpu") != 1.0


class TestSimulation:
    def test_quiet_timeline_no_repairs(self):
        net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
        sim = Simulation(media.build_app("n0", "n2"), net, LEV)
        result = sim.run([LinkChange("n0", "n1", "lbw", 140.0)])  # still ample
        assert result.steps[0].repair_actions == 0
        assert result.total_repair_cost == 0.0

    def test_degradation_triggers_repair(self):
        net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
        sim = Simulation(media.build_app("n0", "n2"), net, LEV)
        result = sim.run([LinkChange("n1", "n2", "lbw", 70.0)])
        step = result.steps[0]
        assert not step.failed
        assert step.repair_actions > 0  # the compression pipeline appears
        assert result.total_repair_cost > 0

    def test_partition_then_recovery(self):
        """Losing the only path is an outage; restoring capacity later
        lets the simulator redeploy from scratch."""
        net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
        sim = Simulation(media.build_app("n0", "n2"), net, LEV)
        result = sim.run(
            [
                LinkChange("n1", "n2", "lbw", 10.0),  # below any useful stream
                LinkChange("n1", "n2", "lbw", 150.0),  # recovery
            ]
        )
        assert result.steps[0].failed
        assert not result.steps[1].failed
        assert result.outage_steps == 1

    def test_ring_survives_link_failure(self):
        """On a ring, a failed link reroutes rather than failing."""
        net = ring_network(4, cpu=30.0, link_bw=150.0)
        sim = Simulation(media.build_app("n0", "n2"), net, LEV)
        result = sim.run([LinkFailure("n0", "n1")])
        step = result.steps[0]
        assert not step.failed

    def test_describe(self):
        net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
        sim = Simulation(media.build_app("n0", "n2"), net, LEV)
        result = sim.run([LinkChange("n1", "n2", "lbw", 70.0)])
        text = result.describe()
        assert "initial deployment" in text
        assert "total repair cost" in text


class TestOutagePaths:
    """Recovery semantics around unrepairable steps."""

    OUTAGE = LinkChange("n1", "n2", "lbw", 10.0)  # below any useful stream
    RESTORE = LinkChange("n1", "n2", "lbw", 150.0)
    QUIET = NodeChange("n0", "cpu", 29.0)  # harmless churn during the outage

    def _sim(self, **kwargs):
        net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
        return Simulation(media.build_app("n0", "n2"), net, LEV, **kwargs)

    def test_replan_from_scratch_recovers_after_restoration(self):
        sim = self._sim(replan_from_scratch_on_outage=True)
        result = sim.run([self.OUTAGE, self.QUIET, self.RESTORE, self.QUIET])
        assert [s.failed for s in result.steps] == [True, True, False, False]
        recovery = result.steps[2]
        assert recovery.repair_actions > 0  # a full redeployment, not a delta
        assert recovery.survived_actions == 0
        assert result.steps[3].repair_actions == 0  # steady again afterwards
        assert result.availability == pytest.approx(0.5)

    def test_no_replan_marks_every_subsequent_step_failed(self):
        sim = self._sim(replan_from_scratch_on_outage=False)
        result = sim.run([self.OUTAGE, self.QUIET, self.RESTORE, self.QUIET])
        assert all(s.failed for s in result.steps)
        assert result.outage_steps == 4
        # Steps after the first fail because replanning is disabled, and
        # the recorded reason says so.
        assert "replanning disabled" in result.steps[2].failure

    def test_failure_records_message_not_just_type(self):
        sim = self._sim()
        result = sim.run([self.OUTAGE])
        step = result.steps[0]
        assert step.failed
        head, _, detail = step.failure.partition(":")
        assert head in ("Unsolvable", "ResourceInfeasible", "ValueError")
        assert detail.strip()  # str(exc) travels with the type name

    def test_infeasible_initial_deployment_is_recorded_not_raised(self):
        net = chain_network([(10, "LAN"), (10, "LAN")], cpu=30.0)  # starved
        sim = Simulation(media.build_app("n0", "n2"), net, LEV)
        result = sim.run([self.QUIET])
        assert result.initial_plan is None
        assert result.initial_failure
        assert ":" in result.initial_failure
        assert result.steps == []
        assert result.availability == 0.0
        assert "FAILED" in result.describe()


class TestTotalPlanCost:
    """Regression: repair steps must report the stitched deployment's
    exact cost, not just the (discounted) repair delta."""

    def _sim(self, **kwargs):
        net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
        return Simulation(media.build_app("n0", "n2"), net, LEV, **kwargs)

    def test_repair_step_total_includes_surviving_prefix(self):
        sim = self._sim()
        result = sim.run([LinkChange("n1", "n2", "lbw", 70.0)])
        step = result.steps[0]
        assert not step.failed
        assert step.survived_actions > 0
        assert step.repair_actions > 0
        # The stitched deployment costs strictly more than the delta
        # alone (the surviving prefix's cost was previously dropped).
        assert step.total_plan_cost > step.repair_cost

    def test_quiet_step_total_is_initial_plan_cost(self):
        sim = self._sim()
        result = sim.run([NodeChange("n0", "cpu", 29.0)])
        step = result.steps[0]
        assert step.repair_actions == 0
        assert step.total_plan_cost == pytest.approx(
            result.initial_plan.exact_cost
        )

    def test_from_scratch_step_total_is_fresh_plan_cost(self):
        sim = self._sim(replan_from_scratch_on_outage=True)
        result = sim.run(
            [
                LinkChange("n1", "n2", "lbw", 10.0),  # outage
                LinkChange("n1", "n2", "lbw", 150.0),  # recovery: full replan
            ]
        )
        recovery = result.steps[1]
        assert recovery.survived_actions == 0
        assert recovery.total_plan_cost == pytest.approx(recovery.repair_cost)


class TestDeltaReplanning:
    """delta_replanning is semantically transparent: identical records,
    different compile path."""

    EVENTS = [
        LinkChange("n1", "n2", "lbw", 95.0),
        NodeChange("n1", "cpu", 25.0),
        LinkChange("n1", "n2", "lbw", 150.0),
    ]

    def _run(self, delta: bool) -> dict:
        from repro.parallel import CompileCache

        net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
        cache = CompileCache(max_entries=32)
        sim = Simulation(
            media.build_app("n0", "n2"),
            net,
            LEV,
            compile_cache=cache,
            delta_replanning=delta,
        )
        record = sim.run(list(self.EVENTS)).to_dict()
        record["_delta_hits"] = cache.delta_hits
        return record

    def test_records_identical_with_and_without_delta(self):
        off = self._run(delta=False)
        on = self._run(delta=True)
        hits = on.pop("_delta_hits")
        off.pop("_delta_hits")
        assert on == off
        assert hits > 0  # the delta path actually patched something
