"""Public-API stability tests.

Everything a downstream user is told to import must exist, be exported,
and carry documentation.
"""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.intervals",
    "repro.expr",
    "repro.network",
    "repro.model",
    "repro.compile",
    "repro.planner",
    "repro.baselines",
    "repro.domains",
    "repro.experiments",
    "repro.simulate",
    "repro.report",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_alls_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_readme_quickstart_symbols(self):
        # The exact imports the README shows.
        from repro import Planner, PlannerConfig  # noqa: F401
        from repro.domains import media  # noqa: F401
        from repro.network import pair_network  # noqa: F401

    def test_key_classes_documented(self):
        for obj in (
            repro.Planner,
            repro.PlannerConfig,
            repro.Plan,
            repro.AppSpec,
            repro.ComponentSpec,
            repro.InterfaceType,
            repro.LevelSpec,
            repro.Leveling,
            repro.Network,
            repro.Interval,
            repro.GreedySekitei,
        ):
            assert inspect.getdoc(obj), obj

    def test_public_planner_methods_documented(self):
        for name, member in inspect.getmembers(repro.Planner):
            if name.startswith("_") or not callable(member):
                continue
            assert inspect.getdoc(member), f"Planner.{name} lacks a docstring"
