"""Unit tests for DOT export and plan reporting."""

import pytest

from repro import report
from repro.domains import media
from repro.network import pair_network
from repro.planner import solve


@pytest.fixture(scope="module")
def tiny_plan():
    net = pair_network(cpu=30.0, link_bw=70.0)
    return solve(media.build_app("n0", "n1"), net, media.proportional_leveling((90, 100)))


class TestNetworkDot:
    def test_basic_structure(self):
        dot = report.network_to_dot(pair_network())
        assert dot.startswith('graph "tiny"')
        assert '"n0" -- "n1"' in dot
        assert dot.rstrip().endswith("}")

    def test_resources_labelled(self):
        dot = report.network_to_dot(pair_network(cpu=30.0))
        assert "cpu=30" in dot
        assert "lbw=70" in dot

    def test_resources_suppressible(self):
        dot = report.network_to_dot(pair_network(), label_resources=False)
        assert "cpu=" not in dot

    def test_highlights(self):
        dot = report.network_to_dot(
            pair_network(),
            highlight_nodes={"n0": "Splitter"},
            highlight_links={("n0", "n1"): "Z,I"},
        )
        assert "Splitter" in dot
        assert "Z,I" in dot
        assert "penwidth" in dot

    def test_quoting(self):
        from repro.network import Network

        net = Network('we"ird')
        net.add_node("a")
        dot = report.network_to_dot(net)
        assert r"\"" in dot


class TestPlanDot:
    def test_placements_overlaid(self, tiny_plan):
        dot = report.plan_to_dot(tiny_plan)
        assert "Splitter+Zip" in dot
        assert "Unzip+Merger+Client" in dot

    def test_crossings_overlaid(self, tiny_plan):
        dot = report.plan_to_dot(tiny_plan)
        assert "Z,I" in dot or "I,Z" in dot

    def test_server_shown(self, tiny_plan):
        # Pre-placed components appear too (n0 already has placements,
        # so Server rides along only when the node is otherwise empty).
        dot = report.plan_to_dot(tiny_plan)
        assert "lightblue" in dot

    def test_valid_dot_braces(self, tiny_plan):
        dot = report.plan_to_dot(tiny_plan)
        assert dot.count("{") == dot.count("}") == 1


class TestSummaryTable:
    def test_rows_per_action_plus_total(self, tiny_plan):
        table = report.plan_summary_table(tiny_plan)
        lines = table.splitlines()
        assert len(lines) == 2 + len(tiny_plan) + 1  # header, sep, rows, total

    def test_total_matches_exact_cost(self, tiny_plan):
        table = report.plan_summary_table(tiny_plan)
        assert "TOTAL" in table
        assert f"{tiny_plan.exact_cost:g}" in table

    def test_processed_values_shown(self, tiny_plan):
        table = report.plan_summary_table(tiny_plan)
        assert "M=100" in table
