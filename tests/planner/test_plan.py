"""Unit tests for the Plan representation and persistence."""

import pytest

from repro.domains import media
from repro.network import pair_network
from repro.planner import Plan, Planner, PlannerConfig, solve

LEV = media.proportional_leveling((90, 100))


@pytest.fixture(scope="module")
def plan():
    net = pair_network(cpu=30.0, link_bw=70.0)
    return solve(media.build_app("n0", "n1"), net, LEV)


class TestPlanHelpers:
    def test_len(self, plan):
        assert len(plan) == len(plan.actions) == 7

    def test_placements_and_crossings_partition(self, plan):
        assert len(plan.placements()) + len(plan.crossings()) == len(plan)

    def test_exact_cost_cached(self, plan):
        first = plan.execute()
        second = plan.execute()
        assert first is second

    def test_action_names_unique(self, plan):
        names = plan.action_names()
        assert len(names) == len(set(names))


class TestPersistence:
    def test_round_trip(self, plan):
        data = plan.to_dict()
        again = Plan.from_dict(data, plan.problem)
        assert again.action_names() == plan.action_names()
        assert again.cost_lb == plan.cost_lb
        assert again.execute().total_cost == pytest.approx(plan.exact_cost)

    def test_round_trip_through_json(self, plan, tmp_path):
        import json

        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        again = Plan.from_dict(json.loads(path.read_text()), plan.problem)
        assert len(again) == len(plan)

    def test_round_trip_against_fresh_compile(self, plan):
        """A fresh compilation of the same instance accepts the plan."""
        planner = Planner(PlannerConfig(leveling=LEV))
        fresh = planner.compile(
            media.build_app("n0", "n1"), pair_network(cpu=30.0, link_bw=70.0)
        )
        again = Plan.from_dict(plan.to_dict(), fresh)
        again.execute()

    def test_wrong_problem_rejected(self, plan):
        planner = Planner(PlannerConfig(leveling=media.proportional_leveling((100,))))
        other = planner.compile(
            media.build_app("n0", "n1"), pair_network(cpu=30.0, link_bw=70.0)
        )
        with pytest.raises(KeyError):
            Plan.from_dict(plan.to_dict(), other)

    def test_unknown_format_rejected(self, plan):
        with pytest.raises(ValueError):
            Plan.from_dict({"format": 99, "actions": []}, plan.problem)

    def test_metadata_recorded(self, plan):
        data = plan.to_dict()
        assert data["app"] == "media-delivery"
        assert data["leveling"]
