"""Tests for plan stitching and prefix folding (repro.planner.delta)."""

import pytest

from repro.domains import media
from repro.network import chain_network
from repro.planner import (
    Deployment,
    ExecutionError,
    Planner,
    PlannerConfig,
    fold_prefix,
    parse_stream_var,
    placements_of_names,
    solve,
    stitch_plan,
    surviving_prefix,
)

LEV = media.proportional_leveling((90, 100))


def healthy_chain():
    return chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0, name="before")


class TestParseStreamVar:
    def test_stream_var_round_trip(self):
        assert parse_stream_var("ibw:M@n1") == ("ibw", "M", "n1")

    def test_resource_vars_are_not_streams(self):
        assert parse_stream_var("cpu@n1") is None
        assert parse_stream_var("lbw@n0~n1") is None

    def test_malformed_stream_raises_structured_error(self):
        # Historically this was a bare ValueError from str.split deep in
        # the repair fold; it must be an ExecutionError naming the var.
        with pytest.raises(ExecutionError, match="ibw:M"):
            parse_stream_var("ibw:M")

    def test_empty_parts_raise(self):
        for bad in (":M@n1", "ibw:@n1", "ibw:M@"):
            with pytest.raises(ExecutionError, match="cannot fold"):
                parse_stream_var(bad)


class TestFoldPrefix:
    def test_fold_makes_prefix_state_initial(self):
        app = media.build_app("n0", "n2")
        plan = solve(app, healthy_chain(), LEV)
        problem = Planner(PlannerConfig(leveling=LEV)).compile(app, healthy_chain())
        prefix = surviving_prefix(Deployment.from_plan(plan), problem)
        from repro.planner import PlanExecutor

        executor = PlanExecutor(problem)
        for action in prefix:
            executor.step(action)
        fold_prefix(problem, app, prefix, executor.report())
        for action in prefix:
            assert action.add_props <= problem.initial_prop_ids

    def test_fold_rejects_unknown_interface(self):
        app = media.build_app("n0", "n2")
        problem = Planner(PlannerConfig(leveling=LEV)).compile(app, healthy_chain())
        from repro.planner import ExecutionReport

        report = ExecutionReport(final_values={"ibw:Ghost@n1": 50.0})
        with pytest.raises(ExecutionError, match="no interface 'Ghost'"):
            fold_prefix(problem, app, [], report)


class TestStitchPlan:
    def test_stitch_executes_full_plan(self):
        app = media.build_app("n0", "n2")
        plan = solve(app, healthy_chain(), LEV)
        problem = Planner(PlannerConfig(leveling=LEV)).compile(app, healthy_chain())
        names = plan.action_names()
        stitched = stitch_plan(problem, names[:2], names[2:])
        assert stitched.prefix_len == 2
        assert [a.name for a in stitched.prefix_actions] == names[:2]
        assert [a.name for a in stitched.delta_actions] == names[2:]
        assert stitched.total_cost == pytest.approx(plan.exact_cost)

    def test_missing_action_raises(self):
        app = media.build_app("n0", "n2")
        problem = Planner(PlannerConfig(leveling=LEV)).compile(app, healthy_chain())
        with pytest.raises(ExecutionError, match="does not exist"):
            stitch_plan(problem, ["place(Ghost,n9)"], [])


class TestPlacementsOfNames:
    def test_parses_place_names_only(self):
        names = [
            "place(Server,n0)",
            "cross(M,n0->n1)[90~100]",
            "place(Client,n2)[x]",
        ]
        assert placements_of_names(names) == {"Server": "n0", "Client": "n2"}

    def test_last_placement_wins(self):
        names = ["place(A,n0)", "place(A,n1)"]
        assert placements_of_names(names) == {"A": "n1"}
