"""Unit tests for RG search tracing."""

import pytest

from repro.domains import media
from repro.network import pair_network
from repro.planner import Planner, PlannerConfig, SearchTrace


@pytest.fixture(scope="module")
def traced_plan():
    net = pair_network(cpu=30.0, link_bw=70.0)
    app = media.build_app("n0", "n1")
    config = PlannerConfig(leveling=media.proportional_leveling((90, 100)), trace=True)
    return Planner(config).solve(app, net)


class TestTraceRecording:
    def test_trace_attached(self, traced_plan):
        assert traced_plan.trace is not None

    def test_counters_consistent_with_stats(self, traced_plan):
        trace = traced_plan.trace
        # Root is created before tracing starts; every other RG node is
        # recorded as a create event.
        assert trace.counters["create"] == traced_plan.stats.rg_nodes - 1
        assert trace.counters["expand"] == traced_plan.stats.rg_expanded
        assert trace.counters["terminal"] == 1

    def test_prune_reasons_classified(self, traced_plan):
        reasons = traced_plan.trace.prune_reasons
        assert reasons  # the Tiny problem always prunes something
        assert set(reasons) <= {"replay", "transposition", "heuristic"}

    def test_terminal_cost_matches_plan(self, traced_plan):
        terminal = [e for e in traced_plan.trace.events if e.kind == "terminal"]
        assert len(terminal) == 1
        assert f"{traced_plan.cost_lb:g}" in terminal[0].detail

    def test_summary_readable(self, traced_plan):
        text = traced_plan.trace.summary()
        assert "create" in text and "prune reasons" in text

    def test_tail(self, traced_plan):
        tail = traced_plan.trace.tail(5)
        assert len(tail) <= 5
        assert tail[-1].kind == "terminal"


class TestTraceBounds:
    def test_ring_buffer_bounded(self):
        trace = SearchTrace(max_events=10)
        for i in range(100):
            trace.created(f"a{i}", float(i), i)
        assert len(trace.events) == 10
        assert trace.counters["create"] == 100  # counters never truncate

    def test_disabled_by_default(self):
        net = pair_network(cpu=30.0, link_bw=70.0)
        app = media.build_app("n0", "n1")
        plan = Planner(
            PlannerConfig(leveling=media.proportional_leveling((90, 100)))
        ).solve(app, net)
        assert plan.trace is None
