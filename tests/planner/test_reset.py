"""Regression tests: one Planner reused across solve() calls starts clean.

A Planner (and a shared Telemetry) must not leak per-run state — stats,
replay counters, or trace events — from one ``solve()`` into the next:
the second run of an identical problem must report exactly the numbers a
fresh planner reports.
"""

from dataclasses import fields

import pytest

from repro.domains import media
from repro.network import pair_network
from repro.obs import Telemetry
from repro.planner import Planner, PlannerConfig, PlannerStats

def _instance():
    return media.build_app("n0", "n1"), pair_network(cpu=30.0, link_bw=70.0)


def _counts(stats: PlannerStats) -> dict:
    """The deterministic (non-timing) fields of a stats row."""
    return {
        f.name: getattr(stats, f.name)
        for f in fields(PlannerStats)
        if isinstance(f.default, int)
    }


class TestPlannerReuse:
    def test_second_solve_matches_a_fresh_planner(self):
        app, net = _instance()
        config = PlannerConfig(leveling=media.proportional_leveling((90, 100)))
        reused = Planner(config)
        first = reused.solve(app, net)
        second = reused.solve(app, net)
        fresh = Planner(config).solve(app, net)
        assert _counts(second.stats) == _counts(first.stats) == _counts(fresh.stats)
        assert second.cost_lb == pytest.approx(fresh.cost_lb)
        assert second.action_names() == fresh.action_names()

    def test_trace_counters_do_not_accumulate(self):
        app, net = _instance()
        config = PlannerConfig(
            leveling=media.proportional_leveling((90, 100)), trace=True
        )
        planner = Planner(config)
        first = planner.solve(app, net)
        second = planner.solve(app, net)
        assert second.trace is not first.trace
        assert dict(second.trace.counters) == dict(first.trace.counters)
        assert dict(second.trace.prune_reasons) == dict(first.trace.prune_reasons)
        assert len(second.trace.events) == len(first.trace.events)

    def test_replay_counters_are_per_run(self):
        app, net = _instance()
        config = PlannerConfig(leveling=media.proportional_leveling((90, 100)))
        planner = Planner(config)
        first = planner.solve(app, net)
        second = planner.solve(app, net)
        assert second.stats.rg_replays == first.stats.rg_replays
        assert second.stats.rg_actions_replayed == first.stats.rg_actions_replayed
        assert second.stats.rg_conditions_checked == first.stats.rg_conditions_checked


class TestSharedTelemetry:
    def test_trace_is_fresh_each_run(self):
        app, net = _instance()
        tele = Telemetry()
        config = PlannerConfig(
            leveling=media.proportional_leveling((90, 100)), telemetry=tele
        )
        planner = Planner(config)
        first = planner.solve(app, net)
        first_counters = dict(first.trace.counters)
        second = planner.solve(app, net)
        assert tele.runs == 2
        assert second.trace is not first.trace
        assert dict(second.trace.counters) == first_counters
        assert tele.trace is second.trace  # telemetry points at the latest run

    def test_stat_gauges_describe_the_last_run_only(self):
        app, net = _instance()
        tele = Telemetry()
        config = PlannerConfig(
            leveling=media.proportional_leveling((90, 100)), telemetry=tele
        )
        planner = Planner(config)
        planner.solve(app, net)
        second = planner.solve(app, net)
        restored = _counts(PlannerStats.from_metrics(tele.metrics))
        assert restored == _counts(second.stats)  # not doubled

    def test_spans_and_counters_accumulate_across_runs(self):
        app, net = _instance()
        tele = Telemetry()
        config = PlannerConfig(
            leveling=media.proportional_leveling((90, 100)), telemetry=tele
        )
        planner = Planner(config)
        planner.solve(app, net)
        plans = tele.metrics.get("executor.plans").value
        spans = len(tele.spans)
        planner.solve(app, net)
        assert tele.metrics.get("executor.plans").value == plans * 2
        assert len(tele.spans) == spans * 2
