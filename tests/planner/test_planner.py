"""End-to-end planner tests over the paper's Tiny and Small problems."""

import pytest

from repro.domains.media import build_app, proportional_leveling
from repro.network import chain_network, pair_network
from repro.planner import (
    Heuristic,
    Planner,
    PlannerConfig,
    ResourceInfeasible,
    solve,
)


def tiny_net():
    return pair_network(cpu=30.0, link_bw=70.0)


def small_net():
    return chain_network(
        [(150, "LAN"), (70, "WAN"), (150, "LAN")], cpu=30.0, spurs=2, name="small"
    )


class TestScenario1:
    """Fig. 3/4: greedy fails, leveled planner finds the 7-action plan."""

    def test_greedy_fails(self):
        with pytest.raises(ResourceInfeasible):
            solve(build_app("n0", "n1"), tiny_net(), proportional_leveling(()))

    def test_leveled_succeeds_with_seven_actions(self):
        plan = solve(build_app("n0", "n1"), tiny_net(), proportional_leveling((100,)))
        assert len(plan) == 7
        assert plan.placements() == [
            ("Splitter", "n0"),
            ("Zip", "n0"),
            ("Unzip", "n1"),
            ("Merger", "n1"),
            ("Client", "n1"),
        ] or set(p[0] for p in plan.placements()) == {
            "Splitter",
            "Zip",
            "Unzip",
            "Merger",
            "Client",
        }

    def test_fig4_structure(self):
        plan = solve(build_app("n0", "n1"), tiny_net(), proportional_leveling((90, 100)))
        # Split and compress at the source, reverse at the target.
        placements = dict(plan.placements())
        assert placements["Splitter"] == "n0" and placements["Zip"] == "n0"
        assert placements["Unzip"] == "n1" and placements["Merger"] == "n1"
        assert set(plan.crossings()) == {("Z", "n0", "n1"), ("I", "n0", "n1")}


class TestScenarioQuality:
    """Table 2 quality columns on Tiny and Small."""

    def test_tiny_b_lower_bound_is_plan_length(self):
        plan = solve(build_app("n0", "n1"), tiny_net(), proportional_leveling((100,)))
        assert plan.cost_lb == pytest.approx(float(len(plan)))

    def test_tiny_c_d_same_quality(self):
        c = solve(build_app("n0", "n1"), tiny_net(), proportional_leveling((90, 100)))
        d = solve(build_app("n0", "n1"), tiny_net(), proportional_leveling((30, 70, 90, 100)))
        assert c.cost_lb == pytest.approx(d.cost_lb)
        assert len(c) == len(d) == 7

    def test_small_b_suboptimal_lan_usage(self):
        plan = solve(build_app("n0", "n3"), small_net(), proportional_leveling((100,)))
        report = plan.execute()
        lan = max(report.consumed.get(f"lbw@{k}", 0.0) for k in ("n0~n1", "n2~n3"))
        assert lan == pytest.approx(100.0)

    def test_small_c_optimal_lan_usage(self):
        """The paper's headline number: 65 units instead of 100."""
        plan = solve(build_app("n0", "n3"), small_net(), proportional_leveling((90, 100)))
        report = plan.execute()
        lan = max(report.consumed.get(f"lbw@{k}", 0.0) for k in ("n0~n1", "n2~n3"))
        assert lan == pytest.approx(65.0)

    def test_small_c_longer_but_cheaper_than_b(self):
        b = solve(build_app("n0", "n3"), small_net(), proportional_leveling((100,)))
        c = solve(build_app("n0", "n3"), small_net(), proportional_leveling((90, 100)))
        assert len(c) > len(b)  # more actions...
        assert c.exact_cost < b.exact_cost  # ...but cheaper overall


class TestHeuristics:
    @pytest.mark.parametrize("heuristic", list(Heuristic))
    def test_all_heuristics_agree_on_cost(self, heuristic):
        plan = Planner(
            PlannerConfig(
                leveling=proportional_leveling((90, 100)), heuristic=heuristic
            )
        ).solve(build_app("n0", "n1"), tiny_net())
        assert plan.cost_lb == pytest.approx(40.3)

    def test_slrg_guides_best(self):
        def run(h):
            return Planner(
                PlannerConfig(leveling=proportional_leveling((90, 100)), heuristic=h)
            ).solve(build_app("n0", "n3"), small_net())

        slrg = run(Heuristic.SLRG)
        blind = run(Heuristic.BLIND)
        assert slrg.stats.rg_nodes <= blind.stats.rg_nodes


class TestFacade:
    def test_solve_requires_inputs(self):
        with pytest.raises(ValueError):
            Planner().solve()

    def test_problem_reuse(self):
        planner = Planner(PlannerConfig(leveling=proportional_leveling((90, 100))))
        problem = planner.compile(build_app("n0", "n1"), tiny_net())
        p1 = planner.solve(problem=problem)
        p2 = planner.solve(problem=problem)
        assert p1.cost_lb == p2.cost_lb

    def test_stats_table_row(self):
        plan = solve(build_app("n0", "n1"), tiny_net(), proportional_leveling((90, 100)))
        row = plan.stats.row()
        assert row["total_actions"] > 0
        assert "/" in row["plrg"] and "/" in row["rg"]

    def test_describe_mentions_every_action(self):
        plan = solve(build_app("n0", "n1"), tiny_net(), proportional_leveling((90, 100)))
        text = plan.describe()
        assert text.count("\n") == len(plan)
        assert "place Client on node n1" in text
