"""Unit tests for the post-processing utilization optimizer (§2.3)."""

import pytest

from repro.baselines import GreedySekitei
from repro.domains import media
from repro.network import chain_network, pair_network
from repro.planner import solve
from repro.planner.postopt import post_optimize


class TestPostOptimize:
    def test_shrinks_to_demand(self):
        """A scenario-B plan processes 100 units; post-optimization
        throttles it down towards the 90-unit demand."""
        net = pair_network(cpu=30.0, link_bw=70.0)
        app = media.build_app("n0", "n1")
        plan = solve(app, net, media.proportional_leveling((100,)))
        result = post_optimize(plan.problem, plan.actions)
        assert result.optimized_cost < result.original_cost
        delivered = result.optimized_report.value("ibw:M@n1")
        assert 90.0 - 1e-6 <= delivered <= 92.0  # close to the demand

    def test_paper_585_lan_units_reached(self):
        """Post-optimizing the optimal-structure plan approaches the
        paper's ideal 58.5 LAN units (achievable only with exact 90-unit
        processing)."""
        net = chain_network(
            [(150, "LAN"), (70, "WAN"), (150, "LAN")], cpu=30.0, spurs=2
        )
        app = media.build_app("n0", "n3")
        plan = solve(app, net, media.proportional_leveling((90, 100)))
        result = post_optimize(plan.problem, plan.actions)
        lan = max(
            result.optimized_report.consumed.get(f"lbw@{k}", 0.0)
            for k in ("n0~n1", "n2~n3")
        )
        assert lan == pytest.approx(58.5, abs=0.5)

    def test_cannot_fix_structure(self):
        """The paper's point: post-processing cannot turn the suboptimal
        raw-LAN plan into the split-at-server plan — its LAN reservation
        stays above the structural optimum."""
        net = chain_network(
            [(150, "LAN"), (70, "WAN"), (150, "LAN")], cpu=30.0, spurs=2
        )
        app = media.build_app("n0", "n3")
        b_plan = solve(app, net, media.proportional_leveling((100,)))
        result = post_optimize(b_plan.problem, b_plan.actions)
        lan = max(
            result.optimized_report.consumed.get(f"lbw@{k}", 0.0)
            for k in ("n0~n1", "n2~n3")
        )
        # Shrinks from 100 towards 90 — but the optimal structure's 65/58.5
        # is unreachable without replanning.
        assert 85.0 <= lan <= 100.0
        assert lan > 65.0

    def test_noop_when_demand_equals_capacity(self):
        """When the plan already runs at the minimum, throttle stays ~1."""
        net = pair_network(cpu=100.0, link_bw=250.0)
        app = media.build_app("n0", "n1", source_bw=90.0, demand=90.0)
        plan = solve(app, net, media.proportional_leveling((90,)))
        result = post_optimize(plan.problem, plan.actions)
        assert result.optimized_report.value("ibw:M@n1") >= 90.0 - 1e-6
        assert result.saving <= result.original_cost * 0.05

    def test_greedy_plus_postopt_still_loses_to_leveled(self):
        """Greedy + post-processing vs the leveled planner on a feasible
        instance: the leveled plan structure is at least as cheap."""
        net = pair_network(cpu=100.0, link_bw=250.0)
        app = media.build_app("n0", "n1")
        greedy = GreedySekitei().solve(app, net)
        post = post_optimize(greedy.problem, greedy.actions)
        leveled = solve(app, net, media.proportional_leveling((90, 100)))
        leveled_post = post_optimize(leveled.problem, leveled.actions)
        assert leveled_post.optimized_cost <= post.optimized_cost + 1e-6

    def test_invalid_plan_rejected(self):
        from repro.planner import ExecutionError

        net = pair_network(cpu=30.0, link_bw=70.0)
        app = media.build_app("n0", "n1")
        plan = solve(app, net, media.proportional_leveling((90, 100)))
        broken = plan.actions[1:]  # drop the splitter
        with pytest.raises(ExecutionError):
            post_optimize(plan.problem, broken)
