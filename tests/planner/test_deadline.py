"""Unit tests for wall-clock deadlines and anytime search."""

import time

import pytest

from repro.domains import media
from repro.network import chain_network
from repro.obs import Telemetry
from repro.planner import (
    Deadline,
    DeadlineExceeded,
    Planner,
    PlannerConfig,
    SearchBudgetExceeded,
    solve,
)

LEV = media.proportional_leveling((90, 100))


def chain_instance():
    net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
    return media.build_app("n0", "n2"), net


class TestDeadline:
    def test_not_expired_before_limit(self):
        d = Deadline.after(60.0)
        assert not d.expired()
        assert d.remaining_s() > 59.0
        assert d.elapsed_s() < 1.0

    def test_expired_after_limit(self):
        d = Deadline.after(0.0)
        time.sleep(0.001)
        assert d.expired()
        assert d.remaining_s() <= 0.0

    def test_poll_is_strided(self):
        d = Deadline.after(0.0, stride=1000)
        time.sleep(0.001)
        # The first stride-1 polls skip the clock read entirely.
        assert not any(d.poll() for _ in range(999))
        assert d.poll()

    def test_tightest_picks_earlier(self):
        loose, tight = Deadline.after(60.0), Deadline.after(1.0)
        assert loose.tightest(tight) is tight
        assert tight.tightest(loose) is tight
        assert tight.tightest(None) is tight

    def test_exception_attributes(self):
        exc = DeadlineExceeded(
            phase="rg", time_limit_s=1.5, nodes_expanded=7, nodes_created=9, elapsed_s=1.6
        )
        assert isinstance(exc, SearchBudgetExceeded)  # except-clause compat
        assert exc.phase == "rg"
        assert exc.time_limit_s == 1.5
        assert exc.nodes_created == 9
        assert "1.500s" in str(exc)

    def test_budget_exception_message_deterministic(self):
        # Fault campaigns diff recorded failure strings across runs, so
        # the node-budget message must not embed wall-clock readings.
        exc = SearchBudgetExceeded(
            phase="rg", budget=10, nodes_created=11, nodes_expanded=5, elapsed_s=0.123
        )
        assert "0.123" not in str(exc)
        assert exc.elapsed_s == 0.123


class TestAnytimePlanning:
    def test_generous_deadline_solves_optimally(self):
        app, net = chain_instance()
        plan = solve(app, net, LEV, time_limit_s=60.0)
        assert not plan.incumbent
        assert plan.stop_reason == "optimal"
        assert plan.stats.deadline_hits == 0

    def test_tiny_deadline_raises_with_phase(self):
        app, net = chain_instance()
        with pytest.raises(DeadlineExceeded) as info:
            solve(app, net, LEV, time_limit_s=1e-6)
        assert info.value.phase in ("plrg", "slrg", "rg")
        assert info.value.time_limit_s == 1e-6
        assert info.value.elapsed_s > 0

    def test_budget_cut_returns_incumbent_in_anytime_mode(self):
        app, net = chain_instance()
        plan = solve(app, net, LEV, rg_node_budget=1, anytime=True)
        assert plan.incumbent
        assert plan.stop_reason == "node_budget"
        assert plan.actions  # a complete, validated plan (validate=True ran)
        assert plan.stats.incumbent == 1

    def test_budget_only_runs_stay_strict_by_default(self):
        # anytime=None must not change pre-deadline semantics: without a
        # time limit, a blown budget still raises.
        app, net = chain_instance()
        with pytest.raises(SearchBudgetExceeded):
            solve(app, net, LEV, rg_node_budget=1)

    def test_incumbent_metrics_and_plan_roundtrip(self):
        app, net = chain_instance()
        tele = Telemetry()
        plan = Planner(
            PlannerConfig(leveling=LEV, rg_node_budget=1, anytime=True, telemetry=tele)
        ).solve(app, net)
        names = {m["name"] for m in tele.metrics.snapshot()}
        assert "planner.incumbent.returned" in names
        assert "[incumbent]" in plan.describe()
        data = plan.to_dict()
        assert data["incumbent"] is True
        assert data["stop_reason"] == "node_budget"

    def test_anytime_false_forces_raise_even_with_deadline(self):
        app, net = chain_instance()
        with pytest.raises(SearchBudgetExceeded):
            solve(app, net, LEV, rg_node_budget=1, anytime=False, time_limit_s=60.0)
