"""Unit tests for the graceful-degradation ladder (solve_robust)."""

import pytest

from repro.domains import media
from repro.model import Leveling, LevelSpec
from repro.network import chain_network
from repro.obs import Telemetry
from repro.planner import (
    PlannerConfig,
    ResourceInfeasible,
    SearchBudgetExceeded,
    SolveOutcome,
    Unsolvable,
    coarsen_leveling,
    solve_robust,
)
from repro.planner import robust as robust_mod

LEV = media.proportional_leveling((30, 70, 90, 100))


def chain_instance():
    net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
    return media.build_app("n0", "n2"), net


class TestCoarsenLeveling:
    def test_halves_and_keeps_highest(self):
        lev = Leveling({"M.ibw": LevelSpec((30.0, 70.0, 90.0, 100.0))}, name="d")
        coarse = coarsen_leveling(lev)
        assert coarse.specs["M.ibw"].cutpoints == (70.0, 100.0)
        assert coarse.name == "d-coarse"

    def test_two_cutpoints_collapse_to_highest(self):
        lev = Leveling({"M.ibw": LevelSpec((90.0, 100.0))}, name="c")
        assert coarsen_leveling(lev).specs["M.ibw"].cutpoints == (100.0,)

    def test_nothing_to_coarsen_returns_none(self):
        lev = Leveling({"M.ibw": LevelSpec((100.0,))}, name="b")
        assert coarsen_leveling(lev) is None
        assert coarsen_leveling(Leveling({}, name="empty")) is None

    def test_single_cutpoint_specs_survive_untouched(self):
        lev = Leveling(
            {"M.ibw": LevelSpec((100.0,)), "T.ibw": LevelSpec((35.0, 70.0))},
            name="mixed",
        )
        coarse = coarsen_leveling(lev)
        assert coarse.specs["M.ibw"].cutpoints == (100.0,)
        assert coarse.specs["T.ibw"].cutpoints == (70.0,)


class TestSolveRobust:
    def test_easy_instance_wins_on_full_rung(self):
        app, net = chain_instance()
        tele = Telemetry()
        outcome = solve_robust(app, net, LEV, telemetry=tele)
        assert outcome.solved and not outcome.degraded
        assert outcome.rung == "full"
        assert [a.rung for a in outcome.attempts] == ["full"]
        names = {m["name"] for m in tele.metrics.snapshot()}
        assert "robust.attempt.full" in names
        assert "robust.fallback.full" in names

    def test_budget_cut_wins_on_anytime_rung(self):
        app, net = chain_instance()
        tele = Telemetry()
        outcome = solve_robust(
            app, net, LEV, config=PlannerConfig(rg_node_budget=1), telemetry=tele
        )
        assert outcome.solved and outcome.degraded
        assert outcome.rung == "anytime"
        assert outcome.plan.incumbent
        assert "(incumbent)" in outcome.attempts[0].detail
        names = {m["name"] for m in tele.metrics.snapshot()}
        assert "robust.fallback.anytime" in names

    def test_unsolvable_stops_ladder_without_retries(self):
        # The client's link is starved below any useful stream: no rung
        # can fix an unreachable goal, so the ladder stops after one try.
        net = chain_network([(150, "LAN"), (10, "LAN")], cpu=30.0)
        app = media.build_app("n0", "n2")
        outcome = solve_robust(app, net, LEV)
        assert not outcome.solved
        assert outcome.rung == ""
        assert len(outcome.attempts) == 1
        assert outcome.attempts[0].error_type in ("Unsolvable", "ResourceInfeasible")

    def test_describe_names_winning_rung(self):
        app, net = chain_instance()
        outcome = solve_robust(app, net, LEV)
        assert "rung 'full'" in outcome.describe()

    def test_outcome_with_no_attempts_reports_unsolved(self):
        outcome = SolveOutcome(plan=None)
        assert not outcome.solved and not outcome.degraded
        assert "no plan" in outcome.describe()


class TestLadderWalk:
    """Rung ordering and stop conditions, with planner failures injected
    deterministically via a stub Planner."""

    @pytest.fixture
    def fake_planner(self, monkeypatch):
        calls = []

        class FakePlan:
            incumbent = False
            cost_lb = 5.0
            actions = ("a",)

            def __len__(self):
                return 1

        class FakePlanner:
            fail_levelings: dict[str, Exception] = {}

            def __init__(self, config):
                self.config = config

            def solve(self, app, network):
                name = self.config.leveling.name if self.config.leveling else "none"
                calls.append(name)
                exc = self.fail_levelings.get(name)
                if exc is not None:
                    raise exc
                return FakePlan()

        monkeypatch.setattr(robust_mod, "Planner", FakePlanner)
        FakePlanner.fail_levelings = {}
        return FakePlanner, calls

    def test_coarsened_rung_wins_when_full_exhausts(self, fake_planner):
        FakePlanner, calls = fake_planner
        lev = Leveling({"M.ibw": LevelSpec((30.0, 70.0, 90.0, 100.0))}, name="d")
        FakePlanner.fail_levelings = {"d": SearchBudgetExceeded(budget=1)}
        tele = Telemetry()
        outcome = solve_robust(object(), object(), lev, telemetry=tele)
        assert outcome.rung == "coarsened"
        assert calls == ["d", "d-coarse"]
        assert [a.succeeded for a in outcome.attempts] == [False, True]
        names = {m["name"] for m in tele.metrics.snapshot()}
        assert "robust.fallback.coarsened" in names

    def test_greedy_rung_is_last_resort(self, fake_planner):
        FakePlanner, calls = fake_planner
        lev = Leveling({"M.ibw": LevelSpec((30.0, 70.0, 90.0, 100.0))}, name="d")
        FakePlanner.fail_levelings = {
            "d": SearchBudgetExceeded(budget=1),
            "d-coarse": SearchBudgetExceeded(budget=1),
        }
        outcome = solve_robust(object(), object(), lev)
        assert outcome.rung == "greedy"
        assert calls == ["d", "d-coarse", "greedy-trivial"]
        assert outcome.attempts[-1].succeeded

    def test_uncoarsenable_leveling_skips_straight_to_greedy(self, fake_planner):
        FakePlanner, calls = fake_planner
        lev = Leveling({"M.ibw": LevelSpec((100.0,))}, name="b")
        FakePlanner.fail_levelings = {"b": SearchBudgetExceeded(budget=1)}
        outcome = solve_robust(object(), object(), lev)
        assert outcome.rung == "greedy"
        assert calls == ["b", "greedy-trivial"]

    def test_resource_infeasible_stops_descent(self, fake_planner):
        FakePlanner, calls = fake_planner
        lev = Leveling({"M.ibw": LevelSpec((30.0, 70.0, 90.0, 100.0))}, name="d")
        FakePlanner.fail_levelings = {"d": ResourceInfeasible("no capacity")}
        tele = Telemetry()
        outcome = solve_robust(object(), object(), lev, telemetry=tele)
        assert not outcome.solved
        assert calls == ["d"]
        assert outcome.attempts[0].error_type == "ResourceInfeasible"
        names = {m["name"] for m in tele.metrics.snapshot()}
        assert "robust.failed" in names

    def test_every_rung_failing_reports_all_attempts(self, fake_planner):
        FakePlanner, calls = fake_planner
        lev = Leveling({"M.ibw": LevelSpec((30.0, 70.0, 90.0, 100.0))}, name="d")
        FakePlanner.fail_levelings = {
            "d": SearchBudgetExceeded(budget=1),
            "d-coarse": SearchBudgetExceeded(budget=1),
            "greedy-trivial": Unsolvable("nope"),
        }
        outcome = solve_robust(object(), object(), lev)
        assert not outcome.solved
        assert [a.rung for a in outcome.attempts] == ["full", "coarsened", "greedy"]
