"""White-box tests of planner internals: tail ordering, transposition
pruning, SLRG caching, and multicast availability semantics."""

import pytest

from repro.compile import AvailProp, compile_problem
from repro.domains.media import build_app, proportional_leveling
from repro.network import Network, chain_network, pair_network
from repro.planner import SLRG, build_plrg, regression_search


def compiled(net, cuts=(90, 100), server="n0", client=None, demand=90.0):
    client = client or f"n{len(net) - 1}"
    return compile_problem(
        build_app(server, client, demand=demand), net, proportional_leveling(cuts)
    )


class TestTailOrdering:
    def test_producers_precede_consumers(self):
        """In every returned plan, each action's preconditions are
        established by the initial state plus *earlier* actions only —
        already asserted in test_rg; here we additionally check the
        crossing order within each stream chain."""
        net = chain_network([(150, "LAN"), (150, "LAN"), (150, "LAN")], cpu=30.0)
        problem = compiled(net)
        plrg = build_plrg(problem)
        slrg = SLRG(problem, plrg)
        result = regression_search(problem, slrg.query, plrg.usable_actions)
        hops_by_stream: dict[str, list[tuple[str, str]]] = {}
        for a in result.plan_actions:
            if a.kind == "cross":
                hops_by_stream.setdefault(a.subject, []).append((a.src, a.dst))
        for stream, hops in hops_by_stream.items():
            for (s1, d1), (s2, d2) in zip(hops, hops[1:]):
                assert d1 == s2, f"{stream} hops out of order: {hops}"

    def test_client_is_last(self):
        net = pair_network(cpu=30.0, link_bw=70.0)
        problem = compiled(net)
        plrg = build_plrg(problem)
        slrg = SLRG(problem, plrg)
        result = regression_search(problem, slrg.query, plrg.usable_actions)
        assert result.plan_actions[-1].subject == "Client"


class TestTranspositionPruning:
    def test_duplicate_tail_sets_pruned(self):
        """The Z and I crossings commute; the search must not expand both
        orders of the same tail multiset.  Observable as strictly fewer
        created nodes than a run with the pruning disabled would need —
        we check the prune fires via the trace."""
        from repro.planner import Planner, PlannerConfig
        from repro.domains import media

        net = pair_network(cpu=30.0, link_bw=70.0)
        plan = Planner(
            PlannerConfig(leveling=media.proportional_leveling((90, 100)), trace=True)
        ).solve(media.build_app("n0", "n1"), net)
        assert plan.trace.prune_reasons.get("transposition", 0) >= 1


class TestSLRGCaching:
    def test_optimal_path_subsets_cached(self):
        net = pair_network(cpu=30.0, link_bw=70.0)
        problem = compiled(net)
        plrg = build_plrg(problem)
        slrg = SLRG(problem, plrg)
        goal_cost = slrg.query(frozenset(problem.goal_prop_ids))
        assert goal_cost > 0
        # The goal's own open set is cached exactly.
        open_goal = frozenset(problem.goal_prop_ids) - problem.initial_prop_ids
        assert slrg._exact[frozenset(open_goal)] == pytest.approx(goal_cost)
        # And at least one strict descendant set was cached along the way.
        assert len(slrg._exact) >= 2

    def test_cache_consistency_across_queries(self):
        net = pair_network(cpu=30.0, link_bw=70.0)
        problem = compiled(net)
        plrg = build_plrg(problem)
        slrg = SLRG(problem, plrg)
        t = problem.props.index[AvailProp("T", "n1", (1,))]
        i = problem.props.index[AvailProp("I", "n1", (1,))]
        pair_cost = slrg.query(frozenset((t, i)))
        # Subsequent singleton queries must be consistent (<= pair cost).
        assert slrg.query(frozenset((t,))) <= pair_cost + 1e-9
        assert slrg.query(frozenset((i,))) <= pair_cost + 1e-9


class TestMulticastSemantics:
    def test_one_crossing_feeds_two_consumers(self):
        """avail() is node-level availability: after one crossing, two
        consumers at the target node share the stream without a second
        crossing (stream replication is free; bandwidth was paid once)."""
        net = Network("mc")
        net.add_node("n0", {"cpu": 1000.0})
        net.add_node("n1", {"cpu": 1000.0})
        net.add_link("n0", "n1", {"lbw": 150.0})
        problem = compiled(net, cuts=(90, 100))
        by_name = {a.name: a for a in problem.actions}
        cross = by_name["cross(M,n0->n1)[M.ibw=1]"]
        rmap = problem.initial_map()
        cross.replay(rmap)
        # Two different consumers of M@n1 replay fine on the same map.
        splitter = by_name["place(Splitter,n1)[M.ibw=1]"]
        client = by_name["place(Client,n1)[M.ibw=1]"]
        splitter.replay(rmap)
        client.replay(rmap)
        # The link paid for one crossing only.
        assert rmap["lbw@n0~n1"].lo >= 150.0 - 100.0 - 1e-9
