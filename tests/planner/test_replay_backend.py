"""Replay-backend equivalence and timing-accounting regression tests.

The compiled replay engine must be observationally identical to the
interpreted reference: same plan, same costs, same search-graph sizes on
every built-in domain.  The timing tests pin the ``total_ms`` contract —
search-only on *both* solve call paths, never including compile time
(the pre-PR accounting started the clock before the internal compile, so
``solve(app, net)`` double-counted compilation).
"""

import time

import pytest

from repro.compile.actions import replay_backend, set_replay_backend, use_replay_backend
from repro.domains import grid, media, variants, webservice
from repro.experiments.harness import run_cell
from repro.network import pair_network
from repro.planner import Planner, PlannerConfig


def _media():
    net = pair_network(cpu=30.0, link_bw=70.0)
    app = media.build_app("n0", "n1")
    return app, net, media.proportional_leveling((90.0, 100.0))


def _grid():
    net = grid.build_network()
    app = grid.build_app("site0_worker", "site3_worker")
    return app, net, grid.grid_leveling()


def _webservice():
    net = webservice.build_network()
    app = webservice.build_app("server", "client")
    return app, net, webservice.ws_leveling()


def _variants():
    net = variants.build_network(60.0, 100.0)
    app = variants.build_app("src", "dst")
    return app, net, variants.variants_leveling()


def _signature(plan):
    """Everything the compiled engine must reproduce exactly."""
    s = plan.stats
    report = plan.execute()
    return {
        "actions": tuple(a.name for a in plan.actions),
        "cost_lb": plan.cost_lb,
        "exact_cost": report.total_cost,
        "plrg": (s.plrg_prop_nodes, s.plrg_action_nodes),
        "slrg": s.slrg_set_nodes,
        "rg": (s.rg_nodes, s.rg_expanded, s.rg_queue_left),
        "replay": (s.rg_replays, s.rg_actions_replayed, s.rg_conditions_checked),
    }


class TestBackendToggle:
    def test_default_is_compiled(self):
        assert replay_backend() == "compiled"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown replay backend"):
            set_replay_backend("jit")

    def test_context_manager_restores(self):
        with use_replay_backend("interpreted"):
            assert replay_backend() == "interpreted"
        assert replay_backend() == "compiled"


class TestBackendParity:
    @pytest.mark.parametrize(
        "build", [_media, _grid, _webservice, _variants], ids=lambda f: f.__name__[1:]
    )
    def test_domain_plans_identical(self, build):
        app, net, leveling = build()
        sigs = {}
        for backend in ("compiled", "interpreted"):
            with use_replay_backend(backend):
                plan = Planner(PlannerConfig(leveling=leveling)).solve(app, net)
                sigs[backend] = _signature(plan)
        assert sigs["compiled"] == sigs["interpreted"]

    @pytest.mark.parametrize("network", ["tiny", "small"])
    @pytest.mark.parametrize("scenario", ["B", "C", "D", "E"])
    def test_table2_cells_identical(self, network, scenario):
        rows = {}
        for backend in ("compiled", "interpreted"):
            with use_replay_backend(backend):
                rows[backend] = run_cell(network, scenario)
        a, b = rows["compiled"], rows["interpreted"]
        assert a.solved == b.solved
        assert _signature(a.plan) == _signature(b.plan)
        assert a.exact_cost == b.exact_cost
        assert a.reserved_lan_bw == b.reserved_lan_bw
        assert a.delivered_bw == b.delivered_bw


class TestTotalMsAccounting:
    """``total_ms`` is search-only and compile time is reported once."""

    SLEEP_S = 0.15

    @pytest.fixture()
    def slow_compile(self, monkeypatch):
        """Pad compilation so a double-count would be unmissable."""
        import repro.planner.planner as planner_mod

        real = planner_mod.compile_problem

        def padded(*args, **kwargs):
            time.sleep(self.SLEEP_S)
            return real(*args, **kwargs)

        monkeypatch.setattr(planner_mod, "compile_problem", padded)

    def _assert_search_only(self, stats):
        assert stats.total_ms == pytest.approx(stats.search_ms, abs=25.0)
        # The padded compile alone exceeds this bound, so any inclusion of
        # compile time in the clock fails here.
        assert stats.total_ms < self.SLEEP_S * 1e3

    def test_solve_from_app_and_network(self, slow_compile):
        app, net, leveling = _media()
        plan = Planner(PlannerConfig(leveling=leveling)).solve(app, net)
        self._assert_search_only(plan.stats)

    def test_solve_from_precompiled_problem(self, slow_compile):
        app, net, leveling = _media()
        planner = Planner(PlannerConfig(leveling=leveling))
        problem = planner.compile(app, net)
        plan = planner.solve(problem=problem)
        self._assert_search_only(plan.stats)
