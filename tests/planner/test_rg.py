"""Unit tests for phase 3 (RG regression search)."""

import pytest

from repro.compile import compile_problem
from repro.domains.media import build_app, proportional_leveling
from repro.network import pair_network
from repro.planner import (
    SLRG,
    ResourceInfeasible,
    SearchBudgetExceeded,
    build_plrg,
    regression_search,
)


def make(cuts, cpu=30.0, link=70.0, demand=90.0):
    problem = compile_problem(
        build_app("n0", "n1", demand=demand),
        pair_network(cpu=cpu, link_bw=link),
        proportional_leveling(cuts),
    )
    plrg = build_plrg(problem)
    slrg = SLRG(problem, plrg)
    return problem, plrg, slrg


class TestSearch:
    def test_finds_fig4_plan(self):
        problem, plrg, slrg = make((90, 100))
        result = regression_search(problem, slrg.query, plrg.usable_actions)
        names = [a.name for a in result.plan_actions]
        assert len(names) == 7
        assert names[-1].startswith("place(Client")
        kinds = {a.subject for a in result.plan_actions}
        assert kinds == {"Splitter", "Zip", "Unzip", "Merger", "Client", "Z", "I"}

    def test_plan_cost_is_sum_of_lbs(self):
        problem, plrg, slrg = make((90, 100))
        result = regression_search(problem, slrg.query, plrg.usable_actions)
        assert result.cost_lb == pytest.approx(
            sum(a.cost_lb for a in result.plan_actions)
        )

    def test_plan_order_executable(self):
        """The tail must be emitted in forward execution order."""
        problem, plrg, slrg = make((90, 100))
        result = regression_search(problem, slrg.query, plrg.usable_actions)
        achieved = set(problem.initial_prop_ids)
        for action in result.plan_actions:
            assert action.pre_props <= achieved, f"{action.name} not applicable"
            achieved |= action.add_props

    def test_greedy_scenario_infeasible(self):
        """With trivial levels the client's support is reachability-pruned
        at compile time, so PLRG construction already fails; the planner
        facade converts this to ResourceInfeasible (see test_planner)."""
        from repro.planner import Unsolvable

        with pytest.raises(Unsolvable):
            make(())

    def test_infeasible_detected_somewhere_in_the_pipeline(self):
        """A link just below the demand: whether static pruning or RG
        replay catches it, the pipeline must refuse without a budget
        blowup."""
        from repro.planner import Unsolvable

        with pytest.raises((ResourceInfeasible, Unsolvable)):
            problem, plrg, slrg = make((90, 100), cpu=5.0, link=89.0)
            regression_search(
                problem, slrg.query, plrg.usable_actions, node_budget=20_000
            )

    def test_budget_exceeded(self):
        problem, plrg, slrg = make((30, 70, 90, 100))
        with pytest.raises(SearchBudgetExceeded):
            regression_search(problem, slrg.query, plrg.usable_actions, node_budget=3)

    def test_blind_heuristic_same_cost(self):
        """A* optimality: blind and SLRG-guided search agree on cost."""
        problem, plrg, slrg = make((90, 100))
        guided = regression_search(problem, slrg.query, plrg.usable_actions)
        blind = regression_search(problem, lambda s: 0.0, plrg.usable_actions)
        assert guided.cost_lb == pytest.approx(blind.cost_lb)

    def test_guided_search_creates_fewer_nodes(self):
        problem, plrg, slrg = make((90, 100))
        guided = regression_search(problem, slrg.query, plrg.usable_actions)
        blind = regression_search(problem, lambda s: 0.0, plrg.usable_actions)
        assert guided.nodes_created <= blind.nodes_created

    def test_single_prop_branching_feasible(self):
        problem, plrg, slrg = make((90, 100))
        result = regression_search(
            problem,
            slrg.query,
            plrg.usable_actions,
            branch_all_props=False,
            prop_rank=plrg.cost,
        )
        assert result.plan_actions  # still finds a (possibly pricier) plan

    def test_stats_populated(self):
        problem, plrg, slrg = make((90, 100))
        result = regression_search(problem, slrg.query, plrg.usable_actions)
        assert result.nodes_created >= result.nodes_expanded >= 1
        assert result.nodes_left_in_queue >= 0
