"""Unit tests for deployment repair and adaptation (paper §6 extension)."""

import pytest

from repro.domains import media
from repro.network import chain_network, pair_network
from repro.planner import (
    Deployment,
    Planner,
    PlannerConfig,
    repair_deployment,
    solve,
    surviving_prefix,
)

LEV = media.proportional_leveling((90, 100))


def healthy_chain():
    return chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0, name="before")


def degraded_chain():
    # The second link degrades from LAN to a 70-unit WAN.
    return chain_network([(150, "LAN"), (70, "WAN")], cpu=30.0, name="after")


@pytest.fixture
def deployed():
    app = media.build_app("n0", "n2")
    plan = solve(app, healthy_chain(), LEV)
    return app, plan


class TestSurvivingPrefix:
    def test_full_survival_when_network_unchanged(self, deployed):
        app, plan = deployed
        problem = Planner(PlannerConfig(leveling=LEV)).compile(app, healthy_chain())
        prefix = surviving_prefix(Deployment.from_plan(plan), problem)
        assert [a.name for a in prefix] == plan.action_names()

    def test_truncation_at_degraded_link(self, deployed):
        app, plan = deployed
        problem = Planner(PlannerConfig(leveling=LEV)).compile(app, degraded_chain())
        prefix = surviving_prefix(Deployment.from_plan(plan), problem)
        # The first hop still works; the second (now 70 units) does not.
        assert 0 < len(prefix) < len(plan)
        assert all("n1->n2" not in a.name for a in prefix)


class TestRepair:
    def test_repair_completes_deployment(self, deployed):
        app, plan = deployed
        result = repair_deployment(
            app, degraded_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        assert result.repair_plan.actions
        # The repaired deployment inserts the compression pipeline.
        subjects = {a.subject for a in result.repair_plan.actions}
        assert {"Splitter", "Zip", "Unzip", "Merger", "Client"} <= subjects

    def test_combined_plan_validates(self, deployed):
        app, plan = deployed
        result = repair_deployment(
            app, degraded_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        combined = result.combined_actions()
        assert len(combined) == len(result.surviving_actions) + len(result.repair_plan)

    def test_noop_repair_when_nothing_broke(self, deployed):
        app, plan = deployed
        result = repair_deployment(
            app, healthy_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        assert result.repair_plan.actions == []
        assert [a.name for a in result.surviving_actions] == plan.action_names()

    def test_describe_mentions_kept_actions(self, deployed):
        app, plan = deployed
        result = repair_deployment(
            app, degraded_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        assert "(kept)" in result.describe()

    def test_invalid_migration_factor(self, deployed):
        app, plan = deployed
        with pytest.raises(ValueError):
            repair_deployment(
                app,
                degraded_chain(),
                Deployment.from_plan(plan),
                leveling=LEV,
                migration_cost_factor=-1.0,
            )


class TestMigrationDiscount:
    def test_discount_prefers_moving_running_component(self):
        """A Splitter already running on a node that lost its link should
        migrate (cheaply) rather than stay unused while a full-price copy
        deploys — observable through the repair plan's cost bound."""
        app = media.build_app("n0", "n1")
        net_old = pair_network(cpu=30.0, link_bw=70.0)
        plan = solve(app, net_old, LEV)
        deployment = Deployment.from_plan(plan)

        # The link hardens further: now even Z + I need re-planning from
        # scratch; compare repair bounds with and without the discount.
        net_new = pair_network(cpu=30.0, link_bw=70.0, name="after")
        full = repair_deployment(
            app, net_new, deployment, leveling=LEV, migration_cost_factor=1.0
        )
        cheap = repair_deployment(
            app, net_new, deployment, leveling=LEV, migration_cost_factor=0.1
        )
        assert cheap.repair_plan.cost_lb <= full.repair_plan.cost_lb + 1e-9

    def test_migrated_components_reported(self, deployed):
        app, plan = deployed
        result = repair_deployment(
            app, degraded_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        assert isinstance(result.migrated_components, list)
